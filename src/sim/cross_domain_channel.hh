/**
 * @file
 * Timestamped mailbox carrying events between timing domains.
 *
 * A CrossDomainChannel is the only legal way for activity in one
 * timing domain to cause activity in another while a parallel
 * simulation is running (see DomainScheduler). It is single-producer
 * (events executing in the source domain) / single-consumer (the
 * barrier coordinator), so the hot path is a plain vector append with
 * no atomics: the epoch barrier's acquire/release handshake provides
 * the happens-before edge between producer and consumer.
 *
 * Conservative-lookahead contract: every push must carry a delivery
 * timestamp at least `lookahead` ticks after the source domain's
 * current time. Because an epoch never spans more than `lookahead`
 * ticks, a message pushed during an epoch always delivers after that
 * epoch's end, so draining channels only at barriers can never
 * deliver an event into a domain's past.
 */

#ifndef ENZIAN_SIM_CROSS_DOMAIN_CHANNEL_HH
#define ENZIAN_SIM_CROSS_DOMAIN_CHANNEL_HH

#include <cstdint>
#include <vector>

#include "base/units.hh"
#include "sim/event_queue.hh"

namespace enzian::sim {

class DomainScheduler;

/** SPSC mailbox for cross-domain event delivery (see file comment). */
class CrossDomainChannel
{
  public:
    CrossDomainChannel(const CrossDomainChannel &) = delete;
    CrossDomainChannel &operator=(const CrossDomainChannel &) = delete;

    /**
     * Enqueue @p fn for execution in the destination domain at
     * absolute time @p when. Must only be called from the source
     * domain (or from outside the simulation while it is stopped),
     * and @p when must be >= source now() + lookahead.
     */
    void push(Tick when, EventFn fn);

    /** Messages currently queued (consumer/stopped-world only). */
    std::size_t size() const { return items_.size(); }

    /** Total messages ever forwarded through the barrier drain. */
    std::uint64_t messagesForwarded() const { return forwarded_; }

    std::uint32_t srcDomainId() const { return srcId_; }
    std::uint32_t dstDomainId() const { return dstId_; }

  private:
    friend class DomainScheduler;

    CrossDomainChannel(EventQueue &srcq, EventQueue &dstq,
                       std::uint32_t src_id, std::uint32_t dst_id,
                       Tick lookahead)
        : srcq_(srcq), dstq_(dstq), srcId_(src_id), dstId_(dst_id),
          lookahead_(lookahead)
    {
    }

    /**
     * Schedule every queued item into the destination queue, in push
     * (= source schedule) order. Barrier coordinator only.
     * @return number of items forwarded.
     */
    std::uint64_t drain();

    struct Item
    {
        Tick when;
        EventFn fn;
    };

    EventQueue &srcq_;
    EventQueue &dstq_;
    std::uint32_t srcId_;
    std::uint32_t dstId_;
    Tick lookahead_;
    std::vector<Item> items_;
    std::uint64_t forwarded_ = 0;
};

} // namespace enzian::sim

#endif // ENZIAN_SIM_CROSS_DOMAIN_CHANNEL_HH
