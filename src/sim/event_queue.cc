/**
 * @file
 * Event queue implementation.
 */

#include "sim/event_queue.hh"

#include "base/logging.hh"

namespace enzian {

EventQueue::EventQueue() = default;

EventId
EventQueue::schedule(Tick when, Callback cb, const char *what)
{
    ENZIAN_ASSERT(when >= now_,
                  "scheduling event '%s' in the past (%llu < %llu)",
                  what ? what : "?",
                  static_cast<unsigned long long>(when),
                  static_cast<unsigned long long>(now_));
    const EventId id = nextId_++;
    queue_.push(PendingEvent{when, id, std::move(cb), what});
    ++scheduled_;
    return id;
}

EventId
EventQueue::scheduleDelta(Tick delay, Callback cb, const char *what)
{
    return schedule(now_ + delay, std::move(cb), what);
}

void
EventQueue::cancel(EventId id)
{
    cancelled_.insert(id);
}

bool
EventQueue::runOne()
{
    while (!queue_.empty()) {
        PendingEvent ev = queue_.top();
        queue_.pop();
        if (auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
            cancelled_.erase(it);
            continue;
        }
        ENZIAN_ASSERT(ev.when >= now_, "event queue time went backwards");
        now_ = ev.when;
        ++executed_;
        ev.cb();
        return true;
    }
    return false;
}

std::uint64_t
EventQueue::runUntil(Tick limit)
{
    std::uint64_t n = 0;
    while (!queue_.empty() && queue_.top().when <= limit) {
        if (runOne())
            ++n;
    }
    // Advance time to the limit even if nothing was pending there, so
    // callers can treat runUntil as "simulate this long".
    if (limit > now_)
        now_ = limit;
    return n;
}

std::uint64_t
EventQueue::run()
{
    std::uint64_t n = 0;
    while (runOne())
        ++n;
    return n;
}

bool
EventQueue::empty() const
{
    // Cheap check: pending count may include cancelled events, but
    // "empty" must be precise for run loops.
    if (queue_.empty())
        return true;
    return queue_.size() == cancelled_.size();
}

} // namespace enzian
