/**
 * @file
 * Event queue implementation: 4-ary heap over slot handles.
 */

#include "sim/event_queue.hh"

#include <algorithm>

#include "base/logging.hh"

namespace enzian {

namespace {

constexpr std::uint32_t kSlotBitsLocal = 24;
constexpr std::uint64_t kGenMask =
    (std::uint64_t{1} << (64 - kSlotBitsLocal)) - 1;

constexpr EventId
makeId(std::uint32_t idx, std::uint64_t gen)
{
    return ((gen & kGenMask) << kSlotBitsLocal) |
           (static_cast<std::uint64_t>(idx) + 1);
}

} // namespace

EventQueue::EventQueue() = default;

std::uint32_t
EventQueue::acquireSlot()
{
    if (!freeList_.empty()) {
        const std::uint32_t idx = freeList_.back();
        freeList_.pop_back();
        return idx;
    }
    ENZIAN_ASSERT(slotCount_ < kSlotMask,
                  "event queue slot arena exhausted");
    if ((slotCount_ >> kChunkBits) == chunks_.size())
        chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
    slotPtr_.push_back(
        &chunks_[slotCount_ >> kChunkBits]
                [slotCount_ & (kChunkSize - 1)]);
    return slotCount_++;
}

void
EventQueue::freeSlot(std::uint32_t idx)
{
    Slot &s = slot(idx);
    s.cb.reset();
    s.what = nullptr;
    s.persistent = false;
    freeList_.push_back(idx);
}

void
EventQueue::push(Node n)
{
    heap_.push_back(n);
    std::size_t i = heap_.size() - 1;
    while (i > 0) {
        const std::size_t p = (i - 1) / kArity;
        if (!before(n, heap_[p]))
            break;
        heap_[i] = heap_[p];
        i = p;
    }
    heap_[i] = n;
}

void
EventQueue::siftDown(std::size_t i)
{
    const std::size_t n = heap_.size();
    const Node v = heap_[i];
    for (;;) {
        const std::size_t first = i * kArity + 1;
        if (first >= n)
            break;
        // Pull the likely next level in while comparing this one.
        if (first * kArity + 1 < n)
            __builtin_prefetch(&heap_[first * kArity + 1]);
        std::size_t best = first;
        const std::size_t last = std::min(first + kArity, n);
        for (std::size_t c = first + 1; c < last; ++c) {
            if (before(heap_[c], heap_[best]))
                best = c;
        }
        if (!before(heap_[best], v))
            break;
        heap_[i] = heap_[best];
        i = best;
    }
    heap_[i] = v;
}

void
EventQueue::popTop()
{
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (heap_.size() > 1)
        siftDown(0);
}

const EventQueue::Node *
EventQueue::peekLive()
{
    while (!heap_.empty()) {
        const Node &top = heap_.front();
        const Slot &s = slot(top.slot);
        if (s.armed && genMatch(s.gen, top.gen))
            return &heap_.front();
        popTop();
        --staleNodes_;
    }
    return nullptr;
}

void
EventQueue::maybeCompact()
{
    // Heavy cancellation leaves stale nodes in the heap; once they
    // outnumber live ones (and are worth the pass), filter + heapify
    // so the heap never grows unboundedly under cancel-mostly loads.
    if (staleNodes_ < 64 || staleNodes_ * 2 < heap_.size())
        return;
    std::size_t w = 0;
    for (const Node &n : heap_) {
        const Slot &s = slot(n.slot);
        if (s.armed && genMatch(s.gen, n.gen))
            heap_[w++] = n;
    }
    heap_.resize(w);
    staleNodes_ = 0;
    if (w > 1) {
        for (std::size_t i = (w - 2) / kArity + 1; i-- > 0;)
            siftDown(i);
    }
}

EventId
EventQueue::schedule(Tick when, Callback cb, const char *what)
{
    ENZIAN_ASSERT(when >= now_,
                  "scheduling event '%s' in the past (%llu < %llu)",
                  what ? what : "?",
                  static_cast<unsigned long long>(when),
                  static_cast<unsigned long long>(now_));
    const std::uint32_t idx = acquireSlot();
    Slot &s = slot(idx);
    s.cb = std::move(cb);
    s.what = what;
    s.armed = true;
    push(Node{when, seq_++, static_cast<std::uint32_t>(s.gen), idx});
    ++scheduled_;
    ++live_;
    return makeId(idx, s.gen);
}

EventId
EventQueue::scheduleDelta(Tick delay, Callback cb, const char *what)
{
    return schedule(now_ + delay, std::move(cb), what);
}

void
EventQueue::cancel(EventId id)
{
    const std::uint64_t slot_plus1 = id & kSlotMask;
    if (slot_plus1 == 0 || slot_plus1 > slotCount_)
        return;
    const auto idx = static_cast<std::uint32_t>(slot_plus1 - 1);
    Slot &s = slot(idx);
    // Stale ids (already run, already cancelled, reused slot) fail
    // the generation check and are exact no-ops.
    if (!s.armed || s.persistent ||
        (s.gen & kGenMask) != (id >> kSlotBits)) {
        return;
    }
    s.armed = false;
    ++s.gen;
    --live_;
    ++staleNodes_;
    freeSlot(idx);
    maybeCompact();
}

bool
EventQueue::runOne()
{
    for (;;) {
        if (heap_.empty())
            return false;
        const Node top = heap_.front();
        Slot &s = slot(top.slot);
        if (!s.armed || !genMatch(s.gen, top.gen)) {
            popTop();
            --staleNodes_;
            continue;
        }
        popTop();
        ENZIAN_ASSERT(top.when >= now_,
                      "event queue time went backwards");
        now_ = top.when;
        s.armed = false;
        ++s.gen;
        --live_;
        ++executed_;
        if (s.persistent) {
            // Run in place: the callback stays installed so the event
            // can re-arm without copying or allocating. The slot is
            // pinned for the duration; a release from inside the
            // callback is deferred until it returns.
            s.executing = true;
            s.cb();
            s.executing = false;
            if (s.releasePending) {
                s.releasePending = false;
                freeSlot(top.slot);
            }
        } else {
            // One-shot: move the callback out and recycle the slot
            // first, so the callback can freely schedule new events.
            EventFn cb = std::move(s.cb);
            freeSlot(top.slot);
            cb();
        }
        return true;
    }
}

std::uint64_t
EventQueue::runUntil(Tick limit)
{
    std::uint64_t n = 0;
    for (;;) {
        const Node *top = peekLive();
        if (top == nullptr || top->when > limit)
            break;
        if (runOne())
            ++n;
    }
    // Advance time to the limit even if nothing was pending there, so
    // callers can treat runUntil as "simulate this long".
    if (limit > now_)
        now_ = limit;
    return n;
}

Tick
EventQueue::nextEventTick()
{
    const Node *top = peekLive();
    return top != nullptr ? top->when : kNoEventTick;
}

std::uint64_t
EventQueue::run()
{
    std::uint64_t n = 0;
    while (runOne())
        ++n;
    return n;
}

std::uint32_t
EventQueue::acquirePersistent(EventFn cb, const char *what)
{
    const std::uint32_t idx = acquireSlot();
    Slot &s = slot(idx);
    s.cb = std::move(cb);
    s.what = what;
    s.persistent = true;
    return idx;
}

void
EventQueue::releasePersistent(std::uint32_t idx)
{
    Slot &s = slot(idx);
    if (s.executing) {
        s.releasePending = true;
        return;
    }
    cancelPersistent(idx);
    freeSlot(idx);
}

void
EventQueue::schedulePersistent(std::uint32_t idx, Tick when)
{
    Slot &s = slot(idx);
    ENZIAN_ASSERT(s.persistent, "schedule on released event slot");
    ENZIAN_ASSERT(!s.armed, "reusable event '%s' armed twice",
                  s.what ? s.what : "?");
    ENZIAN_ASSERT(when >= now_,
                  "scheduling event '%s' in the past (%llu < %llu)",
                  s.what ? s.what : "?",
                  static_cast<unsigned long long>(when),
                  static_cast<unsigned long long>(now_));
    s.armed = true;
    push(Node{when, seq_++, static_cast<std::uint32_t>(s.gen), idx});
    ++scheduled_;
    ++live_;
}

void
EventQueue::cancelPersistent(std::uint32_t idx)
{
    Slot &s = slot(idx);
    if (!s.armed)
        return;
    s.armed = false;
    ++s.gen;
    --live_;
    ++staleNodes_;
    maybeCompact();
}

} // namespace enzian
