/**
 * @file
 * SimObject implementation.
 */

#include "sim/sim_object.hh"

#include <cstdarg>

#include "base/logging.hh"
#include "obs/registry.hh"

namespace enzian {

SimObject::SimObject(std::string name, EventQueue &eq)
    : name_(std::move(name)), eq_(eq), stats_(name_)
{
    obs::Registry::global().add(&stats_);
}

SimObject::~SimObject()
{
    obs::Registry::global().remove(&stats_);
}

namespace {

/** "[<tick> ns <name>] " prefix for attributable log lines. */
std::string
logPrefix(Tick now, const std::string &name)
{
    return format("[%.0f ns %s] ", units::toNanos(now), name.c_str());
}

} // namespace

void
SimObject::logInfo(const char *fmt, ...) const
{
    if (logLevel() > LogLevel::Info)
        return;
    va_list ap;
    va_start(ap, fmt);
    vlogPrefixed(LogLevel::Info, logPrefix(now(), name_).c_str(), fmt,
                 ap);
    va_end(ap);
}

void
SimObject::logWarn(const char *fmt, ...) const
{
    if (logLevel() > LogLevel::Warn)
        return;
    va_list ap;
    va_start(ap, fmt);
    vlogPrefixed(LogLevel::Warn, logPrefix(now(), name_).c_str(), fmt,
                 ap);
    va_end(ap);
}

void
SimObject::logDebug(const char *fmt, ...) const
{
    if (logLevel() > LogLevel::Debug)
        return;
    va_list ap;
    va_start(ap, fmt);
    vlogPrefixed(LogLevel::Debug, logPrefix(now(), name_).c_str(), fmt,
                 ap);
    va_end(ap);
}

} // namespace enzian
