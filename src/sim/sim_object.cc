/**
 * @file
 * SimObject implementation.
 */

#include "sim/sim_object.hh"

namespace enzian {

SimObject::SimObject(std::string name, EventQueue &eq)
    : name_(std::move(name)), eq_(eq), stats_(name_)
{
}

SimObject::~SimObject() = default;

} // namespace enzian
