/**
 * @file
 * Base class for named simulation components.
 */

#ifndef ENZIAN_SIM_SIM_OBJECT_HH
#define ENZIAN_SIM_SIM_OBJECT_HH

#include <string>

#include "base/stats.hh"
#include "sim/event_queue.hh"

namespace enzian {

/**
 * A named component bound to an event queue. Subclasses register
 * statistics in their constructor via stats(); the stat group is
 * automatically published in the global obs::Registry for the
 * component's lifetime, so every component is visible in registry
 * snapshots and exports without extra wiring.
 */
class SimObject
{
  public:
    /**
     * @param name hierarchical dotted name, e.g. "enzian.eci.link0"
     * @param eq event queue driving this component
     */
    SimObject(std::string name, EventQueue &eq);
    virtual ~SimObject();

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    const std::string &name() const { return name_; }
    EventQueue &eventq() { return eq_; }
    const EventQueue &eventq() const { return eq_; }
    Tick now() const { return eq_.now(); }

    /** Mutable stat group for registration by subclasses. */
    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

    /**
     * Component-attributed logging: like inform()/warn()/logDebug()
     * but prefixed with the current sim-time tick (in ns) and this
     * component's name, so interleaved multi-component output reads
     * as a coherent timeline.
     */
    void logInfo(const char *fmt, ...) const
        __attribute__((format(printf, 2, 3)));
    void logWarn(const char *fmt, ...) const
        __attribute__((format(printf, 2, 3)));
    void logDebug(const char *fmt, ...) const
        __attribute__((format(printf, 2, 3)));

  private:
    std::string name_;
    EventQueue &eq_;
    StatGroup stats_;
};

} // namespace enzian

#endif // ENZIAN_SIM_SIM_OBJECT_HH
