/**
 * @file
 * ClockDomain implementation.
 */

#include "sim/clock_domain.hh"

#include <cmath>

#include "base/logging.hh"

namespace enzian {

ClockDomain::ClockDomain(std::string name, double freq_hz)
    : name_(std::move(name)), freqHz_(0), period_(0)
{
    setFrequencyHz(freq_hz);
}

void
ClockDomain::setFrequencyHz(double freq_hz)
{
    if (freq_hz <= 0)
        fatal("clock domain '%s': non-positive frequency", name_.c_str());
    freqHz_ = freq_hz;
    const double ps = 1e12 / freq_hz;
    period_ = static_cast<Tick>(std::llround(ps));
    if (period_ == 0)
        period_ = 1;
}

} // namespace enzian
