/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single EventQueue drives one simulated machine. Events are
 * arbitrary callbacks ordered by (tick, insertion sequence), so
 * same-tick events execute in schedule order, which keeps the
 * simulation deterministic.
 */

#ifndef ENZIAN_SIM_EVENT_QUEUE_HH
#define ENZIAN_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "base/units.hh"

namespace enzian {

/** Handle used to cancel a scheduled event. */
using EventId = std::uint64_t;

/** Deterministic discrete-event queue over picosecond Ticks. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue();

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule @p cb at absolute time @p when (>= now).
     *
     * @param what optional static label for diagnostics.
     * @return id usable with cancel().
     */
    EventId schedule(Tick when, Callback cb, const char *what = nullptr);

    /** Schedule @p cb at now() + @p delay. */
    EventId scheduleDelta(Tick delay, Callback cb,
                          const char *what = nullptr);

    /** Cancel a previously scheduled event (no-op if already run). */
    void cancel(EventId id);

    /** Execute the next pending event. @return false if none pending. */
    bool runOne();

    /**
     * Run all events with when <= @p limit, then advance now() to
     * @p limit. @return number of events executed.
     */
    std::uint64_t runUntil(Tick limit);

    /** Run until the queue drains. @return number executed. */
    std::uint64_t run();

    /** True when no runnable events remain. */
    bool empty() const;

    std::uint64_t eventsScheduled() const { return scheduled_; }
    std::uint64_t eventsExecuted() const { return executed_; }

  private:
    struct PendingEvent
    {
        Tick when;
        EventId id;
        Callback cb;
        const char *what;
    };

    struct Later
    {
        bool
        operator()(const PendingEvent &a, const PendingEvent &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.id > b.id;
        }
    };

    Tick now_ = 0;
    EventId nextId_ = 1;
    std::priority_queue<PendingEvent, std::vector<PendingEvent>, Later>
        queue_;
    std::unordered_set<EventId> cancelled_;
    std::uint64_t scheduled_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace enzian

#endif // ENZIAN_SIM_EVENT_QUEUE_HH
