/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single EventQueue drives one simulated machine. Events are
 * arbitrary callbacks ordered by (tick, insertion sequence), so
 * same-tick events execute in schedule order, which keeps the
 * simulation deterministic.
 *
 * The kernel is built for dispatch speed — it is the floor on how
 * fast every bench and test runs:
 *
 *  - The pending set is a 4-ary min-heap of small trivially-copyable
 *    nodes (tick, sequence, slot, generation), not of the callbacks
 *    themselves, so sift operations move 32 bytes and callbacks are
 *    never copied after schedule().
 *  - Callbacks are EventFn: a move-only function with inline storage
 *    for typical capture sets (this + a few words), falling back to
 *    the heap only for oversized closures.
 *  - Event ids are generation-tagged slot handles, so cancel() is
 *    O(1) with no auxiliary set, and a stale cancel (already run,
 *    already cancelled, or never issued) is an exact no-op — it
 *    cannot corrupt accounting or leak.
 *  - empty() tracks the live-event count exactly; cancelled-but-
 *    unpopped heap nodes never make a non-empty queue look empty.
 *  - Hot periodic actors use the reusable Event class: the callback
 *    is installed once and the event re-arms itself with no
 *    per-occurrence allocation (see Event below).
 */

#ifndef ENZIAN_SIM_EVENT_QUEUE_HH
#define ENZIAN_SIM_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "base/units.hh"

namespace enzian {

/**
 * Handle used to cancel a scheduled one-shot event. Packs a slot
 * index and that slot's generation at schedule time; the generation
 * advances when the event runs or is cancelled, so a stale id can
 * never match a live event. 0 is never a valid id.
 */
using EventId = std::uint64_t;

/**
 * Move-only callable with small-buffer storage, the kernel's
 * callback type. Closures up to kInlineSize bytes (this-pointer plus
 * a handful of words — every hot-path event in the tree) live inline
 * in the slot arena; larger ones take one heap allocation at
 * schedule time. Implicitly constructible from any void() callable,
 * so call sites keep passing plain lambdas.
 */
class EventFn
{
  public:
    /** Inline capture budget; sized for std::function-based closures. */
    static constexpr std::size_t kInlineSize = 48;

    EventFn() noexcept = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, EventFn> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    EventFn(F &&f) // NOLINT(google-explicit-constructor)
    {
        using Fn = std::decay_t<F>;
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void *>(buf_)) Fn(std::forward<F>(f));
            ops_ = &InlineModel<Fn>::ops;
        } else {
            ::new (static_cast<void *>(buf_))
                Fn *(new Fn(std::forward<F>(f)));
            ops_ = &HeapModel<Fn>::ops;
        }
    }

    EventFn(EventFn &&other) noexcept : ops_(other.ops_)
    {
        if (ops_) {
            ops_->relocate(buf_, other.buf_);
            other.ops_ = nullptr;
        }
    }

    EventFn &
    operator=(EventFn &&other) noexcept
    {
        if (this != &other) {
            reset();
            ops_ = other.ops_;
            if (ops_) {
                ops_->relocate(buf_, other.buf_);
                other.ops_ = nullptr;
            }
        }
        return *this;
    }

    EventFn(const EventFn &) = delete;
    EventFn &operator=(const EventFn &) = delete;

    ~EventFn() { reset(); }

    /** Invoke; precondition: non-empty. */
    void operator()() { ops_->call(buf_); }

    explicit operator bool() const noexcept { return ops_ != nullptr; }

    /** Destroy the target, leaving the function empty. */
    void
    reset() noexcept
    {
        if (ops_) {
            ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

  private:
    struct Ops
    {
        void (*call)(void *self);
        /** Move-construct into dst from src, destroying src. */
        void (*relocate)(void *dst, void *src) noexcept;
        void (*destroy)(void *self) noexcept;
    };

    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= kInlineSize &&
               alignof(Fn) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<Fn>;
    }

    template <typename Fn>
    struct InlineModel
    {
        static void call(void *self) { (*static_cast<Fn *>(self))(); }
        static void
        relocate(void *dst, void *src) noexcept
        {
            auto *s = static_cast<Fn *>(src);
            ::new (dst) Fn(std::move(*s));
            s->~Fn();
        }
        static void
        destroy(void *self) noexcept
        {
            static_cast<Fn *>(self)->~Fn();
        }
        static constexpr Ops ops{&call, &relocate, &destroy};
    };

    template <typename Fn>
    struct HeapModel
    {
        static Fn *&ptr(void *self) { return *static_cast<Fn **>(self); }
        static void call(void *self) { (*ptr(self))(); }
        static void
        relocate(void *dst, void *src) noexcept
        {
            ::new (dst) Fn *(ptr(src));
        }
        static void
        destroy(void *self) noexcept
        {
            delete ptr(self);
        }
        static constexpr Ops ops{&call, &relocate, &destroy};
    };

    alignas(std::max_align_t) unsigned char buf_[kInlineSize];
    const Ops *ops_ = nullptr;
};

class Event;

/** Deterministic discrete-event queue over picosecond Ticks. */
class EventQueue
{
  public:
    using Callback = EventFn;

    EventQueue();

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule @p cb at absolute time @p when (>= now).
     *
     * @param what optional static label for diagnostics.
     * @return id usable with cancel().
     */
    EventId schedule(Tick when, Callback cb, const char *what = nullptr);

    /** Schedule @p cb at now() + @p delay. */
    EventId scheduleDelta(Tick delay, Callback cb,
                          const char *what = nullptr);

    /**
     * Cancel a previously scheduled event. Cancelling an id that has
     * already run, was already cancelled, or was never issued is an
     * exact no-op: no state is retained for stale ids.
     */
    void cancel(EventId id);

    /** Execute the next pending event. @return false if none pending. */
    bool runOne();

    /**
     * Run all events with when <= @p limit, then advance now() to
     * @p limit. @return number of events executed.
     */
    std::uint64_t runUntil(Tick limit);

    /** Run until the queue drains. @return number executed. */
    std::uint64_t run();

    /** Sentinel returned by nextEventTick() when no live event exists. */
    static constexpr Tick kNoEventTick = ~Tick{0};

    /**
     * Timestamp of the earliest live event without executing it, or
     * kNoEventTick when the queue is empty. Pops stale cancelled
     * residue off the heap top as a side effect.
     */
    Tick nextEventTick();

    /** True when no runnable events remain (exact). */
    bool empty() const { return live_ == 0; }

    /** Number of live (schedulable, not cancelled) events. */
    std::size_t pendingCount() const { return live_; }

    /**
     * Heap entries including not-yet-popped cancelled residue; for
     * tests asserting steady-state memory.
     */
    std::size_t heapSize() const { return heap_.size(); }

    /** Total callback slots ever created (free-listed, reused). */
    std::size_t slotPoolSize() const { return slotCount_; }

    std::uint64_t eventsScheduled() const { return scheduled_; }
    std::uint64_t eventsExecuted() const { return executed_; }

  private:
    friend class Event;

    /** Heap entry: ordering key plus a handle into the slot arena. */
    struct Node
    {
        Tick when;
        std::uint64_t seq;
        /** Low 32 bits of the slot's generation at schedule time. */
        std::uint32_t gen;
        std::uint32_t slot;
    };

    /** Callback storage, reused through a free list. Validation
     *  fields lead so stale checks touch one cache line. */
    struct Slot
    {
        /** Bumped on run/cancel; heap nodes with old gens are stale. */
        std::uint64_t gen = 0;
        bool armed = false;
        /** Reusable-Event slot: survives dispatch, keeps its cb. */
        bool persistent = false;
        /** Dispatch in progress (persistent slots only). */
        bool executing = false;
        /** Owner destroyed during dispatch; free once cb returns. */
        bool releasePending = false;
        const char *what = nullptr;
        EventFn cb;
    };

    static constexpr std::size_t kArity = 4;
    static constexpr std::uint32_t kSlotBits = 24;
    static constexpr std::uint32_t kSlotMask = (1u << kSlotBits) - 1;
    /** Slots live in fixed chunks so references survive growth. */
    static constexpr std::uint32_t kChunkBits = 9;
    static constexpr std::uint32_t kChunkSize = 1u << kChunkBits;

    static bool
    before(const Node &a, const Node &b)
    {
        return a.when != b.when ? a.when < b.when : a.seq < b.seq;
    }

    /** Does heap-node @p ngen match the slot's current generation? */
    static bool
    genMatch(std::uint64_t slot_gen, std::uint32_t ngen)
    {
        return static_cast<std::uint32_t>(slot_gen) == ngen;
    }

    Slot &slot(std::uint32_t idx) { return *slotPtr_[idx]; }
    const Slot &slot(std::uint32_t idx) const { return *slotPtr_[idx]; }

    std::uint32_t acquireSlot();
    void freeSlot(std::uint32_t idx);
    void push(Node n);
    void popTop();
    void siftDown(std::size_t i);
    /** Drop stale nodes off the top; top is live or heap empty after. */
    const Node *peekLive();
    void maybeCompact();

    // Reusable-Event plumbing (see Event).
    std::uint32_t acquirePersistent(EventFn cb, const char *what);
    void releasePersistent(std::uint32_t idx);
    void schedulePersistent(std::uint32_t idx, Tick when);
    void cancelPersistent(std::uint32_t idx);
    bool persistentScheduled(std::uint32_t idx) const
    {
        return slot(idx).armed;
    }

    Tick now_ = 0;
    std::uint64_t seq_ = 0;
    std::vector<Node> heap_;
    /** Chunked arena: slot references stay valid across growth. */
    std::vector<std::unique_ptr<Slot[]>> chunks_;
    /** Flat per-slot pointers for single-load lookup. */
    std::vector<Slot *> slotPtr_;
    std::uint32_t slotCount_ = 0;
    std::vector<std::uint32_t> freeList_;
    std::size_t live_ = 0;
    std::size_t staleNodes_ = 0;
    std::uint64_t scheduled_ = 0;
    std::uint64_t executed_ = 0;
};

/**
 * A reusable event for hot periodic actors: the owner embeds it, the
 * callback is installed once, and each occurrence is armed with
 * schedule()/scheduleDelta() — no allocation, no callback copy, no
 * id bookkeeping. The callback may re-arm its own event (the
 * self-rescheduling idiom) and may destroy the owner (release is
 * deferred until the callback returns).
 *
 * An Event must not outlive its queue. It is movable (the handle
 * transfers) but not copyable.
 */
class Event
{
  public:
    Event() = default;

    Event(EventQueue &eq, EventQueue::Callback cb,
          const char *what = nullptr)
    {
        init(eq, std::move(cb), what);
    }

    ~Event() { release(); }

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    Event(Event &&other) noexcept
        : eq_(other.eq_), slot_(other.slot_)
    {
        other.eq_ = nullptr;
    }

    Event &
    operator=(Event &&other) noexcept
    {
        if (this != &other) {
            release();
            eq_ = other.eq_;
            slot_ = other.slot_;
            other.eq_ = nullptr;
        }
        return *this;
    }

    /** Bind to a queue and install the callback (once). */
    void
    init(EventQueue &eq, EventQueue::Callback cb,
         const char *what = nullptr)
    {
        release();
        eq_ = &eq;
        slot_ = eq.acquirePersistent(std::move(cb), what);
    }

    bool valid() const { return eq_ != nullptr; }

    /** Arm at absolute time @p when; must not already be armed. */
    void schedule(Tick when) { eq_->schedulePersistent(slot_, when); }

    /** Arm at now() + @p delay; must not already be armed. */
    void
    scheduleDelta(Tick delay)
    {
        eq_->schedulePersistent(slot_, eq_->now() + delay);
    }

    /** Cancel then arm at @p when (idempotent re-arm). */
    void
    reschedule(Tick when)
    {
        eq_->cancelPersistent(slot_);
        eq_->schedulePersistent(slot_, when);
    }

    /** Disarm; no-op when idle. */
    void cancel() { eq_->cancelPersistent(slot_); }

    bool
    scheduled() const
    {
        return eq_ && eq_->persistentScheduled(slot_);
    }

  private:
    void
    release()
    {
        if (eq_) {
            eq_->releasePersistent(slot_);
            eq_ = nullptr;
        }
    }

    EventQueue *eq_ = nullptr;
    std::uint32_t slot_ = 0;
};

} // namespace enzian

#endif // ENZIAN_SIM_EVENT_QUEUE_HH
