/**
 * @file
 * Shared per-direction domain-mode plumbing.
 *
 * Every full-duplex component that participates in parallel domain
 * mode (EciLink, EthernetLink, FaultInjector) grows the same three
 * pieces of state: a source-domain clock per direction, an outbound
 * cross-domain channel per direction, and per-direction staged
 * statistics that fold into the aggregate at epoch barriers in a
 * fixed order. This header is that pattern, written once:
 *
 *  - DirDomainBinding owns the clock/channel pair per direction and
 *    the same-domain special case (no channels: deliveries stay
 *    local), plus the per-pair lookahead the component derives from
 *    its own latency floor.
 *  - DirStaged<T> owns the lazily-armed two-entry stage array whose
 *    allocation doubles as the "domain mode" flag, and folds the
 *    stages in direction order (0 then 1) so the folded aggregate is
 *    bit-identical for any thread count.
 */

#ifndef ENZIAN_SIM_DOMAIN_BINDING_HH
#define ENZIAN_SIM_DOMAIN_BINDING_HH

#include <array>
#include <memory>
#include <utility>

#include "base/logging.hh"
#include "base/units.hh"
#include "sim/domain_scheduler.hh"

namespace enzian::sim {

/**
 * Per-direction clock + outbound channel for one full-duplex link
 * between two timing domains. Direction d is "side d sends": its
 * clock is side d's domain queue and its channel carries toward side
 * d ^ 1. When both sides share one domain there are no channels and
 * crossDomain() is false — deliveries should then be scheduled
 * locally on the (shared) clock.
 */
class DirDomainBinding
{
  public:
    /**
     * Bind side 0 to @p d0 and side 1 to @p d1, creating (or sharing)
     * the channel pair with @p pair_lookahead (0 = the scheduler's
     * base lookahead; see DomainScheduler::channel). Must precede the
     * scheduler start.
     */
    void
    bind(DomainScheduler &sched, TimingDomain &d0, TimingDomain &d1,
         Tick pair_lookahead = 0)
    {
        ENZIAN_ASSERT(!bound(), "direction binding bound twice");
        clock_[0] = &d0.queue();
        clock_[1] = &d1.queue();
        if (&d0 != &d1) {
            chan_[0] = &sched.channel(d0, d1, pair_lookahead);
            chan_[1] = &sched.channel(d1, d0, pair_lookahead);
        }
    }

    bool bound() const { return clock_[0] != nullptr; }
    /** False when both sides share a domain (local delivery). */
    bool crossDomain() const { return chan_[0] != nullptr; }

    EventQueue &clock(std::size_t dir) { return *clock_[dir]; }
    /** Outbound channel for @p dir; null when !crossDomain(). */
    CrossDomainChannel *channel(std::size_t dir) { return chan_[dir]; }
    Tick now(std::size_t dir) const { return clock_[dir]->now(); }

  private:
    std::array<EventQueue *, 2> clock_{nullptr, nullptr};
    std::array<CrossDomainChannel *, 2> chan_{nullptr, nullptr};
};

/**
 * Two-entry staged state, one per direction, armed on entry to domain
 * mode (the allocation is the mode flag). Each entry is touched only
 * by its direction's source-domain thread during epochs; fold() runs
 * on the barrier coordinator in direction order, so folding is
 * deterministic for any thread count.
 */
template <typename T>
class DirStaged
{
  public:
    void
    arm()
    {
        ENZIAN_ASSERT(!armed(), "staged state armed twice");
        stage_ = std::make_unique<std::array<T, 2>>();
    }

    bool armed() const { return stage_ != nullptr; }

    T &operator[](std::size_t dir) { return (*stage_)[dir]; }
    const T &operator[](std::size_t dir) const { return (*stage_)[dir]; }

    /** Apply @p fn to direction 0's stage, then direction 1's. */
    template <typename F>
    void
    fold(F &&fn)
    {
        fn((*stage_)[0]);
        fn((*stage_)[1]);
    }

  private:
    std::unique_ptr<std::array<T, 2>> stage_;
};

} // namespace enzian::sim

#endif // ENZIAN_SIM_DOMAIN_BINDING_HH
