/**
 * @file
 * Clock domains: convert between cycles in a component's clock and
 * global ticks. The FPGA fabric runs at a bitstream-dependent clock
 * (200-300 MHz on Enzian's XCVU9P), the CPU at 2 GHz, links at their
 * serializer rates.
 */

#ifndef ENZIAN_SIM_CLOCK_DOMAIN_HH
#define ENZIAN_SIM_CLOCK_DOMAIN_HH

#include <cstdint>
#include <string>

#include "base/units.hh"

namespace enzian {

/** Cycle count within one clock domain. */
using Cycles = std::uint64_t;

/** A frequency domain with cycle/tick conversion. */
class ClockDomain
{
  public:
    /**
     * @param name domain name for diagnostics
     * @param freq_hz clock frequency in Hz (> 0)
     */
    ClockDomain(std::string name, double freq_hz);

    const std::string &name() const { return name_; }
    double frequencyHz() const { return freqHz_; }

    /** Change the frequency (e.g. loading a different bitstream). */
    void setFrequencyHz(double freq_hz);

    /** Duration of one cycle in ticks (rounded to nearest ps). */
    Tick period() const { return period_; }

    /** Ticks for @p n cycles. */
    Tick cyclesToTicks(Cycles n) const { return n * period_; }

    /** Whole cycles elapsed in @p t ticks (rounded up). */
    Cycles ticksToCycles(Tick t) const
    {
        return (t + period_ - 1) / period_;
    }

  private:
    std::string name_;
    double freqHz_;
    Tick period_;
};

} // namespace enzian

#endif // ENZIAN_SIM_CLOCK_DOMAIN_HH
