/**
 * @file
 * CrossDomainChannel implementation.
 */

#include "sim/cross_domain_channel.hh"

#include "base/logging.hh"

namespace enzian::sim {

void
CrossDomainChannel::push(Tick when, EventFn fn)
{
    // The conservative-lookahead invariant: delivery must be far
    // enough in the future that the destination domain cannot already
    // have simulated past it when the barrier drains this channel.
    ENZIAN_ASSERT(when >= srcq_.now() + lookahead_,
                  "cross-domain push violates lookahead: when=%llu "
                  "src now=%llu lookahead=%llu",
                  static_cast<unsigned long long>(when),
                  static_cast<unsigned long long>(srcq_.now()),
                  static_cast<unsigned long long>(lookahead_));
    items_.push_back(Item{when, std::move(fn)});
}

std::uint64_t
CrossDomainChannel::drain()
{
    const auto n = static_cast<std::uint64_t>(items_.size());
    for (Item &it : items_)
        dstq_.schedule(it.when, std::move(it.fn));
    items_.clear();
    forwarded_ += n;
    return n;
}

} // namespace enzian::sim
