/**
 * @file
 * CrossDomainChannel implementation.
 */

#include "sim/cross_domain_channel.hh"

#include "base/logging.hh"
#include "sim/channel_lane.hh"

namespace enzian::sim {

void
CrossDomainChannel::checkPush(Tick when) const
{
    // The conservative-lookahead invariant: delivery must be far
    // enough in the future that the destination domain cannot already
    // have simulated past it when the barrier drains this channel.
    ENZIAN_ASSERT(when >= srcq_.now() + lookahead_,
                  "cross-domain push violates lookahead: when=%llu "
                  "src now=%llu lookahead=%llu",
                  static_cast<unsigned long long>(when),
                  static_cast<unsigned long long>(srcq_.now()),
                  static_cast<unsigned long long>(lookahead_));
    // The adaptive-epoch invariant: if the source domain promised it
    // would stay send-quiescent until some tick, the scheduler may
    // have stretched the current epoch on the strength of that
    // promise, so sending earlier is unconditionally a bug.
    ENZIAN_ASSERT(srcPromise_ == nullptr ||
                      srcq_.now() >= *srcPromise_,
                  "cross-domain push violates no-send promise: "
                  "src now=%llu promised quiescent before %llu",
                  static_cast<unsigned long long>(srcq_.now()),
                  static_cast<unsigned long long>(
                      srcPromise_ ? *srcPromise_ : 0));
}

void
CrossDomainChannel::push(Tick when, EventFn fn)
{
    checkPush(when);
    entries_.push_back(Entry{
        when, kGenericLane, static_cast<std::uint32_t>(fns_.size())});
    fns_.push_back(std::move(fn));
}

std::uint32_t
CrossDomainChannel::addLane(ChannelLaneBase &lane)
{
    const auto id = static_cast<std::uint32_t>(lanes_.size());
    lanes_.push_back(&lane);
    return id;
}

void
CrossDomainChannel::pushLane(Tick when, std::uint32_t lane,
                             std::uint32_t idx)
{
    checkPush(when);
    entries_.push_back(Entry{when, lane, idx});
}

std::uint64_t
CrossDomainChannel::drain()
{
    // Slots the destination retired last epoch are free again: the
    // barrier handshake has already published those writes.
    for (ChannelLaneBase *lane : lanes_)
        lane->recycle();

    const auto n = static_cast<std::uint64_t>(entries_.size());
    for (const Entry &e : entries_) {
        if (e.lane == kGenericLane)
            dstq_.schedule(e.when, std::move(fns_[e.idx]));
        else
            lanes_[e.lane]->forward(e.when, e.idx);
    }
    entries_.clear();
    fns_.clear();
    forwarded_ += n;
    return n;
}

} // namespace enzian::sim
