/**
 * @file
 * Conservative parallel discrete-event scheduler (PDES).
 *
 * The platform is sharded into timing domains — each a TimingDomain
 * owning its own EventQueue and the SimObjects bound to it (the CPU
 * cluster, caches and DRAM in one; the FPGA, home agent and
 * accelerators in another). Domains only interact through ECI links,
 * whose serialization + flight latency gives a guaranteed lower bound
 * on cross-domain reaction time: the conservative lookahead L.
 *
 * The scheduler runs the domains in lockstep epochs of length L
 * (CHESSY-style coupling over MGSim-style component DES):
 *
 *   1. T = min over domains of the next pending event tick.
 *   2. Every domain independently runs its queue up to T + L - 1;
 *      with worker threads, domains are claimed from a shared atomic
 *      index so any thread may run any domain.
 *   3. Barrier: cross-domain messages (timestamped, at least L in
 *      the future — see CrossDomainChannel) are drained into their
 *      destination queues in a fixed merge order (destination domain
 *      id, then source domain id, then push order; the destination
 *      queue then orders by timestamp and insertion sequence), and
 *      registered barrier tasks (stats folds, tap flushes) run on the
 *      coordinator.
 *
 * Because the epoch never outruns the lookahead, no domain can
 * receive an event in its past, and because the barrier merge order
 * is fixed, the event interleaving — and therefore every simulated
 * timestamp and statistic — is bit-identical regardless of thread
 * count. Synchronization is a spin-then-wait epoch generation /
 * completion-count handshake; the release/acquire pair on those
 * atomics is what publishes queue and channel state between threads.
 */

#ifndef ENZIAN_SIM_DOMAIN_SCHEDULER_HH
#define ENZIAN_SIM_DOMAIN_SCHEDULER_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "base/stats.hh"
#include "base/units.hh"
#include "sim/cross_domain_channel.hh"
#include "sim/event_queue.hh"

namespace enzian::sim {

class DomainScheduler;

/**
 * One shard of the simulated platform: an EventQueue plus whatever
 * SimObjects were constructed against it. Created via
 * DomainScheduler::addDomain(); identified by a dense id in creation
 * order.
 */
class TimingDomain
{
  public:
    TimingDomain(const TimingDomain &) = delete;
    TimingDomain &operator=(const TimingDomain &) = delete;

    EventQueue &queue() { return eq_; }
    const EventQueue &queue() const { return eq_; }
    const std::string &name() const { return name_; }
    std::uint32_t id() const { return id_; }

    /** Events executed in this domain over the whole run. */
    std::uint64_t eventsExecuted() const { return events_.value(); }

  private:
    friend class DomainScheduler;

    TimingDomain(std::string name, std::uint32_t id)
        : name_(std::move(name)), id_(id)
    {
    }

    std::string name_;
    std::uint32_t id_;
    EventQueue eq_;
    /** Events run in the current epoch; written by the worker that
     *  ran the domain, read by the coordinator after the barrier
     *  handshake. */
    std::uint64_t epochExecuted_ = 0;
    Counter events_;
    Counter stalls_;
};

/** Epoch-synchronized conservative PDES driver (see file comment). */
class DomainScheduler
{
  public:
    /**
     * @param name stat-group name ("<machine>.sched" by convention).
     * @param lookahead minimum cross-domain latency in ticks; must be
     *        > 0. Derive it from the platform (e.g.
     *        eci::EciLink::minCrossLatency), never hard-code it.
     * @param threads total threads participating in epoch execution,
     *        including the caller of run(); 0 is treated as 1.
     */
    DomainScheduler(std::string name, Tick lookahead,
                    std::uint32_t threads);
    ~DomainScheduler();

    DomainScheduler(const DomainScheduler &) = delete;
    DomainScheduler &operator=(const DomainScheduler &) = delete;

    /** Create a new timing domain. Must precede the first run. */
    TimingDomain &addDomain(const std::string &name);

    std::size_t domainCount() const { return domains_.size(); }
    TimingDomain &domain(std::size_t i) { return *domains_[i]; }

    /**
     * Get-or-create the mailbox carrying events from @p src to
     * @p dst. Channel creation must precede the first run; pushes are
     * legal from the source domain while running.
     */
    CrossDomainChannel &channel(TimingDomain &src, TimingDomain &dst);

    /**
     * Register a function to run on the coordinator thread at every
     * epoch barrier, after channels are drained, in registration
     * order. Used for deterministic folds of per-domain staged state
     * (stats, taps) while all workers are quiescent.
     */
    void addBarrierTask(std::function<void()> fn);

    /** Run epochs until every domain queue drains. @return events. */
    std::uint64_t run();

    /**
     * Run epochs until simulated time @p limit, then advance every
     * domain to @p limit. @return events executed.
     */
    std::uint64_t runUntil(Tick limit);

    /** Simulated time every domain has reached (between runs). */
    Tick now() const { return now_; }

    Tick lookahead() const { return lookahead_; }
    std::uint32_t threads() const { return threads_; }
    const std::string &name() const { return stats_.name(); }

    std::uint64_t epochs() const { return epochs_.value(); }
    std::uint64_t eventsExecuted() const { return totalEvents_; }

  private:
    std::uint64_t runLoop(Tick limit, bool bounded);
    void executeEpoch(Tick end);
    void runClaimedDomains();
    void workerLoop();
    void startWorkers();
    void stopWorkers();
    void barrier();
    Tick minNextTick();

    StatGroup stats_;
    Tick lookahead_;
    std::uint32_t threads_;
    Tick now_ = 0;
    bool started_ = false;

    std::vector<std::unique_ptr<TimingDomain>> domains_;
    std::vector<std::unique_ptr<CrossDomainChannel>> channels_;
    /** channels_ sorted by (dst id, src id); rebuilt at run start. */
    std::vector<CrossDomainChannel *> drainOrder_;
    std::vector<std::function<void()>> barrierTasks_;

    // Epoch handshake (see workerLoop for the protocol).
    std::vector<std::thread> workers_;
    std::atomic<std::uint64_t> epochGen_{0};
    std::atomic<std::uint32_t> nextDomain_{0};
    std::atomic<std::uint32_t> doneCount_{0};
    std::atomic<bool> stop_{false};
    Tick epochEnd_ = 0;

    std::uint64_t totalEvents_ = 0;
    Counter epochs_;
    Counter crossMsgs_;
    Accumulator imbalance_;
};

} // namespace enzian::sim

#endif // ENZIAN_SIM_DOMAIN_SCHEDULER_HH
