/**
 * @file
 * Conservative parallel discrete-event scheduler (PDES).
 *
 * The platform is sharded into timing domains — each a TimingDomain
 * owning its own EventQueue and the SimObjects bound to it (the CPU
 * cluster, caches and DRAM in one; the FPGA, home agent and
 * accelerators in another; optionally the NIC/switch fabric, DRAM
 * channels and BMC in domains of their own). Domains only interact
 * through cross-domain channels, whose modeled link latency gives a
 * guaranteed lower bound on cross-domain reaction time: the
 * conservative lookahead of that channel.
 *
 * The scheduler runs the domains in lockstep epochs (CHESSY-style
 * coupling over MGSim-style component DES):
 *
 *   1. T = min over domains of the next pending event tick.
 *   2. Every domain independently runs its queue up to the epoch end;
 *      with worker threads, domains are claimed from a shared atomic
 *      index so any thread may run any domain.
 *   3. Barrier: cross-domain messages (timestamped, at least the
 *      channel lookahead in the future — see CrossDomainChannel) are
 *      drained into their destination queues in a fixed merge order
 *      (destination domain id, then source domain id, then push
 *      order; the destination queue then orders by timestamp and
 *      insertion sequence), and registered barrier tasks (stats
 *      folds, tap flushes) run on the coordinator.
 *
 * Epoch length. In fixed mode the epoch is always the minimum channel
 * lookahead: end = T + L_min - 1. With Options::adaptive set, the
 * coordinator computes the true lower bound on the next cross-domain
 * delivery (LBTS) before each epoch: for every domain d that has
 * pending events and outbound channels,
 *
 *     bound_d = max(nextEventTick_d, promise_d) + outLookahead_d
 *
 * where promise_d is the domain's no-sends-before promise (see
 * promiseNoSendsBefore) and outLookahead_d the minimum lookahead over
 * d's outbound channels. No message can deliver before min_d bound_d,
 * so the epoch may stretch to that bound minus one — capped at
 * max_grow fixed steps, never shorter than the fixed epoch. The
 * decision reads only pre-epoch queue state, promises and static
 * lookaheads, never the wall clock, so the epoch sequence — and with
 * it every simulated timestamp and statistic — stays a pure function
 * of the simulation and is bit-identical regardless of thread count.
 *
 * Synchronization is a spin-then-wait epoch generation /
 * completion-count handshake; the release/acquire pair on those
 * atomics is what publishes queue and channel state between threads.
 */

#ifndef ENZIAN_SIM_DOMAIN_SCHEDULER_HH
#define ENZIAN_SIM_DOMAIN_SCHEDULER_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "base/stats.hh"
#include "base/units.hh"
#include "sim/cross_domain_channel.hh"
#include "sim/event_queue.hh"

namespace enzian::sim {

class DomainScheduler;

/**
 * One shard of the simulated platform: an EventQueue plus whatever
 * SimObjects were constructed against it. Created via
 * DomainScheduler::addDomain(); identified by a dense id in creation
 * order.
 */
class TimingDomain
{
  public:
    TimingDomain(const TimingDomain &) = delete;
    TimingDomain &operator=(const TimingDomain &) = delete;

    EventQueue &queue() { return eq_; }
    const EventQueue &queue() const { return eq_; }
    const std::string &name() const { return name_; }
    std::uint32_t id() const { return id_; }

    /** Events executed in this domain over the whole run. */
    std::uint64_t eventsExecuted() const { return events_.value(); }

    /**
     * Promise that no event in this domain will push into an outbound
     * cross-domain channel while the domain clock is before @p until.
     * The adaptive scheduler uses the promise to stretch epochs past
     * dense local-only activity; a push that breaks it dies in the
     * channel's contract check. The promise is a single claim about
     * the whole domain — only raise it (it is monotonic, and expires
     * by itself once the clock passes it) from code that knows every
     * possible sender in the domain is quiescent. Call it from the
     * domain's own events (or between runs); the coordinator reads it
     * at the next barrier under the epoch handshake.
     */
    void
    promiseNoSendsBefore(Tick until)
    {
        if (until > promise_)
            promise_ = until;
    }

    /** Current no-sends-before promise (0 = no promise). */
    Tick sendPromise() const { return promise_; }

  private:
    friend class DomainScheduler;

    TimingDomain(std::string name, std::uint32_t id)
        : name_(std::move(name)), id_(id)
    {
    }

    std::string name_;
    std::uint32_t id_;
    EventQueue eq_;
    /** Events run in the current epoch; written by the worker that
     *  ran the domain, read by the coordinator after the barrier
     *  handshake. */
    std::uint64_t epochExecuted_ = 0;
    /** No-sends-before promise; written in-domain, read at barriers. */
    Tick promise_ = 0;
    /** Min lookahead over outbound channels (kNoEventTick when the
     *  domain has none); frozen at scheduler start. */
    Tick outLookahead_ = EventQueue::kNoEventTick;
    Counter events_;
    Counter stalls_;
};

/** Epoch-synchronized conservative PDES driver (see file comment). */
class DomainScheduler
{
  public:
    /** Epoch policy knobs (see the file comment for the algorithm). */
    struct Options
    {
        /** Grow epochs to the provable cross-domain delivery bound. */
        bool adaptive = false;
        /** Epoch growth cap, in multiples of the fixed epoch step. */
        std::uint32_t max_grow = 16;
    };

    /**
     * @param name stat-group name ("<machine>.sched" by convention).
     * @param lookahead minimum cross-domain latency in ticks; must be
     *        > 0. Derive it from the platform (e.g.
     *        eci::EciLink::minCrossLatency), never hard-code it.
     *        Channels may declare larger (or, rarely, smaller)
     *        per-pair lookaheads; the fixed epoch step is the minimum
     *        over all of them.
     * @param threads total threads participating in epoch execution,
     *        including the caller of run(); 0 is treated as 1.
     */
    DomainScheduler(std::string name, Tick lookahead,
                    std::uint32_t threads, Options opts);
    DomainScheduler(std::string name, Tick lookahead,
                    std::uint32_t threads);
    ~DomainScheduler();

    DomainScheduler(const DomainScheduler &) = delete;
    DomainScheduler &operator=(const DomainScheduler &) = delete;

    /** Create a new timing domain. Must precede the first run. */
    TimingDomain &addDomain(const std::string &name);

    std::size_t domainCount() const { return domains_.size(); }
    TimingDomain &domain(std::size_t i) { return *domains_[i]; }

    /**
     * Get-or-create the mailbox carrying events from @p src to
     * @p dst. Channel creation must precede the first run; pushes are
     * legal from the source domain while running.
     *
     * @param lookahead this user's bound on how soon after a source
     *        event a message may deliver (0 = the scheduler's base
     *        lookahead). When several users share one channel the
     *        channel enforces the minimum of their requests, so
     *        registration order never matters.
     */
    CrossDomainChannel &channel(TimingDomain &src, TimingDomain &dst,
                                Tick lookahead = 0);

    /**
     * Register a function to run on the coordinator thread at every
     * epoch barrier, after channels are drained, in registration
     * order. Used for deterministic folds of per-domain staged state
     * (stats, taps) while all workers are quiescent.
     */
    void addBarrierTask(std::function<void()> fn);

    /** Run epochs until every domain queue drains. @return events. */
    std::uint64_t run();

    /**
     * Run epochs until simulated time @p limit, then advance every
     * domain to @p limit. @return events executed.
     */
    std::uint64_t runUntil(Tick limit);

    /** Simulated time every domain has reached (between runs). */
    Tick now() const { return now_; }

    Tick lookahead() const { return lookahead_; }
    /** Fixed epoch step: min lookahead over all channels (frozen at
     *  start; equals lookahead() until a channel asks for less). */
    Tick fixedStep() const { return fixedStep_; }
    std::uint32_t threads() const { return threads_; }
    bool adaptive() const { return opts_.adaptive; }
    const std::string &name() const { return stats_.name(); }

    std::uint64_t epochs() const { return epochs_.value(); }
    std::uint64_t eventsExecuted() const { return totalEvents_; }
    /** Epochs stretched past the fixed step by the adaptive policy. */
    std::uint64_t adaptiveGrows() const { return adaptiveGrows_.value(); }
    /** Fixed-length epochs immediately following a stretched one. */
    std::uint64_t
    adaptiveShrinks() const
    {
        return adaptiveShrinks_.value();
    }

    /**
     * Wall-clock nanoseconds spent inside epoch barriers (drains,
     * barrier tasks, stat folds) since construction. Host-time
     * profiling only — deliberately kept out of the stats registry so
     * registry exports stay byte-identical across runs and machines.
     */
    std::uint64_t barrierWallNs() const { return barrierWallNs_; }

  private:
    std::uint64_t runLoop(Tick limit, bool bounded);
    Tick epochEndFor(Tick next, Tick limit, bool bounded);
    void executeEpoch(Tick end);
    void runClaimedDomains();
    void workerLoop();
    void startWorkers();
    void stopWorkers();
    void barrier();
    Tick minNextTick();

    StatGroup stats_;
    Tick lookahead_;
    std::uint32_t threads_;
    Options opts_;
    Tick now_ = 0;
    bool started_ = false;

    std::vector<std::unique_ptr<TimingDomain>> domains_;
    std::vector<std::unique_ptr<CrossDomainChannel>> channels_;
    /** channels_ sorted by (dst id, src id); rebuilt at run start. */
    std::vector<CrossDomainChannel *> drainOrder_;
    std::vector<std::function<void()>> barrierTasks_;

    // Epoch handshake (see workerLoop for the protocol).
    std::vector<std::thread> workers_;
    std::atomic<std::uint64_t> epochGen_{0};
    std::atomic<std::uint32_t> nextDomain_{0};
    std::atomic<std::uint32_t> doneCount_{0};
    std::atomic<bool> stop_{false};
    Tick epochEnd_ = 0;

    /** Min channel lookahead; frozen by startWorkers(). */
    Tick fixedStep_ = 0;
    /** Did the previous epoch grow past the fixed step? */
    bool lastGrew_ = false;

    std::uint64_t totalEvents_ = 0;
    std::uint64_t barrierWallNs_ = 0;
    Counter epochs_;
    Counter crossMsgs_;
    Counter adaptiveGrows_;
    Counter adaptiveShrinks_;
    Accumulator imbalance_;
    /** Epoch length in multiples of the fixed step. */
    Histogram epochLen_{0.0, 64.0, 64};
};

} // namespace enzian::sim

#endif // ENZIAN_SIM_DOMAIN_SCHEDULER_HH
