/**
 * @file
 * Typed slot arenas for hot cross-domain message types.
 *
 * A ChannelLane<T> rides on one CrossDomainChannel and carries one
 * dominant message type (EciMsg, Ethernet frames) without any
 * per-message allocation: payloads live in chunked slot arenas owned
 * by the lane, the channel's entry stream records only (tick, lane,
 * slot), and the closure scheduled into the destination queue at the
 * barrier is a two-word [lane, slot] capture that always fits
 * EventFn's inline buffer. Draining a lane-heavy channel therefore
 * walks a cache-linear SoA stream instead of chasing one heap
 * allocation per message.
 *
 * Slot lifecycle (all hand-offs ride the epoch barrier handshake, so
 * no atomics are needed anywhere):
 *
 *   1. source thread, during an epoch: push() pops a slot from the
 *      free list, copies the payload in, and appends an entry to the
 *      channel.
 *   2. coordinator, at the barrier: the channel drain calls forward(),
 *      which schedules the inline delivery closure into the
 *      destination queue.
 *   3. destination thread, in a later epoch: the closure runs the
 *      handler against the slot and retires it.
 *   4. coordinator, at the next barrier: recycle() moves retired
 *      slots back to the free list.
 *
 * The chunk-pointer table has fixed capacity so growing the arena
 * (source thread) never relocates storage the destination thread may
 * be reading through.
 */

#ifndef ENZIAN_SIM_CHANNEL_LANE_HH
#define ENZIAN_SIM_CHANNEL_LANE_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "base/logging.hh"
#include "base/units.hh"
#include "sim/cross_domain_channel.hh"

namespace enzian::sim {

/** Type-erased lane interface the channel drains through. */
class ChannelLaneBase
{
  public:
    virtual ~ChannelLaneBase() = default;

  protected:
    ChannelLaneBase() = default;

  private:
    friend class CrossDomainChannel;

    /** Schedule slot @p idx into the destination at @p when. */
    virtual void forward(Tick when, std::uint32_t idx) = 0;
    /** Return slots retired by the destination to the free list. */
    virtual void recycle() = 0;
};

/**
 * Slot-arena lane for payload type @p T (see file comment). T must be
 * copy-assignable and default-constructible; the handler runs in the
 * destination domain.
 */
template <typename T>
class ChannelLane final : public ChannelLaneBase
{
  public:
    using Handler = std::function<void(T &)>;

    ChannelLane() = default;
    ChannelLane(const ChannelLane &) = delete;
    ChannelLane &operator=(const ChannelLane &) = delete;

    /**
     * Register on @p chan and install the destination-side @p handler.
     * Must precede the scheduler start (lane registration is part of
     * the channel's drain plan).
     */
    void
    attach(CrossDomainChannel &chan, Handler handler)
    {
        ENZIAN_ASSERT(chan_ == nullptr, "lane attached twice");
        chan_ = &chan;
        handler_ = std::move(handler);
        id_ = chan.addLane(*this);
    }

    bool attached() const { return chan_ != nullptr; }

    /**
     * Copy @p value into a slot and enqueue it for delivery at
     * absolute time @p when. Source-domain threads only; same
     * lookahead/promise contract as CrossDomainChannel::push.
     */
    void
    push(Tick when, const T &value)
    {
        const std::uint32_t idx = acquire();
        slot(idx) = value;
        chan_->pushLane(when, id_, idx);
    }

    /** Chunks allocated so far (tests: proves slots are recycled). */
    std::uint32_t chunksAllocated() const { return chunkCount_; }

  private:
    static constexpr std::uint32_t kChunkSlots = 256;
    static constexpr std::uint32_t kMaxChunks = 1024;

    void
    forward(Tick when, std::uint32_t idx) override
    {
        // Two-word capture: always inline in EventFn, no allocation.
        chan_->dstQueue().schedule(when,
                                   [this, idx] { deliver(idx); });
    }

    void
    deliver(std::uint32_t idx)
    {
        handler_(slot(idx));
        retired_.push_back(idx);
    }

    void
    recycle() override
    {
        free_.insert(free_.end(), retired_.begin(), retired_.end());
        retired_.clear();
    }

    std::uint32_t
    acquire()
    {
        if (free_.empty())
            grow();
        const std::uint32_t idx = free_.back();
        free_.pop_back();
        return idx;
    }

    void
    grow()
    {
        ENZIAN_ASSERT(chunkCount_ < kMaxChunks,
                      "channel lane arena exhausted (%u chunks); "
                      "more than %u messages in flight",
                      static_cast<unsigned>(kMaxChunks),
                      static_cast<unsigned>(kMaxChunks * kChunkSlots));
        chunks_[chunkCount_] = std::make_unique<T[]>(kChunkSlots);
        const std::uint32_t base = chunkCount_ * kChunkSlots;
        // Reverse so acquire() hands slots out in ascending order.
        for (std::uint32_t i = kChunkSlots; i > 0; --i)
            free_.push_back(base + i - 1);
        ++chunkCount_;
    }

    T &
    slot(std::uint32_t idx)
    {
        return chunks_[idx / kChunkSlots][idx % kChunkSlots];
    }

    CrossDomainChannel *chan_ = nullptr;
    std::uint32_t id_ = 0;
    Handler handler_;
    /** Fixed-capacity chunk table: growth never relocates payloads. */
    std::array<std::unique_ptr<T[]>, kMaxChunks> chunks_;
    std::uint32_t chunkCount_ = 0;
    /** Popped by the source thread during epochs, refilled by the
     *  coordinator at barriers. */
    std::vector<std::uint32_t> free_;
    /** Pushed by the destination thread during epochs, drained by the
     *  coordinator at barriers. */
    std::vector<std::uint32_t> retired_;
};

} // namespace enzian::sim

#endif // ENZIAN_SIM_CHANNEL_LANE_HH
