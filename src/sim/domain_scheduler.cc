/**
 * @file
 * DomainScheduler implementation.
 *
 * Handshake protocol. The coordinator (whichever thread called run())
 * publishes an epoch by storing the epoch end tick and bumping
 * epochGen_ with release order; workers wait for the bump with
 * acquire order, claim domains from nextDomain_ (relaxed fetch_add —
 * assignment order does not affect the simulation, only which thread
 * runs which independent domain), run each claimed queue to the epoch
 * end, and signal completion on doneCount_ with acq_rel. The
 * coordinator participates in the claiming itself, then waits for
 * doneCount_ to reach the worker count. The release/acquire pairs on
 * epochGen_ and doneCount_ are the only synchronization the queues
 * and channels need: between them exactly one thread touches any
 * given domain, and between epochs only the coordinator runs.
 *
 * Waiting is spin-then-yield-then-futex: a short pause loop for the
 * common case where the other side arrives within microseconds, a
 * yield loop so an oversubscribed host (fewer cores than threads)
 * makes progress, then C++20 atomic wait/notify so an idle worker
 * sleeps properly between epochs.
 *
 * Epoch sizing (epochEndFor) runs on the coordinator between epochs
 * and reads only queue state, promises and static lookaheads — the
 * wall clock is measured around the barrier purely for profiling and
 * never feeds back into any decision.
 */

#include "sim/domain_scheduler.hh"

#include <algorithm>
#include <chrono>

#include "base/logging.hh"
#include "obs/registry.hh"

namespace enzian::sim {

namespace {

inline void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield" ::: "memory");
#else
    std::this_thread::yield();
#endif
}

constexpr int kSpinIters = 256;
constexpr int kYieldIters = 1024;

/** a + b saturating at kNoEventTick - 1 (a legal epoch end). */
inline Tick
saturatingAdd(Tick a, Tick b)
{
    const Tick sum = a + b;
    if (sum < a)
        return EventQueue::kNoEventTick - 1;
    return sum;
}

} // namespace

DomainScheduler::DomainScheduler(std::string name, Tick lookahead,
                                 std::uint32_t threads, Options opts)
    : stats_(std::move(name)), lookahead_(lookahead),
      threads_(threads == 0 ? 1 : threads), opts_(opts)
{
    ENZIAN_ASSERT(lookahead_ > 0,
                  "domain scheduler needs a positive lookahead");
    ENZIAN_ASSERT(opts_.max_grow > 0,
                  "adaptive epoch growth cap must be positive");
    stats_.addCounter("epochs", &epochs_);
    stats_.addCounter("cross_msgs", &crossMsgs_);
    stats_.addCounter("adaptive_grows", &adaptiveGrows_);
    stats_.addCounter("adaptive_shrinks", &adaptiveShrinks_);
    stats_.addAccumulator("epoch_imbalance", &imbalance_);
    stats_.addHistogram("epoch_len", &epochLen_);
    obs::Registry::global().add(&stats_);
}

DomainScheduler::DomainScheduler(std::string name, Tick lookahead,
                                 std::uint32_t threads)
    : DomainScheduler(std::move(name), lookahead, threads, Options())
{
}

DomainScheduler::~DomainScheduler()
{
    stopWorkers();
    obs::Registry::global().remove(&stats_);
}

TimingDomain &
DomainScheduler::addDomain(const std::string &name)
{
    ENZIAN_ASSERT(!started_, "addDomain after the scheduler started");
    const auto id = static_cast<std::uint32_t>(domains_.size());
    auto *d = new TimingDomain(name, id);
    domains_.emplace_back(d);
    stats_.addCounter("d" + std::to_string(id) + "_events",
                      &d->events_);
    stats_.addCounter("d" + std::to_string(id) + "_stalls",
                      &d->stalls_);
    return *d;
}

CrossDomainChannel &
DomainScheduler::channel(TimingDomain &src, TimingDomain &dst,
                         Tick lookahead)
{
    ENZIAN_ASSERT(&src != &dst, "channel to own domain");
    const Tick req = lookahead == 0 ? lookahead_ : lookahead;
    for (auto &ch : channels_) {
        if (ch->srcDomainId() == src.id() &&
            ch->dstDomainId() == dst.id()) {
            // Shared channel: enforce the tightest bound any user
            // asked for. min() is order-independent, so the result
            // never depends on binding order.
            if (req < ch->lookahead_) {
                ENZIAN_ASSERT(!started_, "channel lookahead tightened "
                                         "after the scheduler started");
                ch->lookahead_ = req;
            }
            return *ch;
        }
    }
    ENZIAN_ASSERT(!started_,
                  "channel creation after the scheduler started");
    channels_.emplace_back(new CrossDomainChannel(
        src.queue(), dst.queue(), src.id(), dst.id(), req,
        &src.promise_));
    return *channels_.back();
}

void
DomainScheduler::addBarrierTask(std::function<void()> fn)
{
    ENZIAN_ASSERT(!started_,
                  "barrier task registration after the scheduler "
                  "started");
    barrierTasks_.push_back(std::move(fn));
}

Tick
DomainScheduler::minNextTick()
{
    Tick next = EventQueue::kNoEventTick;
    for (auto &d : domains_)
        next = std::min(next, d->eq_.nextEventTick());
    return next;
}

void
DomainScheduler::startWorkers()
{
    if (started_)
        return;
    started_ = true;
    // Freeze the epoch geometry: the fixed step is the tightest
    // channel lookahead (a channel below the base lookahead — e.g. a
    // DRAM hop — must shrink fixed epochs to stay conservative), and
    // each domain's outbound bound is the tightest lookahead over the
    // channels it can send through.
    fixedStep_ = lookahead_;
    for (auto &ch : channels_)
        fixedStep_ = std::min(fixedStep_, ch->lookahead_);
    for (auto &d : domains_)
        d->outLookahead_ = EventQueue::kNoEventTick;
    for (auto &ch : channels_) {
        TimingDomain &src = *domains_[ch->srcDomainId()];
        src.outLookahead_ =
            std::min(src.outLookahead_, ch->lookahead_);
    }
    // Rebuild the drain order: (destination id, source id) regardless
    // of channel creation order, so the barrier merge is a property
    // of the domain graph alone.
    drainOrder_.clear();
    for (auto &ch : channels_)
        drainOrder_.push_back(ch.get());
    std::sort(drainOrder_.begin(), drainOrder_.end(),
              [](const CrossDomainChannel *a,
                 const CrossDomainChannel *b) {
                  if (a->dstDomainId() != b->dstDomainId())
                      return a->dstDomainId() < b->dstDomainId();
                  return a->srcDomainId() < b->srcDomainId();
              });
    // Never more participants than domains; the coordinator is one.
    const auto cap = static_cast<std::uint32_t>(
        std::max<std::size_t>(domains_.size(), 1));
    const std::uint32_t participants = std::min(threads_, cap);
    for (std::uint32_t i = 1; i < participants; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

void
DomainScheduler::stopWorkers()
{
    if (workers_.empty())
        return;
    stop_.store(true, std::memory_order_release);
    epochGen_.fetch_add(1, std::memory_order_release);
    epochGen_.notify_all();
    for (std::thread &t : workers_)
        t.join();
    workers_.clear();
}

void
DomainScheduler::runClaimedDomains()
{
    const auto n = static_cast<std::uint32_t>(domains_.size());
    for (;;) {
        const std::uint32_t i =
            nextDomain_.fetch_add(1, std::memory_order_relaxed);
        if (i >= n)
            break;
        TimingDomain &d = *domains_[i];
        d.epochExecuted_ = d.eq_.runUntil(epochEnd_);
    }
}

void
DomainScheduler::workerLoop()
{
    std::uint64_t seen = 0;
    for (;;) {
        // Wait for the next epoch publication (gen > seen).
        std::uint64_t g = epochGen_.load(std::memory_order_acquire);
        int spins = 0;
        while (g == seen) {
            if (spins < kSpinIters) {
                ++spins;
                cpuRelax();
            } else if (spins < kSpinIters + kYieldIters) {
                ++spins;
                std::this_thread::yield();
            } else {
                epochGen_.wait(g, std::memory_order_acquire);
            }
            g = epochGen_.load(std::memory_order_acquire);
        }
        seen = g;
        if (stop_.load(std::memory_order_acquire))
            return;
        runClaimedDomains();
        doneCount_.fetch_add(1, std::memory_order_acq_rel);
        doneCount_.notify_all();
    }
}

void
DomainScheduler::executeEpoch(Tick end)
{
    epochEnd_ = end;
    if (workers_.empty()) {
        // Sequential mode (threads == 1): identical epoch semantics,
        // domains run in id order on the caller.
        for (auto &d : domains_)
            d->epochExecuted_ = d->eq_.runUntil(end);
        return;
    }
    nextDomain_.store(0, std::memory_order_relaxed);
    doneCount_.store(0, std::memory_order_relaxed);
    epochGen_.fetch_add(1, std::memory_order_release);
    epochGen_.notify_all();
    runClaimedDomains();
    const auto want = static_cast<std::uint32_t>(workers_.size());
    std::uint32_t done = doneCount_.load(std::memory_order_acquire);
    int spins = 0;
    while (done < want) {
        if (spins < kSpinIters) {
            ++spins;
            cpuRelax();
        } else if (spins < kSpinIters + kYieldIters) {
            ++spins;
            std::this_thread::yield();
        } else {
            doneCount_.wait(done, std::memory_order_acquire);
        }
        done = doneCount_.load(std::memory_order_acquire);
    }
}

void
DomainScheduler::barrier()
{
    const auto t0 = std::chrono::steady_clock::now();
    std::uint64_t crossed = 0;
    for (CrossDomainChannel *ch : drainOrder_)
        crossed += ch->drain();
    crossMsgs_.inc(crossed);
    for (auto &task : barrierTasks_)
        task();

    epochs_.inc();
    std::uint64_t epochTotal = 0;
    std::uint64_t lo = ~std::uint64_t{0};
    std::uint64_t hi = 0;
    for (auto &d : domains_) {
        const std::uint64_t e = d->epochExecuted_;
        d->events_.inc(e);
        if (e == 0)
            d->stalls_.inc();
        epochTotal += e;
        lo = std::min(lo, e);
        hi = std::max(hi, e);
    }
    totalEvents_ += epochTotal;
    if (epochTotal > 0) {
        const double mean = static_cast<double>(epochTotal) /
                            static_cast<double>(domains_.size());
        imbalance_.sample(static_cast<double>(hi - lo) / mean);
    }
    barrierWallNs_ += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
}

Tick
DomainScheduler::epochEndFor(Tick next, Tick limit, bool bounded)
{
    // Closed fixed epoch [next, next + step - 1]: any cross-domain
    // message sent inside it delivers at >= send + step > epoch end.
    Tick end = saturatingAdd(next, fixedStep_ - 1);
    if (bounded && end > limit)
        end = limit;

    bool grew = false;
    if (opts_.adaptive) {
        // LBTS: the earliest tick any cross-domain message could
        // still deliver at. A domain contributes only if it has both
        // pending events (events are the only source of pushes) and
        // outbound channels; its first possible push is at
        // max(next event, no-sends-before promise).
        Tick bound = EventQueue::kNoEventTick;
        for (auto &d : domains_) {
            if (d->outLookahead_ == EventQueue::kNoEventTick)
                continue;
            const Tick n = d->eq_.nextEventTick();
            if (n == EventQueue::kNoEventTick)
                continue;
            const Tick first = std::max(n, d->promise_);
            bound =
                std::min(bound, saturatingAdd(first, d->outLookahead_));
        }
        const Tick span = static_cast<Tick>(opts_.max_grow) * fixedStep_;
        const bool spanOverflow = span / fixedStep_ != opts_.max_grow;
        Tick grown = spanOverflow ? EventQueue::kNoEventTick - 1
                                  : saturatingAdd(next, span - 1);
        if (bound != EventQueue::kNoEventTick)
            grown = std::min(grown, bound - 1);
        if (bounded && grown > limit)
            grown = limit;
        if (grown > end) {
            end = grown;
            grew = true;
        }
    }
    if (grew)
        adaptiveGrows_.inc();
    else if (lastGrew_)
        adaptiveShrinks_.inc();
    lastGrew_ = grew;
    epochLen_.sample(static_cast<double>(end - next + 1) /
                     static_cast<double>(fixedStep_));
    return end;
}

std::uint64_t
DomainScheduler::runLoop(Tick limit, bool bounded)
{
    ENZIAN_ASSERT(!domains_.empty(), "scheduler has no domains");
    startWorkers();
    const std::uint64_t before = totalEvents_;
    // Harness code running between epochs (e.g. a bench issuing the
    // first transfers before run()) may send straight into a channel;
    // drain those so the loop's first minNextTick() can see them.
    // Inside the loop every barrier leaves the channels empty.
    {
        std::uint64_t crossed = 0;
        for (CrossDomainChannel *ch : drainOrder_)
            crossed += ch->drain();
        crossMsgs_.inc(crossed);
    }
    for (;;) {
        const Tick next = minNextTick();
        if (next == EventQueue::kNoEventTick)
            break;
        if (bounded && next > limit)
            break;
        const Tick end = epochEndFor(next, limit, bounded);
        executeEpoch(end);
        now_ = end;
        barrier();
    }
    if (bounded && limit > now_) {
        // Nothing pending up to the limit; advance every clock.
        for (auto &d : domains_)
            d->eq_.runUntil(limit);
        now_ = limit;
    }
    return totalEvents_ - before;
}

std::uint64_t
DomainScheduler::run()
{
    return runLoop(0, false);
}

std::uint64_t
DomainScheduler::runUntil(Tick limit)
{
    return runLoop(limit, true);
}

} // namespace enzian::sim
