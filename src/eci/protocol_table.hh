/**
 * @file
 * Pluggable coherence-protocol tables.
 *
 * A ProtocolTable bundles every protocol *decision* the two engines
 * (eci::HomeAgent, eci::RemoteAgent) and the exhaustive model checker
 * (verif::Model) consult: what a home read grants, which request a
 * remote write issues, how snoops are answered. The base class
 * implements the shipped ECI/MOESI behaviour by delegating to the
 * pure kernels in protocol_kernel.hh, so the historical "one source
 * of truth" property is preserved — variants override only the
 * decisions that differ and are re-verified by the same checker.
 *
 * Shipped tables:
 *  - "moesi":  the ECI protocol as described in the paper (default);
 *  - "mesi":   simplified invalidate protocol without the Owned
 *              state — a shared read of a dirty home copy flushes the
 *              data to the source and downgrades to Shared instead of
 *              keeping an Owned copy;
 *  - "dragon": update-based writes in the style of the Dragon
 *              protocol — a write to a Shared/Owned line sends a
 *              full-line RUPD that refreshes the home's surviving
 *              copy; the writer continues in Owned and updates on
 *              every subsequent write instead of invalidating.
 *
 * Tables are stateless singletons; agents and the checker hold a
 * `const ProtocolTable *` and never own it.
 */

#ifndef ENZIAN_ECI_PROTOCOL_TABLE_HH
#define ENZIAN_ECI_PROTOCOL_TABLE_HH

#include <string>
#include <vector>

#include "eci/protocol_kernel.hh"

namespace enzian::eci::proto {

/** Protocol decision table; the base class is the shipped MOESI. */
class ProtocolTable
{
  public:
    virtual ~ProtocolTable() = default;

    /** Registry name ("moesi", "mesi", "dragon"). */
    virtual const char *name() const = 0;
    /** One-line description for --list-protocols. */
    virtual const char *description() const = 0;

    /** Home cache states a line may start in (MESI has no Owned). */
    virtual std::vector<cache::MoesiState> homeStableStates() const;

    // Home-side decisions.
    virtual HomeReadStep homeRead(cache::MoesiState local,
                                  cache::MoesiState dir, bool exclusive,
                                  bool allocate) const;
    virtual HomeUpgradeStep homeUpgrade(cache::MoesiState local,
                                        cache::MoesiState dir) const;
    virtual HomeWritebackStep homeWriteback(cache::MoesiState dir) const;
    virtual cache::MoesiState homeEvict() const;
    /** @p local lets update protocols serve home reads from the copy
     *  their updates keep fresh instead of forwarding. */
    virtual SnoopKind homeLocalReadSnoop(cache::MoesiState local,
                                         cache::MoesiState dir) const;
    virtual SnoopKind homeLocalWriteSnoop(cache::MoesiState dir) const;
    virtual cache::MoesiState homeSnoopResponse(Opcode ack) const;

    // Remote-side decisions.
    virtual cache::MoesiState remoteFillState(Grant g) const;
    virtual RemoteWriteStep remoteWrite(cache::MoesiState s) const;
    /** Cache state a PACK answering RUPG/RUPD installs. */
    virtual cache::MoesiState remoteUpgradeResult(Grant g) const;
    virtual Opcode remoteEvict(cache::MoesiState s) const;
    virtual RemoteSnoopStep remoteSnoop(cache::MoesiState s,
                                        Opcode snoop) const;
};

/** The shipped ECI/MOESI table (also the engines' default). */
const ProtocolTable &moesiProtocol();

/** Simplified MESI (no Owned state). */
const ProtocolTable &mesiProtocol();

/** Update-based Dragon-style table. */
const ProtocolTable &dragonProtocol();

/** All registered tables, in a fixed order. */
const std::vector<const ProtocolTable *> &allProtocols();

/** Look a table up by name; nullptr if unknown. */
const ProtocolTable *protocolByName(const std::string &name);

} // namespace enzian::eci::proto

#endif // ENZIAN_ECI_PROTOCOL_TABLE_HH
