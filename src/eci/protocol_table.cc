/**
 * @file
 * Pluggable coherence-protocol tables (implementation).
 */

#include "eci/protocol_table.hh"

namespace enzian::eci::proto {

using cache::MoesiState;

std::vector<MoesiState>
ProtocolTable::homeStableStates() const
{
    return {MoesiState::Invalid, MoesiState::Shared,
            MoesiState::Exclusive, MoesiState::Owned,
            MoesiState::Modified};
}

HomeReadStep
ProtocolTable::homeRead(MoesiState local, MoesiState dir,
                        bool exclusive, bool allocate) const
{
    return proto::homeRead(local, dir, exclusive, allocate);
}

HomeUpgradeStep
ProtocolTable::homeUpgrade(MoesiState local, MoesiState dir) const
{
    return proto::homeUpgrade(local, dir);
}

HomeWritebackStep
ProtocolTable::homeWriteback(MoesiState dir) const
{
    return proto::homeWriteback(dir);
}

MoesiState
ProtocolTable::homeEvict() const
{
    return proto::homeEvict();
}

SnoopKind
ProtocolTable::homeLocalReadSnoop(MoesiState local,
                                  MoesiState dir) const
{
    (void)local; // invalidate protocols decide on the directory alone
    return proto::homeLocalReadSnoop(dir);
}

SnoopKind
ProtocolTable::homeLocalWriteSnoop(MoesiState dir) const
{
    return proto::homeLocalWriteSnoop(dir);
}

MoesiState
ProtocolTable::homeSnoopResponse(Opcode ack) const
{
    return proto::homeSnoopResponse(ack);
}

MoesiState
ProtocolTable::remoteFillState(Grant g) const
{
    return proto::remoteFillState(g);
}

RemoteWriteStep
ProtocolTable::remoteWrite(MoesiState s) const
{
    return proto::remoteWrite(s);
}

MoesiState
ProtocolTable::remoteUpgradeResult(Grant g) const
{
    // Grant::Owned tells the writer other copies survive (update
    // protocols); anything else means it is now the sole owner.
    return g == Grant::Owned ? MoesiState::Owned
                             : MoesiState::Modified;
}

Opcode
ProtocolTable::remoteEvict(MoesiState s) const
{
    return proto::remoteEvict(s);
}

RemoteSnoopStep
ProtocolTable::remoteSnoop(MoesiState s, Opcode snoop) const
{
    return proto::remoteSnoop(s, snoop);
}

namespace {

class MoesiTable final : public ProtocolTable
{
  public:
    const char *name() const override { return "moesi"; }

    const char *
    description() const override
    {
        return "shipped ECI MOESI (invalidate, Owned keeps dirty "
               "data shared)";
    }
};

/**
 * Simplified MESI: no Owned state anywhere. A shared read that finds
 * a dirty (or Exclusive) home copy flushes the data to the source and
 * downgrades the copy to plain Shared, so every resident copy is
 * either clean-shared or the unique writable one.
 */
class MesiTable final : public ProtocolTable
{
  public:
    const char *name() const override { return "mesi"; }

    const char *
    description() const override
    {
        return "simplified MESI (no Owned state; dirty home copies "
               "flush on shared reads)";
    }

    std::vector<MoesiState>
    homeStableStates() const override
    {
        return {MoesiState::Invalid, MoesiState::Shared,
                MoesiState::Exclusive, MoesiState::Modified};
    }

    HomeReadStep
    homeRead(MoesiState local, MoesiState dir, bool exclusive,
             bool allocate) const override
    {
        HomeReadStep step =
            proto::homeRead(local, dir, exclusive, allocate);
        if (step.localAction == LocalAction::DowngradeOwned) {
            // MESI cannot keep a dirty copy shared: push the data to
            // the source first, then hold it clean-Shared.
            step.localAction = LocalAction::DowngradeShared;
            step.localAfter = MoesiState::Shared;
            step.flushLocalDirty = cache::isDirty(local);
        }
        return step;
    }
};

/**
 * Dragon-style update protocol. Writes to a line with other copies
 * outstanding send a full-line RUPD instead of invalidating: the home
 * refreshes its surviving copy from the payload, the writer continues
 * in Owned (dirty, not exclusive) and keeps updating on every write.
 * Reads, fills, snoops and writebacks stay MOESI.
 */
class DragonTable final : public ProtocolTable
{
  public:
    const char *name() const override { return "dragon"; }

    const char *
    description() const override
    {
        return "Dragon-style write-update (RUPD refreshes shared "
               "copies; writer stays Owned)";
    }

    RemoteWriteStep
    remoteWrite(MoesiState s) const override
    {
        RemoteWriteStep step = proto::remoteWrite(s);
        if (!step.hit && step.request == Opcode::RUPG)
            step.request = Opcode::RUPD;
        return step;
    }

    HomeUpgradeStep
    homeUpgrade(MoesiState local, MoesiState dir) const override
    {
        // Unlike RUPG, an RUPD can arrive repeatedly from a writer
        // the directory already tracks as Owned (one update per
        // write), so dir == Owned is legal input here.
        HomeUpgradeStep step;
        step.legal = (dir == MoesiState::Shared ||
                      dir == MoesiState::Owned ||
                      dir == MoesiState::Invalid) &&
                     !cache::canWrite(local);
        if (!step.legal) {
            step.dirAfter = dir;
            step.localAction = local != MoesiState::Invalid
                                   ? LocalAction::Invalidate
                                   : LocalAction::Keep;
            return step;
        }
        if (local != MoesiState::Invalid) {
            // The home keeps its copy, refreshed from the update
            // payload (which supersedes even dirty local data); the
            // writer learns via Grant::Owned that sharers survive.
            step.localAction = LocalAction::DowngradeShared;
            step.updateData = true;
            step.grant = Grant::Owned;
            step.dirAfter = MoesiState::Owned;
        } else {
            // No surviving copy: the writer becomes the sole owner.
            step.localAction = LocalAction::Keep;
            step.grant = Grant::Exclusive;
            step.dirAfter = MoesiState::Modified;
        }
        return step;
    }

    SnoopKind
    homeLocalReadSnoop(MoesiState local, MoesiState dir) const override
    {
        // Updates keep a resident home copy fresh: read it directly.
        if (local != MoesiState::Invalid)
            return SnoopKind::None;
        return proto::homeLocalReadSnoop(dir);
    }
};

const MoesiTable moesiTable;
const MesiTable mesiTable;
const DragonTable dragonTable;

} // namespace

const ProtocolTable &
moesiProtocol()
{
    return moesiTable;
}

const ProtocolTable &
mesiProtocol()
{
    return mesiTable;
}

const ProtocolTable &
dragonProtocol()
{
    return dragonTable;
}

const std::vector<const ProtocolTable *> &
allProtocols()
{
    static const std::vector<const ProtocolTable *> all = {
        &moesiTable, &mesiTable, &dragonTable};
    return all;
}

const ProtocolTable *
protocolByName(const std::string &name)
{
    for (const ProtocolTable *p : allProtocols()) {
        if (name == p->name())
            return p;
    }
    return nullptr;
}

} // namespace enzian::eci::proto
