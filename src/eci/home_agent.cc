/**
 * @file
 * Home agent implementation.
 */

#include "eci/home_agent.hh"

#include <algorithm>
#include <cstring>
#include <memory>

#include "base/logging.hh"
#include "eci/protocol_kernel.hh"
#include "obs/span_tracer.hh"

namespace enzian::eci {

namespace {

/** Bound on the home's reply cache (LRU evicted past this). */
constexpr std::size_t replayCap = 4096;

} // namespace

using cache::MoesiState;

DramLineSource::DramLineSource(mem::MemoryController &mc,
                               const mem::AddressMap &map)
    : mc_(mc), map_(map)
{
}

void
DramLineSource::readLine(Tick when, Addr addr, std::uint8_t *out,
                         Done done)
{
    done(mc_.read(when, map_.offsetInRegion(addr), out,
                  cache::lineSize)
             .done);
}

void
DramLineSource::writeLine(Tick when, Addr addr,
                          const std::uint8_t *data, Done done)
{
    done(mc_.write(when, map_.offsetInRegion(addr), data,
                   cache::lineSize)
             .done);
}

HomeAgent::HomeAgent(std::string name, EventQueue &eq, mem::NodeId node,
                     const mem::AddressMap &map,
                     mem::MemoryController &mc, EciFabric &fabric)
    : SimObject(std::move(name), eq), node_(node),
      peer_(node == mem::NodeId::Cpu ? mem::NodeId::Fpga
                                     : mem::NodeId::Cpu),
      map_(map), mc_(mc), fabric_(fabric), defaultSource_(mc, map),
      source_(&defaultSource_),
      dirLatency_(units::ns(node == mem::NodeId::Cpu ? 25.0 : 40.0))
{
    stats().addCounter("requests_served", &served_);
    stats().addCounter("snoops_sent", &snoops_);
    stats().addCounter("deferrals", &deferrals_);
    stats().addCounter("responses_replayed", &replays_);
    stats().addCounter("duplicate_requests", &dupReqs_);
    stats().addCounter("snoop_retries", &snoopRetries_);
    stats().addCounter("duplicate_snoop_responses", &dupSnoopRsps_);
    stats().addAccumulator("service_ns", &service_);
    stats().addAccumulator("busy_lines", &occupancy_);
}

void
HomeAgent::enableRecovery(double snoop_timeout_us,
                          std::uint32_t max_retries)
{
    recovery_ = true;
    snoopTimeout_ = units::us(snoop_timeout_us);
    maxRetries_ = max_retries;
}

void
HomeAgent::recordService([[maybe_unused]] const char *op, Tick t_req,
                         Tick done_at)
{
    service_.sample(units::toNanos(done_at - t_req));
    ENZIAN_SPAN(name(), op, t_req, done_at);
}

void
HomeAgent::setLineSource(LineSource *src)
{
    source_ = src ? src : &defaultSource_;
}

void
HomeAgent::setIpiHandler(std::function<void(std::uint32_t)> h)
{
    ipiHandler_ = std::move(h);
}

MoesiState
HomeAgent::remoteState(Addr line) const
{
    auto it = dir_.find(cache::lineAlign(line));
    return it == dir_.end() ? MoesiState::Invalid : it->second;
}

void
HomeAgent::sendAt(Tick when, const EciMsg &msg)
{
    if (recovery_)
        recordResponse(msg);
    if (when <= now()) {
        fabric_.send(msg);
    } else {
        eventq().schedule(
            when, [this, copy = msg]() { fabric_.send(copy); },
            "home-send");
    }
}

void
HomeAgent::recordResponse(const EciMsg &msg)
{
    // Only responses are cached for replay; snoops have their own
    // retry timer on our side.
    if (msg.op != Opcode::PEMD && msg.op != Opcode::PACK &&
        msg.op != Opcode::PNAK && msg.op != Opcode::IOBACK)
        return;
    inflightReq_.erase(msg.tid);
    if (replay_.size() >= replayCap && !replayOrder_.empty()) {
        replay_.erase(replayOrder_.front());
        replayOrder_.pop_front();
    }
    if (replay_.emplace(msg.tid, msg).second)
        replayOrder_.push_back(msg.tid);
}

bool
HomeAgent::isDuplicateRequest(const EciMsg &msg)
{
    auto cached = replay_.find(msg.tid);
    if (cached != replay_.end()) {
        // Already answered: the response was lost; replay it.
        replays_.inc();
        sendAt(now() + dirLatency_, cached->second);
        return true;
    }
    if (inflightReq_.contains(msg.tid)) {
        // Still being served (possibly deferred behind a busy line);
        // the eventual response satisfies the retry too.
        dupReqs_.inc();
        return true;
    }
    inflightReq_.insert(msg.tid);
    return false;
}

bool
HomeAgent::acquireLine(Addr line, std::function<void()> retry)
{
    if (busy_.contains(line)) {
        deferrals_.inc();
        deferred_[line].push_back(std::move(retry));
        return false;
    }
    busy_.insert(line);
    occupancy_.sample(static_cast<double>(busy_.size()));
    return true;
}

void
HomeAgent::finishLine(Addr line)
{
    busy_.erase(line);
    auto it = deferred_.find(line);
    if (it == deferred_.end() || it->second.empty()) {
        if (it != deferred_.end())
            deferred_.erase(it);
        return;
    }
    auto next = std::move(it->second.front());
    it->second.pop_front();
    if (it->second.empty())
        deferred_.erase(it);
    // Re-enter processing on a fresh event so timing accumulates.
    eventq().scheduleDelta(dirLatency_, std::move(next),
                           "home-deferred");
}

void
HomeAgent::handle(const EciMsg &msg)
{
    ENZIAN_ASSERT(msg.dst == node_, "message for node %s at home %s",
                  mem::toString(msg.dst), mem::toString(node_));
    switch (msg.op) {
      case Opcode::RLDD:
      case Opcode::RLDX:
      case Opcode::RLDI:
      case Opcode::RSTT:
      case Opcode::RUPG:
      case Opcode::RUPD:
      case Opcode::RWBD:
      case Opcode::REVC:
        if (recovery_ && isDuplicateRequest(msg))
            return;
        handleRequest(msg);
        return;
      case Opcode::SACKI:
      case Opcode::SACKS:
        handleSnoopResponse(msg);
        return;
      case Opcode::IOBLD:
      case Opcode::IOBST:
        if (recovery_ && isDuplicateRequest(msg))
            return;
        serveIo(msg);
        return;
      case Opcode::IPI:
        if (ipiHandler_)
            ipiHandler_(msg.ioLen);
        return;
      default:
        panic("home agent received unexpected %s",
              msg.toString().c_str());
    }
}

void
HomeAgent::handleRequest(const EciMsg &msg)
{
    // Past the duplicate filter: deferred retries re-enter here, not
    // handle(), so a queued original is never mistaken for its own
    // duplicate.
    if (!acquireLine(cache::lineAlign(msg.addr),
                     [this, copy = msg]() { handleRequest(copy); }))
        return;
    process(msg);
}

void
HomeAgent::process(const EciMsg &msg)
{
    served_.inc();
    switch (msg.op) {
      case Opcode::RLDD:
        serveRead(msg, /*exclusive=*/false, /*allocate=*/true);
        return;
      case Opcode::RLDX:
        serveRead(msg, /*exclusive=*/true, /*allocate=*/true);
        return;
      case Opcode::RLDI:
        serveRead(msg, /*exclusive=*/false, /*allocate=*/false);
        return;
      case Opcode::RSTT:
        serveUncachedWrite(msg);
        return;
      case Opcode::RUPG:
      case Opcode::RUPD:
        serveUpgrade(msg);
        return;
      case Opcode::RWBD:
        serveWriteBack(msg);
        return;
      case Opcode::REVC: {
        const Addr line = cache::lineAlign(msg.addr);
        dir_.erase(line);
        EciMsg rsp;
        rsp.op = Opcode::PACK;
        rsp.src = node_;
        rsp.dst = msg.src;
        rsp.tid = msg.tid;
        rsp.addr = line;
        recordService("REVC", now(), now() + dirLatency_);
        sendAt(now() + dirLatency_, rsp);
        finishLine(line);
        return;
      }
      default:
        panic("process: unexpected %s", msg.toString().c_str());
    }
}

void
HomeAgent::serveRead(const EciMsg &msg, bool exclusive, bool allocate)
{
    const Addr line = cache::lineAlign(msg.addr);
    const Tick t_req = now();
    const char *op_name = eci::toString(msg.op);
    const Tick t0 = now() + dirLatency_;

    auto rsp = std::make_shared<EciMsg>();
    rsp->op = Opcode::PEMD;
    rsp->src = node_;
    rsp->dst = msg.src;
    rsp->tid = msg.tid;
    rsp->addr = line;

    // The grant, directory and local-copy decisions all come from the
    // pure kernel (shared with the model checker); the engine applies
    // them before the (possibly asynchronous) data fetch so the
    // protocol state is stable by the time any later request for this
    // line is deferred behind us.
    const MoesiState local =
        localCache_ ? localCache_->probe(line) : MoesiState::Invalid;
    const proto::HomeReadStep step =
        table_->homeRead(local, remoteState(line), exclusive, allocate);

    const bool local_had_copy = local != MoesiState::Invalid;
    bool local_flush = false;
    std::vector<std::uint8_t> flush_data;
    if (local_had_copy) {
        localCache_->readData(line, rsp->line.data(),
                              cache::lineSize);
        switch (step.localAction) {
          case proto::LocalAction::Invalidate: {
            auto ev = localCache_->invalidate(line);
            if (ev && step.flushLocalDirty) {
                local_flush = true;
                flush_data = std::move(ev->data);
            }
            break;
          }
          case proto::LocalAction::DowngradeOwned:
            localCache_->setState(line, step.localAfter);
            break;
          case proto::LocalAction::DowngradeShared:
            // MESI: the dirty data flushes to the source before the
            // copy is held clean-Shared (the read response already
            // carries it to the requester).
            if (step.flushLocalDirty) {
                local_flush = true;
                flush_data.assign(rsp->line.begin(),
                                  rsp->line.end());
            }
            localCache_->setState(line, step.localAfter);
            break;
          case proto::LocalAction::Keep:
            break;
        }
    }

    rsp->grant = step.grant;
    if (allocate)
        dir_[line] = step.dirAfter;

    auto complete = [this, rsp, line, t_req, op_name](Tick ready) {
        recordService(op_name, t_req, ready);
        sendAt(ready, *rsp);
        finishLine(line);
    };

    if (local_had_copy) {
        if (local_flush) {
            auto data =
                std::make_shared<std::vector<std::uint8_t>>(
                    std::move(flush_data));
            source_->writeLine(t0, line, data->data(),
                               [complete, data](Tick durable) {
                                   complete(durable);
                               });
        } else {
            complete(t0);
        }
        return;
    }
    source_->readLine(t0, line, rsp->line.data(), complete);
}

void
HomeAgent::serveUncachedWrite(const EciMsg &msg)
{
    const Addr line = cache::lineAlign(msg.addr);
    const Tick t0 = now() + dirLatency_;

    // A full-line store supersedes any local copy.
    if (localCache_)
        localCache_->invalidate(line);

    EciMsg rsp;
    rsp.op = Opcode::PACK;
    rsp.src = node_;
    rsp.dst = msg.src;
    rsp.tid = msg.tid;
    rsp.addr = line;

    const Tick t_req = now();
    if (source_->posted()) {
        // Posted: acknowledged once the home engine accepts the data;
        // DRAM occupancy still advances. This is why Figure 6 shows
        // slightly higher write than read throughput.
        source_->writeLine(t0, line, msg.line.data(), [](Tick) {});
        recordService("RSTT", t_req, t0 + units::ns(20.0));
        sendAt(t0 + units::ns(20.0), rsp);
        finishLine(line);
        return;
    }
    // Non-posted (e.g. bridged remote memory): the ack carries the
    // true durability point, and the line stays busy meanwhile so a
    // subsequent read cannot overtake the write.
    source_->writeLine(t0, line, msg.line.data(),
                       [this, rsp, line, t_req](Tick durable) {
                           recordService("RSTT", t_req, durable);
                           sendAt(durable, rsp);
                           finishLine(line);
                       });
}

void
HomeAgent::serveUpgrade(const EciMsg &msg)
{
    const Addr line = cache::lineAlign(msg.addr);
    const Tick t0 = now() + dirLatency_;

    const MoesiState local =
        localCache_ ? localCache_->probe(line) : MoesiState::Invalid;
    const proto::HomeUpgradeStep step =
        table_->homeUpgrade(local, remoteState(line));
    ENZIAN_ASSERT(step.legal,
                  "%s for line %llx with remote state %s, home %s",
                  eci::toString(msg.op),
                  static_cast<unsigned long long>(line),
                  cache::toString(remoteState(line)),
                  cache::toString(local));
    if (localCache_ && local != MoesiState::Invalid) {
        switch (step.localAction) {
          case proto::LocalAction::Invalidate:
            localCache_->invalidate(line);
            break;
          case proto::LocalAction::DowngradeShared:
            // Update protocol: the RUPD payload refreshes the
            // surviving copy (superseding even dirty local data).
            if (step.updateData)
                localCache_->writeData(line, msg.line.data(),
                                       cache::lineSize);
            localCache_->setState(line, MoesiState::Shared);
            break;
          case proto::LocalAction::DowngradeOwned:
            localCache_->setState(line, MoesiState::Owned);
            break;
          case proto::LocalAction::Keep:
            break;
        }
    }
    dir_[line] = step.dirAfter;

    EciMsg rsp;
    rsp.op = Opcode::PACK;
    rsp.src = node_;
    rsp.dst = msg.src;
    rsp.tid = msg.tid;
    rsp.addr = line;
    rsp.grant = step.grant;
    recordService(eci::toString(msg.op), now(), t0);
    sendAt(t0, rsp);
    finishLine(line);
}

void
HomeAgent::serveWriteBack(const EciMsg &msg)
{
    const Addr line = cache::lineAlign(msg.addr);
    const Tick t0 = now() + dirLatency_;

    const proto::HomeWritebackStep step =
        table_->homeWriteback(remoteState(line));
    ENZIAN_ASSERT(step.legal,
                  "RWBD for line %llx with remote state %s",
                  static_cast<unsigned long long>(line),
                  cache::toString(remoteState(line)));
    dir_.erase(line);

    EciMsg rsp;
    rsp.op = Opcode::PACK;
    rsp.src = node_;
    rsp.dst = msg.src;
    rsp.tid = msg.tid;
    rsp.addr = line;

    const Tick t_req = now();
    if (!step.commitData) {
        // The writeback lost a race with a home-initiated SINV: the
        // home's own write was serialized after the eviction, so the
        // payload is stale and must not reach memory.
        recordService("RWBD", t_req, t0);
        sendAt(t0, rsp);
        finishLine(line);
        return;
    }
    if (source_->posted()) {
        source_->writeLine(t0, line, msg.line.data(), [](Tick) {});
        recordService("RWBD", t_req, t0 + units::ns(20.0));
        sendAt(t0 + units::ns(20.0), rsp);
        finishLine(line);
        return;
    }
    source_->writeLine(t0, line, msg.line.data(),
                       [this, rsp, line, t_req](Tick durable) {
                           recordService("RWBD", t_req, durable);
                           sendAt(durable, rsp);
                           finishLine(line);
                       });
}

void
HomeAgent::maybeAllocateLocal(Addr line, const std::uint8_t *data)
{
    if (!readAllocate_ || !localCache_ || !data)
        return;
    if (localCache_->probe(line) != MoesiState::Invalid)
        return;
    // Never force an eviction: the home agent has no writeback path
    // for foreign-owned victims, so only a free frame is used.
    if (!localCache_->hasFreeFrame(line, cache::ownerLocal))
        return;
    localCache_->fill(line, MoesiState::Shared, data,
                      cache::ownerLocal);
}

void
HomeAgent::localRead(Addr line, std::uint8_t *out, Done done)
{
    line = cache::lineAlign(line);
    ENZIAN_ASSERT(map_.homeOf(line) == node_,
                  "localRead of non-homed line %llx",
                  static_cast<unsigned long long>(line));
    if (!out) {
        // Caller only wants the timing; route the data to scratch
        // kept alive by the completion continuation.
        auto scratch = std::make_shared<
            std::array<std::uint8_t, cache::lineSize>>();
        localRead(line, scratch->data(),
                  [scratch, done = std::move(done)](Tick t) {
                      done(t);
                  });
        return;
    }
    if (!acquireLine(line, [this, line, out,
                            done]() mutable {
            localRead(line, out, std::move(done));
        }))
        return;
    const MoesiState rs = remoteState(line);
    const MoesiState lrs =
        localCache_ ? localCache_->probe(line) : MoesiState::Invalid;
    if (table_->homeLocalReadSnoop(lrs, rs) ==
        proto::SnoopKind::Forward) {
        // Remote holds the freshest copy: snoop-forward it. The
        // pending snoop keeps the raw completion; the snoop-response
        // handler frees the line (or retries on a snoop miss).
        EciMsg snp;
        snp.op = Opcode::SFWD;
        snp.src = node_;
        snp.dst = peer_;
        snp.tid = nextSnoopTid_++;
        snp.addr = line;
        pendingSnoops_[snp.tid] =
            PendingSnoop{line, false, std::move(done), out, {}, snp};
        snoops_.inc();
        sendAt(now() + dirLatency_, snp);
        if (recovery_)
            armSnoopRetry(snp.tid);
        return;
    }
    // Wrap the completion so the line frees when the access retires.
    done = [this, line, done = std::move(done)](Tick t) {
        done(t);
        finishLine(line);
    };
    // Local cache copy (if any) is valid; otherwise the source.
    if (localCache_ &&
        localCache_->probe(line) != MoesiState::Invalid) {
        localCache_->readData(line, out, cache::lineSize);
        const Tick ready = now() + dirLatency_;
        eventq().schedule(
            ready, [done = std::move(done), ready]() { done(ready); },
            "local-read-hit");
        return;
    }
    source_->readLine(now() + dirLatency_, line, out,
                      [this, line, out,
                       done = std::move(done)](Tick ready) {
                          maybeAllocateLocal(line, out);
                          if (ready <= now()) {
                              done(ready);
                          } else {
                              eventq().schedule(
                                  ready,
                                  [done, ready]() { done(ready); },
                                  "local-read");
                          }
                      });
}

void
HomeAgent::localWrite(Addr line, const std::uint8_t *data, Done done)
{
    line = cache::lineAlign(line);
    ENZIAN_ASSERT(map_.homeOf(line) == node_,
                  "localWrite of non-homed line %llx",
                  static_cast<unsigned long long>(line));
    if (!acquireLine(line, [this, line,
                            data_copy = std::vector<std::uint8_t>(
                                data, data + cache::lineSize),
                            done]() mutable {
            localWrite(line, data_copy.data(), std::move(done));
        }))
        return;
    const MoesiState rs = remoteState(line);
    if (table_->homeLocalWriteSnoop(rs) ==
        proto::SnoopKind::Invalidate) {
        EciMsg snp;
        snp.op = Opcode::SINV;
        snp.src = node_;
        snp.dst = peer_;
        snp.tid = nextSnoopTid_++;
        snp.addr = line;
        PendingSnoop p;
        p.line = line;
        p.invalidate = true;
        p.done = std::move(done);
        p.out = nullptr;
        p.wdata.assign(data, data + cache::lineSize);
        p.msg = snp;
        pendingSnoops_[snp.tid] = std::move(p);
        snoops_.inc();
        sendAt(now() + dirLatency_, snp);
        if (recovery_)
            armSnoopRetry(snp.tid);
        return;
    }
    // Wrap the completion so the line frees when the access retires.
    done = [this, line, done = std::move(done)](Tick t) {
        done(t);
        finishLine(line);
    };
    if (localCache_)
        localCache_->invalidate(line);
    source_->writeLine(now() + dirLatency_, line, data,
                       [this, done = std::move(done)](Tick durable) {
                           if (durable <= now()) {
                               done(durable);
                           } else {
                               eventq().schedule(
                                   durable,
                                   [done, durable]() {
                                       done(durable);
                                   },
                                   "local-write");
                           }
                       });
}

void
HomeAgent::armSnoopRetry(std::uint32_t tid)
{
    auto it = pendingSnoops_.find(tid);
    if (it == pendingSnoops_.end())
        return;
    PendingSnoop &p = it->second;
    const Tick delay = snoopTimeout_
                       << std::min<std::uint32_t>(p.attempts, 5);
    p.retryEv = eventq().scheduleDelta(
        delay,
        [this, tid]() {
            auto pit = pendingSnoops_.find(tid);
            if (pit == pendingSnoops_.end())
                return; // answered while the event was in flight
            PendingSnoop &ps = pit->second;
            ++ps.attempts;
            ENZIAN_ASSERT(ps.attempts <= maxRetries_,
                          "snoop tid %u unanswered after %u retries "
                          "(livelock?)",
                          tid, ps.attempts);
            snoopRetries_.inc();
            fabric_.send(ps.msg);
            armSnoopRetry(tid);
        },
        "home-snoop-retry");
}

void
HomeAgent::handleSnoopResponse(const EciMsg &msg)
{
    auto it = pendingSnoops_.find(msg.tid);
    if (it == pendingSnoops_.end() && recovery_) {
        // A retried snoop crossed its original's response; the first
        // answer already completed the transaction.
        dupSnoopRsps_.inc();
        return;
    }
    ENZIAN_ASSERT(it != pendingSnoops_.end(),
                  "snoop response with unknown tid %u", msg.tid);
    eventq().cancel(it->second.retryEv);
    PendingSnoop p = std::move(it->second);
    pendingSnoops_.erase(it);

    // The pending snoop holds the raw completion; deliver it and then
    // free the line so deferred traffic can proceed.
    auto finish = [this, line = p.line](Done done, Tick when) {
        auto fin = [this, line, done = std::move(done)](Tick t) {
            done(t);
            finishLine(line);
        };
        if (when <= now()) {
            fin(when);
        } else {
            eventq().schedule(
                when, [fin, when]() { fin(when); }, "snoop-done");
        }
    };

    if (msg.op == Opcode::SACKS) {
        // Remote downgraded M/E -> S and forwarded the data; the data
        // becomes clean at home.
        dir_[p.line] = table_->homeSnoopResponse(msg.op);
        if (p.out)
            std::memcpy(p.out, msg.line.data(), cache::lineSize);
        maybeAllocateLocal(p.line, msg.line.data());
        auto data = std::make_shared<std::array<
            std::uint8_t, cache::lineSize>>(msg.line);
        source_->writeLine(
            now(), p.line, data->data(),
            [finish, done = std::move(p.done), data](Tick durable) {
                finish(done, durable);
            });
        return;
    }

    // SACKI answering a local write: the remote invalidated; dirty
    // data (if any) rides along but the pending write supersedes it.
    if (p.invalidate) {
        dir_.erase(p.line);
        if (localCache_)
            localCache_->invalidate(p.line);
        auto data = std::make_shared<std::vector<std::uint8_t>>(
            std::move(p.wdata));
        source_->writeLine(
            now(), p.line, data->data(),
            [finish, done = std::move(p.done), data](Tick durable) {
                finish(done, durable);
            });
        return;
    }
    // SACKI answering a read snoop. With data: the remote invalidated
    // a dirty copy and forwarded it (reordering-tolerant path).
    if (msg.hasData) {
        dir_.erase(p.line);
        if (p.out)
            std::memcpy(p.out, msg.line.data(), cache::lineSize);
        maybeAllocateLocal(p.line, msg.line.data());
        auto data = std::make_shared<std::array<
            std::uint8_t, cache::lineSize>>(msg.line);
        source_->writeLine(
            now(), p.line, data->data(),
            [finish, done = std::move(p.done), data](Tick durable) {
                finish(done, durable);
            });
        return;
    }
    // Snoop miss: the SFWD found nothing because the remote evicted
    // concurrently and its RWBD/REVC is in flight toward us. Leave
    // the directory alone (the eviction will clear it), queue a retry
    // of the local read behind any already-deferred traffic, and free
    // the line so the eviction can drain first.
    deferred_[p.line].push_back([this, line = p.line, out = p.out,
                                 done = std::move(p.done)]() mutable {
        localRead(line, out, std::move(done));
    });
    finishLine(p.line);
}

void
HomeAgent::serveIo(const EciMsg &msg)
{
    ENZIAN_ASSERT(msg.ioLen >= 1 && msg.ioLen <= 8,
                  "I/O access of %u bytes", msg.ioLen);
    const Tick t0 = now() + dirLatency_;
    EciMsg rsp;
    rsp.op = Opcode::IOBACK;
    rsp.src = node_;
    rsp.dst = msg.src;
    rsp.tid = msg.tid;
    rsp.addr = msg.addr;
    rsp.ioLen = msg.ioLen;
    if (msg.op == Opcode::IOBLD) {
        rsp.ioData =
            ioSpace_ ? ioSpace_->read(msg.addr, msg.ioLen) : 0;
    } else {
        if (ioSpace_)
            ioSpace_->write(msg.addr, msg.ioData, msg.ioLen);
        rsp.ioData = 0;
    }
    sendAt(t0, rsp);
}

} // namespace enzian::eci
