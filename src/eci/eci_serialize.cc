/**
 * @file
 * ECI wire-format serialization.
 */

#include "eci/eci_serialize.hh"

#include <cstring>

namespace enzian::eci {

namespace {

void
put32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
put64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t
get32(const std::uint8_t *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

std::uint64_t
get64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

bool
validOpcode(std::uint8_t op)
{
    return op <= static_cast<std::uint8_t>(Opcode::RUPD);
}

} // namespace

void
serializeTo(const EciMsg &msg, std::vector<std::uint8_t> &out)
{
    put32(out, serializeMagic);
    out.push_back(static_cast<std::uint8_t>(msg.op));
    out.push_back(static_cast<std::uint8_t>(msg.src));
    out.push_back(static_cast<std::uint8_t>(msg.dst));
    out.push_back(static_cast<std::uint8_t>(msg.vc()));
    put32(out, msg.tid);
    if (msg.op == Opcode::PEMD || msg.op == Opcode::PACK)
        put32(out, static_cast<std::uint32_t>(msg.grant));
    else if (msg.op == Opcode::SACKI || msg.op == Opcode::SACKS)
        put32(out, msg.hasData ? 1 : 0);
    else
        put32(out, msg.ioLen);
    put64(out, msg.addr);
    put64(out, msg.ioData);
    if (carriesLine(msg.op))
        out.insert(out.end(), msg.line.begin(), msg.line.end());
}

std::vector<std::uint8_t>
serialize(const EciMsg &msg)
{
    std::vector<std::uint8_t> out;
    out.reserve(msg.wireBytes());
    serializeTo(msg, out);
    return out;
}

std::optional<EciMsg>
deserialize(const std::uint8_t *data, std::size_t len,
            std::size_t &consumed)
{
    consumed = 0;
    if (len < headerBytes)
        return std::nullopt;
    if (get32(data) != serializeMagic)
        return std::nullopt;
    if (!validOpcode(data[4]))
        return std::nullopt;

    EciMsg msg;
    msg.op = static_cast<Opcode>(data[4]);
    if (data[5] > 1 || data[6] > 1)
        return std::nullopt;
    msg.src = static_cast<mem::NodeId>(data[5]);
    msg.dst = static_cast<mem::NodeId>(data[6]);
    if (data[7] != static_cast<std::uint8_t>(vcOf(msg.op)))
        return std::nullopt; // VC must match the opcode's circuit
    msg.tid = get32(data + 8);
    if (msg.op == Opcode::PEMD || msg.op == Opcode::PACK)
        msg.grant = static_cast<Grant>(get32(data + 12));
    else if (msg.op == Opcode::SACKI || msg.op == Opcode::SACKS)
        msg.hasData = get32(data + 12) != 0;
    else
        msg.ioLen = get32(data + 12);
    msg.addr = get64(data + 16);
    msg.ioData = get64(data + 24);

    std::size_t need = headerBytes;
    if (carriesLine(msg.op)) {
        need += cache::lineSize;
        if (len < need)
            return std::nullopt;
        std::memcpy(msg.line.data(), data + headerBytes,
                    cache::lineSize);
    }
    consumed = need;
    return msg;
}

} // namespace enzian::eci
