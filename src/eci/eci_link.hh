/**
 * @file
 * ECI physical link model.
 *
 * The Enzian interconnect is 24 lanes of 10 Gb/s organized as two
 * links of 12 lanes each (paper section 5.1). Each EciLink models one
 * such link: full duplex, with per-direction serialization occupancy,
 * a fixed propagation + SerDes latency, and a per-node protocol-engine
 * processing latency (the FPGA side is slower because the fabric is
 * clocked at 200-300 MHz). The lane count can be dialed down, as the
 * BDK allows (section 4.4; early ECI bring-up used 4 lanes).
 */

#ifndef ENZIAN_ECI_ECI_LINK_HH
#define ENZIAN_ECI_ECI_LINK_HH

#include <array>
#include <deque>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "eci/eci_msg.hh"
#include "sim/channel_lane.hh"
#include "sim/domain_binding.hh"
#include "sim/sim_object.hh"

namespace enzian::eci {

/** One 12-lane (configurable) full-duplex ECI link. */
class EciLink : public SimObject
{
  public:
    /** Link configuration. */
    struct Config
    {
        /** Active lanes (Enzian: 12 per link; BDK can reduce). */
        std::uint32_t lanes = 12;
        /** Per-lane raw rate in Gb/s. */
        double lane_gbps = 10.0;
        /** Fraction of raw bandwidth left after 64b/66b + framing. */
        double efficiency = 0.92;
        /** Wire propagation + SerDes latency, one way (ns). */
        double wire_latency_ns = 80.0;
        /** CPU-side protocol engine processing latency (ns). */
        double cpu_proc_ns = 60.0;
        /** FPGA-side protocol engine processing latency (ns). */
        double fpga_proc_ns = 150.0;
        /** Lane retrain duration after a lane failure or flap (ns). */
        double retrain_ns = 25000.0;
    };

    /** Delivery callback invoked at the receiving node. */
    using Handler = std::function<void(const EciMsg &)>;
    /** Trace tap observing every message with its send tick. */
    using Tap = std::function<void(Tick, const EciMsg &)>;

    /** Verdict of a fault filter for one message. */
    enum class FaultAction : std::uint8_t {
        Deliver, ///< no fault: normal delivery
        Drop,    ///< message vanishes on the wire
        Corrupt, ///< CRC failure at the receiver: detected, discarded
    };

    /**
     * Fault filter consulted for every send. Dropped and corrupted
     * messages still occupy the serializer (the bits went out) but are
     * never delivered and never reach the trace tap — the checker only
     * sees what a real capture would.
     */
    using FaultFilter = std::function<FaultAction(Tick, const EciMsg &)>;

    EciLink(std::string name, EventQueue &eq, const Config &cfg);

    /**
     * Minimum cross-node latency any message on a link with @p cfg
     * can experience: sender processing + wire flight + receiver
     * processing (the serializer stream time comes on top). This is
     * the conservative lookahead bound parallel simulation relies on.
     */
    static Tick minCrossLatency(const Config &cfg);

    /**
     * Switch the link into parallel domain mode: each direction reads
     * time from its source domain's clock, deliveries cross through
     * the scheduler's channels, and per-direction staged statistics
     * and trace taps are folded/flushed deterministically at every
     * epoch barrier. Must be called before the scheduler starts.
     * Lane-failure/flap/retrain APIs are not supported in this mode.
     */
    void bindDomains(sim::DomainScheduler &sched,
                     sim::TimingDomain &cpu_domain,
                     sim::TimingDomain &fpga_domain);

    /** True once bindDomains() has been called. */
    bool domainMode() const { return stage_.armed(); }

    /** Register the message handler for node @p node. */
    void setReceiver(mem::NodeId node, Handler h);

    /**
     * Install a trace tap, replacing any existing taps (pass nullptr
     * to remove all). Prefer addTap() — observers that setTap()
     * silently disconnect each other.
     */
    void setTap(Tap tap)
    {
        taps_.clear();
        if (tap)
            taps_.push_back(std::move(tap));
    }

    /**
     * Append a trace tap, keeping any already installed. Taps fire in
     * attach order for every observed message, so e.g. an
     * InvariantMonitor and a pcap trace can watch the same fabric.
     */
    void addTap(Tap tap)
    {
        if (tap)
            taps_.push_back(std::move(tap));
    }

    /** Number of attached taps. */
    std::size_t tapCount() const { return taps_.size(); }

    /** Install a fault filter (pass nullptr to remove). */
    void setFaultFilter(FaultFilter f) { fault_ = std::move(f); }

    /**
     * Send @p msg; schedules delivery at the destination handler.
     * @return the delivery tick.
     */
    Tick send(const EciMsg &msg);

    /** Effective per-direction bandwidth in bytes/s. */
    double effectiveBandwidth() const { return effBw_; }

    /** Change the active lane count (BDK dial-up/down). */
    void setLanes(std::uint32_t lanes);

    /**
     * Fail @p n lanes: the link retrains, then runs derated on the
     * surviving lanes (never below one). Bandwidth degrades
     * proportionally, preserving the Fig 6 curve shape.
     */
    void failLanes(std::uint32_t n);

    /** Bring the link back to @p lanes lanes (retrains first). */
    void restoreLanes(std::uint32_t lanes);

    /**
     * Link flap: the link is down for @p down_time, in-flight messages
     * in both directions are lost (credits reconciled), then the link
     * retrains before carrying traffic again.
     */
    void flap(Tick down_time);

    /** True while a retrain blocks the serializers. */
    bool retraining() const { return retrainEndsAt_ > now(); }

    std::uint32_t lanes() const { return cfg_.lanes; }

    std::uint64_t messagesSent() const { return agg_.msgs.value(); }
    std::uint64_t bytesSent() const { return agg_.bytes.value(); }
    std::uint64_t messagesDropped() const
    {
        return agg_.dropped.value();
    }
    std::uint64_t messagesCorrupted() const
    {
        return agg_.corrupted.value();
    }
    std::uint64_t laneFailures() const { return laneFails_.value(); }
    std::uint64_t linkFlaps() const { return flaps_.value(); }
    std::uint64_t retrains() const { return retrains_.value(); }
    /** Messages lost in flight during flaps (credit reconciliation). */
    std::uint64_t creditsReconciled() const
    {
        return creditsReconciled_.value();
    }
    /** Tick the given direction's serializer frees up. */
    Tick busFreeAt(mem::NodeId src_node) const;

    /** End-to-end message latency (send to delivery), in ns. */
    const Accumulator &latency() const { return agg_.latency; }
    /** Latency accumulator for one VC, in ns. */
    const Accumulator &vcLatency(Vc vc) const
    {
        return agg_.vcLatency[static_cast<std::size_t>(vc)];
    }

  private:
    /** Ticks computed for one transmission. */
    struct TxTiming
    {
        Tick serReady;
        Tick start;
        Tick stream;
        Tick delivery;
    };

    /**
     * Per-direction transmission statistics. In single-queue mode
     * every send samples agg_ directly; in domain mode each direction
     * samples its own stage (touched only by the source domain's
     * thread) and the stages fold into agg_ at every epoch barrier,
     * direction 0 first — a fixed order, so the folded values are
     * bit-identical for any thread count.
     */
    struct TxStats
    {
        Counter msgs;
        Counter bytes;
        Counter dropped;
        Counter corrupted;
        Accumulator latency;
        Accumulator serWait;
        Histogram hist{0.0, 4000.0, 80};
        std::array<Accumulator, vcCount> vcLatency;

        /** Move this stage's samples into @p agg and reset it. */
        void foldInto(TxStats &agg);
    };

    void recomputeBandwidth();
    Tick procLatency(mem::NodeId node) const;
    void deliverNext(std::size_t dir);
    Tick sendDomain(const EciMsg &msg);
    Tick sendFaulted(Tick tnow, const EciMsg &msg, FaultAction act);
    void beginRetrain(Tick duration);
    TxTiming txTiming(Tick tnow, const EciMsg &msg);
    void recordTx(std::size_t dir, Tick tnow, const EciMsg &msg,
                  const TxTiming &t);
    TxStats &txStats(std::size_t dir)
    {
        return stage_.armed() ? stage_[dir] : agg_;
    }
    void foldDomainState();
    void flushTaps();

    /**
     * Per-direction delivery pipeline. The serializer is FIFO, so
     * deliveries in one direction are monotone in time; instead of a
     * fresh heap entry (and lambda allocation) per message, queued
     * messages ride a deque drained by one reusable Event.
     */
    struct DeliveryQueue
    {
        std::deque<std::pair<Tick, EciMsg>> fifo;
        Event ev;
    };

    /** Cache-line-isolated per-direction serializer occupancy, so
     *  two domain threads sending concurrently don't false-share. */
    struct alignas(64) DirTick
    {
        Tick v = 0;
    };

    Config cfg_;
    double effBw_ = 0;
    /** Serializer occupancy per direction, indexed by source node. */
    std::array<DirTick, 2> busFreeAt_;
    std::array<Handler, 2> handlers_;
    std::array<DeliveryQueue, 2> deliverQ_;
    std::vector<Tap> taps_; ///< fire in attach order
    FaultFilter fault_;
    /** Tick the current retrain (if any) completes. */
    Tick retrainEndsAt_ = 0;
    Counter laneFails_;
    Counter flaps_;
    Counter retrains_;
    Counter creditsReconciled_;
    /** Aggregate tx statistics (the registered/reported view). */
    TxStats agg_;

    // --- parallel domain mode state (null/empty in legacy mode) ----
    /** Per-direction staged stats; arming doubles as the flag. */
    sim::DirStaged<TxStats> stage_;
    /** Per-direction source clock + outbound mailbox (by msg.src),
     *  bound with this link's own latency floor as pair lookahead. */
    sim::DirDomainBinding dirBind_;
    /** Per-direction EciMsg slot arenas: cross-domain deliveries ride
     *  the channel's SoA entry stream with zero per-message
     *  allocation (see ChannelLane). */
    std::unique_ptr<std::array<sim::ChannelLane<EciMsg>, 2>> lanes_;
    /** Per-direction buffered tap events, flushed at barriers. */
    std::array<std::vector<std::pair<Tick, EciMsg>>, 2> tapStage_;
};

/** Policy for spreading traffic over the two links. */
enum class BalancePolicy : std::uint8_t {
    SingleLink,  ///< all traffic on link 0 (the Fig 6 restriction)
    RoundRobin,  ///< alternate links per message
    AddressHash, ///< hash the line address (keeps per-line ordering)
    LeastLoaded, ///< pick the link whose serializer frees first
};

/** Readable policy name. */
const char *toString(BalancePolicy p);

/**
 * The pair of ECI links plus a balancing policy; agents send through
 * this fabric rather than a specific link.
 */
class EciFabric : public SimObject
{
  public:
    EciFabric(std::string name, EventQueue &eq,
              const EciLink::Config &link_cfg, std::uint32_t links = 2,
              BalancePolicy policy = BalancePolicy::AddressHash);

    /** Register receiver on all links. */
    void setReceiver(mem::NodeId node, EciLink::Handler h);

    /** Install a trace tap on all links, replacing existing taps. */
    void setTap(EciLink::Tap tap);

    /** Append a trace tap on all links (chains with existing taps). */
    void addTap(EciLink::Tap tap);

    /**
     * Switch every link into parallel domain mode (see
     * EciLink::bindDomains). Round-robin balancing becomes
     * per-direction so each domain picks links without sharing a
     * counter.
     */
    void bindDomains(sim::DomainScheduler &sched,
                     sim::TimingDomain &cpu_domain,
                     sim::TimingDomain &fpga_domain);

    /** Send through the link selected by the policy. */
    Tick send(const EciMsg &msg);

    void setPolicy(BalancePolicy p) { policy_ = p; }
    BalancePolicy policy() const { return policy_; }

    std::uint32_t linkCount() const
    {
        return static_cast<std::uint32_t>(links_.size());
    }
    EciLink &link(std::uint32_t i) { return *links_[i]; }

    /** Aggregate effective one-direction bandwidth (bytes/s). */
    double effectiveBandwidth() const;

  private:
    std::uint32_t pickLink(const EciMsg &msg);

    std::vector<std::unique_ptr<EciLink>> links_;
    BalancePolicy policy_;
    bool domainMode_ = false;
    std::uint32_t rr_ = 0;
    /** Per-direction round-robin counters for domain mode. */
    std::array<std::uint32_t, 2> rrDir_{0, 0};
};

} // namespace enzian::eci

#endif // ENZIAN_ECI_ECI_LINK_HH
