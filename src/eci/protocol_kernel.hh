/**
 * @file
 * Pure ECI/MOESI transition kernels.
 *
 * Every protocol *decision* the two engines make — which grant a home
 * read returns, what happens to the home node's own cached copy, which
 * request a remote write must issue, how a snoop is answered — lives
 * here as a side-effect-free function of MOESI state. The event-driven
 * engines (eci::HomeAgent, eci::RemoteAgent) call these kernels and
 * then perform the timing, queuing and data movement; the exhaustive
 * model checker (verif::Model, driven by tools/ecicheck) calls the
 * *same* kernels to enumerate the reachable state space. One source of
 * truth: a protocol change that alters a kernel is immediately
 * re-verified, and a checker result is a statement about the shipped
 * engines, not about a hand-maintained copy of the protocol.
 *
 * Kernels that can be handed an illegal input (a writeback from a
 * non-owner, an upgrade race) report it through a `legal` flag instead
 * of asserting, so the checker can classify the dead state; the
 * engines assert on `!legal` exactly where they used to.
 */

#ifndef ENZIAN_ECI_PROTOCOL_KERNEL_HH
#define ENZIAN_ECI_PROTOCOL_KERNEL_HH

#include "cache/moesi.hh"
#include "eci/eci_msg.hh"

namespace enzian::eci::proto {

/** What a home-side step does to the home node's own cached copy. */
enum class LocalAction : std::uint8_t {
    Keep,            ///< leave the local copy untouched
    Invalidate,      ///< drop the local copy
    DowngradeOwned,  ///< keep the copy but fall back to Owned
    DowngradeShared, ///< keep the copy but fall back to Shared
                     ///< (MESI shared read: dirty data flushes first;
                     ///< Dragon update: payload refreshes the copy)
};

/** Decision for serving RLDD / RLDX / RLDI at the home node. */
struct HomeReadStep
{
    Grant grant;                    ///< permission carried by the PEMD
    cache::MoesiState dirAfter;     ///< directory state after the grant
    LocalAction localAction;        ///< effect on the home's own copy
    cache::MoesiState localAfter;   ///< home cache state after the step
    bool flushLocalDirty;           ///< invalidated copy was dirty;
                                    ///< home must push it to the source
};

/**
 * Serve a coherent read at the home node.
 *
 * @param local home node's own cache state for the line
 * @param dir directory state tracked for the remote node
 * @param exclusive RLDX (true) vs RLDD/RLDI (false)
 * @param allocate requester will cache the line (RLDD/RLDX)
 */
HomeReadStep homeRead(cache::MoesiState local, cache::MoesiState dir,
                      bool exclusive, bool allocate);

/** Decision for serving RUPG (or a table's RUPD) at the home node. */
struct HomeUpgradeStep
{
    bool legal;                   ///< directory state permitted the RUPG
    cache::MoesiState dirAfter;   ///< Modified when legal
    LocalAction localAction;      ///< home copy is invalidated
    /** Permission carried by the PACK; Grant::Owned tells the writer
     *  other copies survive (update protocols). */
    Grant grant = Grant::Exclusive;
    /** The request payload refreshes the home's surviving copy
     *  (update protocols serving RUPD). */
    bool updateData = false;
};

/**
 * Serve an S->M upgrade. Legal from directory state Shared, and from
 * Invalid: a home-initiated SINV can race with an in-flight RUPG (the
 * snoop consumes the requester's Shared copy before the deferred
 * upgrade is processed). Because an ECI cached write carries the full
 * new line, the home can still grant Modified — the requester installs
 * its complete write payload rather than upgrading the (gone) copy.
 */
HomeUpgradeStep homeUpgrade(cache::MoesiState local,
                            cache::MoesiState dir);

/** Decision for serving RWBD (dirty writeback) at the home node. */
struct HomeWritebackStep
{
    bool legal;                 ///< requester owned the line, or the
                                ///< writeback lost a race (see below)
    bool commitData;            ///< write the payload to the source
    cache::MoesiState dirAfter; ///< Invalid when legal
};

/**
 * Serve a dirty writeback. Legal from remote M, O or E (data is
 * committed), and from Invalid *without* committing data: a
 * home-initiated SINV can race with an in-flight RWBD, in which case
 * the home's own write was serialized after the eviction and the
 * writeback payload is stale.
 */
HomeWritebackStep homeWriteback(cache::MoesiState dir);

/** Directory state after a clean-eviction notice (REVC). */
cache::MoesiState homeEvict();

/** Which snoop (if any) a home-initiated access must send first. */
enum class SnoopKind : std::uint8_t {
    None,       ///< no remote copy stands in the way
    Forward,    ///< SFWD: downgrade the remote owner and fetch data
    Invalidate, ///< SINV: invalidate the remote copy
};

/** Snoop needed before the home node reads its own line locally. */
SnoopKind homeLocalReadSnoop(cache::MoesiState dir);

/** Snoop needed before the home node writes its own line locally. */
SnoopKind homeLocalWriteSnoop(cache::MoesiState dir);

/** Directory state after a snoop response (SACKS or SACKI). */
cache::MoesiState homeSnoopResponse(Opcode ack);

/** Cache state a remote fill installs for the given grant. */
cache::MoesiState remoteFillState(Grant g);

/** Decision for a coherent cached write at the remote node. */
struct RemoteWriteStep
{
    bool hit;                      ///< write completes locally
    cache::MoesiState stateAfter;  ///< Modified on a hit
    Opcode request;                ///< RUPG or RLDX when !hit
};

/** Classify a remote cached write against the current line state. */
RemoteWriteStep remoteWrite(cache::MoesiState s);

/** Request opcode a remote eviction must emit (RWBD or REVC). */
Opcode remoteEvict(cache::MoesiState s);

/** Decision for answering a snoop at the remote node. */
struct RemoteSnoopStep
{
    bool hit;                     ///< snoop found a resident copy
    Opcode response;              ///< SACKS or SACKI
    cache::MoesiState stateAfter; ///< remote cache state after the ack
    bool hasData;                 ///< the ack carries the line payload
};

/**
 * Answer a home-initiated snoop (SFWD or SINV) from remote state @p s.
 * An SFWD that finds nothing resident (the holder evicted
 * concurrently; its RWBD/REVC is in flight toward the home) is a
 * snoop miss answered with a clean SACKI — the home must let the
 * in-flight eviction drain and retry its local access.
 */
RemoteSnoopStep remoteSnoop(cache::MoesiState s, Opcode snoop);

} // namespace enzian::eci::proto

#endif // ENZIAN_ECI_PROTOCOL_KERNEL_HH
