/**
 * @file
 * ECI message helpers.
 */

#include "eci/eci_msg.hh"

#include "base/logging.hh"

namespace enzian::eci {

const char *
toString(Vc vc)
{
    switch (vc) {
      case Vc::Request:
        return "request";
      case Vc::Response:
        return "response";
      case Vc::Data:
        return "data";
      case Vc::Snoop:
        return "snoop";
      case Vc::SnoopResp:
        return "snoop_resp";
      case Vc::Io:
        return "io";
      case Vc::Ipi:
        return "ipi";
      case Vc::VcCount:
        break;
    }
    return "?";
}

const char *
toString(Opcode op)
{
    switch (op) {
      case Opcode::RLDD:
        return "RLDD";
      case Opcode::RLDX:
        return "RLDX";
      case Opcode::RLDI:
        return "RLDI";
      case Opcode::RSTT:
        return "RSTT";
      case Opcode::RUPG:
        return "RUPG";
      case Opcode::RWBD:
        return "RWBD";
      case Opcode::REVC:
        return "REVC";
      case Opcode::PEMD:
        return "PEMD";
      case Opcode::PACK:
        return "PACK";
      case Opcode::PNAK:
        return "PNAK";
      case Opcode::SINV:
        return "SINV";
      case Opcode::SFWD:
        return "SFWD";
      case Opcode::SACKI:
        return "SACKI";
      case Opcode::SACKS:
        return "SACKS";
      case Opcode::IOBLD:
        return "IOBLD";
      case Opcode::IOBST:
        return "IOBST";
      case Opcode::IOBACK:
        return "IOBACK";
      case Opcode::IPI:
        return "IPI";
      case Opcode::RUPD:
        return "RUPD";
    }
    return "?";
}

Vc
vcOf(Opcode op)
{
    switch (op) {
      case Opcode::RLDD:
      case Opcode::RLDX:
      case Opcode::RLDI:
      case Opcode::RUPG:
      case Opcode::REVC:
        return Vc::Request;
      case Opcode::PACK:
      case Opcode::PNAK:
        return Vc::Response;
      case Opcode::RSTT:
      case Opcode::RWBD:
      case Opcode::RUPD:
      case Opcode::PEMD:
        return Vc::Data;
      case Opcode::SINV:
      case Opcode::SFWD:
        return Vc::Snoop;
      case Opcode::SACKI:
      case Opcode::SACKS:
        return Vc::SnoopResp;
      case Opcode::IOBLD:
      case Opcode::IOBST:
      case Opcode::IOBACK:
        return Vc::Io;
      case Opcode::IPI:
        return Vc::Ipi;
    }
    panic("vcOf: bad opcode %d", static_cast<int>(op));
}

bool
carriesLine(Opcode op)
{
    switch (op) {
      case Opcode::RSTT:
      case Opcode::RWBD:
      case Opcode::RUPD:
      case Opcode::PEMD:
      case Opcode::SACKI:
      case Opcode::SACKS:
        return true;
      default:
        return false;
    }
}

std::uint32_t
EciMsg::wireBytes() const
{
    std::uint32_t n = headerBytes;
    if (carriesLine(op))
        n += cache::lineSize;
    return n;
}

std::string
EciMsg::toString() const
{
    return format("%s %s->%s tid=%u addr=%llx", eci::toString(op),
                  mem::toString(src), mem::toString(dst), tid,
                  static_cast<unsigned long long>(addr));
}

} // namespace enzian::eci
