/**
 * @file
 * IoSpace implementation.
 */

#include "eci/io_space.hh"

#include "base/logging.hh"

namespace enzian::eci {

void
IoSpace::map(const std::string &name, Addr base, std::uint64_t size,
             IoDevice dev)
{
    if (size == 0)
        fatal("I/O window '%s' has zero size", name.c_str());
    // Reject overlap with the window at or after base, and the one
    // before it.
    auto next = windows_.lower_bound(base);
    if (next != windows_.end() && base + size > next->first)
        fatal("I/O window '%s' overlaps '%s'", name.c_str(),
              next->second.name.c_str());
    if (next != windows_.begin()) {
        auto prev = std::prev(next);
        if (prev->first + prev->second.size > base)
            fatal("I/O window '%s' overlaps '%s'", name.c_str(),
                  prev->second.name.c_str());
    }
    windows_.emplace(base, Window{name, size, std::move(dev)});
}

const IoSpace::Window *
IoSpace::find(Addr offset, Addr &base) const
{
    auto it = windows_.upper_bound(offset);
    if (it == windows_.begin())
        return nullptr;
    --it;
    if (offset >= it->first + it->second.size)
        return nullptr;
    base = it->first;
    return &it->second;
}

std::uint64_t
IoSpace::read(Addr offset, std::uint32_t len) const
{
    Addr base = 0;
    const Window *w = find(offset, base);
    if (!w || !w->dev.read) {
        warn("I/O read from unmapped offset %llx",
             static_cast<unsigned long long>(offset));
        return 0;
    }
    return w->dev.read(offset - base, len);
}

void
IoSpace::write(Addr offset, std::uint64_t data, std::uint32_t len)
{
    Addr base = 0;
    const Window *w = find(offset, base);
    if (!w || !w->dev.write) {
        warn("I/O write to unmapped offset %llx dropped",
             static_cast<unsigned long long>(offset));
        return;
    }
    w->dev.write(offset - base, data, len);
}

bool
IoSpace::mapped(Addr offset) const
{
    Addr base = 0;
    return find(offset, base) != nullptr;
}

} // namespace enzian::eci
