/**
 * @file
 * Remote agent implementation.
 */

#include "eci/remote_agent.hh"

#include <algorithm>
#include <cstring>

#include "base/logging.hh"
#include "eci/home_agent.hh"
#include "eci/protocol_kernel.hh"
#include "obs/span_tracer.hh"

namespace enzian::eci {

using cache::MoesiState;

RemoteAgent::RemoteAgent(std::string name, EventQueue &eq,
                         mem::NodeId node, const mem::AddressMap &map,
                         EciFabric &fabric, const Config &cfg)
    : SimObject(std::move(name), eq), node_(node),
      peer_(node == mem::NodeId::Cpu ? mem::NodeId::Fpga
                                     : mem::NodeId::Cpu),
      map_(map), fabric_(fabric), cfg_(cfg)
{
    if (cfg_.max_outstanding == 0)
        fatal("remote agent '%s': zero MSHRs", SimObject::name().c_str());
    stats().addCounter("local_hits", &hits_);
    stats().addCounter("requests", &reqs_);
    stats().addCounter("pnaks", &pnaks_);
    stats().addCounter("retries", &retries_);
    stats().addCounter("duplicate_responses", &dupRsps_);
    stats().addAccumulator("rtt_ns", &rtt_);
    stats().addAccumulator("outstanding", &outstanding_);
}

void
RemoteAgent::enableRecovery(double timeout_us,
                            std::uint32_t max_retries)
{
    retryTimeout_ = units::us(timeout_us);
    maxRetries_ = max_retries;
}

void
RemoteAgent::armRetry(std::uint32_t tid)
{
    auto it = txns_.find(tid);
    if (it == txns_.end())
        return;
    Txn &t = it->second;
    const Tick delay =
        retryTimeout_ << std::min<std::uint32_t>(t.attempts, 5);
    t.retryEv = eventq().scheduleDelta(
        delay, [this, tid]() { onRetryTimeout(tid); }, "eci-req-retry");
}

void
RemoteAgent::onRetryTimeout(std::uint32_t tid)
{
    auto it = txns_.find(tid);
    if (it == txns_.end())
        return; // completed while the timeout event was in flight
    Txn &t = it->second;
    ++t.attempts;
    ENZIAN_ASSERT(t.attempts <= maxRetries_,
                  "request tid %u unanswered after %u retries "
                  "(livelock?)",
                  tid, t.attempts);
    retries_.inc();
    // Same tid on purpose: the home deduplicates in-flight requests
    // and replays cached responses, so a duplicate is harmless while
    // a fresh tid would double-apply the operation.
    fabric_.send(*t.resend);
    armRetry(tid);
}

RemoteAgent::RemoteAgent(std::string name, EventQueue &eq,
                         mem::NodeId node, const mem::AddressMap &map,
                         EciFabric &fabric)
    : RemoteAgent(std::move(name), eq, node, map, fabric, Config())
{
}

std::uint32_t
RemoteAgent::newTid()
{
    return nextTid_++;
}

void
RemoteAgent::releaseLine(Addr line)
{
    busyLines_.erase(line);
    auto it = lineWaiters_.find(line);
    if (it == lineWaiters_.end())
        return;
    std::deque<std::function<void()>> waiters = std::move(it->second);
    lineWaiters_.erase(it);
    // Re-execute parked operations; each re-probes the cache and may
    // now hit locally or start its own transaction (re-parking any
    // operations beyond the first state-changing one).
    for (auto &w : waiters)
        w();
}

void
RemoteAgent::parkOnLine(Addr line, std::function<void()> retry)
{
    lineWaiters_[line].push_back(std::move(retry));
}

void
RemoteAgent::submit(std::function<void()> op)
{
    if (txns_.size() < cfg_.max_outstanding)
        op();
    else
        waiting_.push_back(std::move(op));
}

void
RemoteAgent::releaseSlot()
{
    if (waiting_.empty() || txns_.size() >= cfg_.max_outstanding)
        return;
    auto op = std::move(waiting_.front());
    waiting_.pop_front();
    op();
}

void
RemoteAgent::sendRequest(Opcode op, Addr line, Txn txn,
                         const std::uint8_t *payload)
{
    const std::uint32_t tid = newTid();
    EciMsg msg;
    msg.op = op;
    msg.src = node_;
    msg.dst = peer_;
    msg.tid = tid;
    msg.addr = line;
    if (payload)
        std::memcpy(msg.line.data(), payload, cache::lineSize);
    txn.start = now();
    txn.op = op;
    auto it = txns_.emplace(tid, std::move(txn)).first;
    outstanding_.sample(static_cast<double>(txns_.size()));
    reqs_.inc();
    fabric_.send(msg);
    if (retryTimeout_) {
        it->second.resend = std::make_unique<EciMsg>(msg);
        armRetry(tid);
    }
}

void
RemoteAgent::recordCompletion(const Txn &txn)
{
    rtt_.sample(units::toNanos(now() - txn.start));
    ENZIAN_SPAN(name(), eci::toString(txn.op), txn.start, now());
}

void
RemoteAgent::readLine(Addr line, std::uint8_t *out, Done done)
{
    line = cache::lineAlign(line);
    ENZIAN_ASSERT(map_.homeOf(line) == peer_,
                  "readLine of locally-homed line %llx",
                  static_cast<unsigned long long>(line));
    if (cache_) {
        if (cache::LineFrame *f = cache_->access(line)) {
            hits_.inc();
            if (out)
                std::memcpy(out, f->data.data(), cache::lineSize);
            const Tick ready = now() + units::ns(cfg_.hit_latency_ns);
            eventq().schedule(
                ready, [done = std::move(done), ready]() { done(ready); },
                "l2-hit");
            return;
        }
        if (lineBusy(line)) {
            parkOnLine(line, [this, line, out,
                              done = std::move(done)]() mutable {
                readLine(line, out, std::move(done));
            });
            return;
        }
        markLineBusy(line);
    }
    submit([this, line, out, done = std::move(done)]() mutable {
        Txn t;
        t.kind = Kind::CachedRead;
        t.line = line;
        t.out = out;
        t.done = std::move(done);
        sendRequest(cache_ ? Opcode::RLDD : Opcode::RLDI, line,
                    std::move(t));
    });
}

void
RemoteAgent::writeLine(Addr line, const std::uint8_t *data, Done done)
{
    line = cache::lineAlign(line);
    ENZIAN_ASSERT(map_.homeOf(line) == peer_,
                  "writeLine of locally-homed line %llx",
                  static_cast<unsigned long long>(line));
    if (!cache_) {
        writeLineUncached(line, data, std::move(done));
        return;
    }
    if (lineBusy(line)) {
        std::vector<std::uint8_t> payload(data,
                                          data + cache::lineSize);
        parkOnLine(line, [this, line, payload = std::move(payload),
                          done = std::move(done)]() mutable {
            writeLine(line, payload.data(), std::move(done));
        });
        return;
    }
    const proto::RemoteWriteStep step =
        table_->remoteWrite(cache_->probe(line));
    if (step.hit) {
        cache_->access(line); // bump LRU
        cache_->writeData(line, data, cache::lineSize);
        cache_->setState(line, step.stateAfter);
        hits_.inc();
        const Tick ready = now() + units::ns(cfg_.hit_latency_ns);
        eventq().schedule(
            ready, [done = std::move(done), ready]() { done(ready); },
            "l2-write-hit");
        return;
    }
    std::vector<std::uint8_t> payload(data, data + cache::lineSize);
    markLineBusy(line);
    submit([this, line, op = step.request,
            payload = std::move(payload),
            done = std::move(done)]() mutable {
        Txn t;
        t.kind = (op == Opcode::RUPG || op == Opcode::RUPD)
                     ? Kind::Upgrade
                     : Kind::CachedWriteMiss;
        t.line = line;
        t.data = std::move(payload);
        t.done = std::move(done);
        // An update (RUPD) ships the full new line so the home can
        // refresh surviving copies; RUPG/RLDX carry no payload.
        const std::uint8_t *wire =
            op == Opcode::RUPD ? t.data.data() : nullptr;
        sendRequest(op, line, std::move(t), wire);
    });
}

void
RemoteAgent::readLineUncached(Addr line, std::uint8_t *out, Done done)
{
    line = cache::lineAlign(line);
    submit([this, line, out, done = std::move(done)]() mutable {
        Txn t;
        t.kind = Kind::UncachedRead;
        t.line = line;
        t.out = out;
        t.done = std::move(done);
        sendRequest(Opcode::RLDI, line, std::move(t));
    });
}

void
RemoteAgent::writeLineUncached(Addr line, const std::uint8_t *data,
                               Done done)
{
    line = cache::lineAlign(line);
    std::vector<std::uint8_t> payload(data, data + cache::lineSize);
    submit([this, line, payload = std::move(payload),
            done = std::move(done)]() mutable {
        Txn t;
        t.kind = Kind::UncachedWrite;
        t.line = line;
        t.done = std::move(done);
        sendRequest(Opcode::RSTT, line, std::move(t), payload.data());
    });
}

void
RemoteAgent::ioRead(Addr offset, std::uint32_t len, IoDone done)
{
    ENZIAN_ASSERT(len >= 1 && len <= 8, "I/O read of %u bytes", len);
    submit([this, offset, len, done = std::move(done)]() mutable {
        Txn t;
        t.kind = Kind::Io;
        t.iodone = std::move(done);
        t.start = now();
        t.op = Opcode::IOBLD;
        const std::uint32_t tid = newTid();
        EciMsg msg;
        msg.op = Opcode::IOBLD;
        msg.src = node_;
        msg.dst = peer_;
        msg.tid = tid;
        msg.addr = offset;
        msg.ioLen = len;
        auto it = txns_.emplace(tid, std::move(t)).first;
        reqs_.inc();
        fabric_.send(msg);
        if (retryTimeout_) {
            it->second.resend = std::make_unique<EciMsg>(msg);
            armRetry(tid);
        }
    });
}

void
RemoteAgent::ioWrite(Addr offset, std::uint64_t data, std::uint32_t len,
                     Done done)
{
    ENZIAN_ASSERT(len >= 1 && len <= 8, "I/O write of %u bytes", len);
    submit([this, offset, data, len, done = std::move(done)]() mutable {
        Txn t;
        t.kind = Kind::Io;
        t.iodone = [done = std::move(done)](Tick tick, std::uint64_t) {
            done(tick);
        };
        t.start = now();
        t.op = Opcode::IOBST;
        const std::uint32_t tid = newTid();
        EciMsg msg;
        msg.op = Opcode::IOBST;
        msg.src = node_;
        msg.dst = peer_;
        msg.tid = tid;
        msg.addr = offset;
        msg.ioLen = len;
        msg.ioData = data;
        auto it = txns_.emplace(tid, std::move(t)).first;
        reqs_.inc();
        fabric_.send(msg);
        if (retryTimeout_) {
            it->second.resend = std::make_unique<EciMsg>(msg);
            armRetry(tid);
        }
    });
}

void
RemoteAgent::sendIpi(std::uint32_t vector)
{
    EciMsg msg;
    msg.op = Opcode::IPI;
    msg.src = node_;
    msg.dst = peer_;
    msg.tid = newTid();
    msg.ioLen = vector;
    fabric_.send(msg);
}

void
RemoteAgent::handleEviction(cache::Eviction ev)
{
    if (map_.homeOf(ev.addr) != peer_)
        return; // locally-homed victims are the home agent's business
    if (table_->remoteEvict(ev.state) == Opcode::RWBD) {
        markLineBusy(ev.addr);
        Txn t;
        t.kind = Kind::WriteBack;
        t.line = ev.addr;
        sendRequest(Opcode::RWBD, ev.addr, std::move(t),
                    ev.data.data());
    } else {
        // Clean evictions are tracked too: the PACK pins the line
        // busy so a subsequent refill cannot overtake the eviction
        // notice on a reordering link policy.
        markLineBusy(ev.addr);
        Txn t;
        t.kind = Kind::Evict;
        t.line = ev.addr;
        sendRequest(Opcode::REVC, ev.addr, std::move(t));
    }
}

void
RemoteAgent::flushAll(Done done)
{
    if (!cache_) {
        const Tick t = now();
        eventq().schedule(t, [done, t]() { done(t); }, "flush-empty");
        return;
    }
    std::vector<std::pair<Addr, bool>> victims; // line, dirty
    cache_->forEachLine([&](Addr line, const cache::LineFrame &f) {
        if (map_.homeOf(line) == peer_)
            victims.emplace_back(line, cache::isDirty(f.state));
    });
    auto remaining = std::make_shared<std::size_t>(0);
    for (const auto &[line, dirty] : victims) {
        if (dirty) {
            std::vector<std::uint8_t> data(cache::lineSize);
            cache_->readData(line, data.data(), cache::lineSize);
            cache_->invalidate(line);
            markLineBusy(line);
            ++*remaining;
            submit([this, line, data = std::move(data), remaining,
                    done]() mutable {
                Txn t;
                t.kind = Kind::WriteBack;
                t.line = line;
                t.done = [remaining, done](Tick tick) {
                    if (--*remaining == 0)
                        done(tick);
                };
                sendRequest(Opcode::RWBD, line, std::move(t),
                            data.data());
            });
        } else {
            cache_->invalidate(line);
            markLineBusy(line);
            Txn t;
            t.kind = Kind::Evict;
            t.line = line;
            sendRequest(Opcode::REVC, line, std::move(t));
        }
    }
    if (*remaining == 0) {
        const Tick t = now();
        eventq().schedule(t, [done, t]() { done(t); }, "flush-clean");
    }
}

void
RemoteAgent::completeFill(std::uint32_t tid, const EciMsg &msg)
{
    auto it = txns_.find(tid);
    if (it == txns_.end() && retryTimeout_) {
        // Our retry raced the original's response; the first copy
        // already completed this transaction.
        dupRsps_.inc();
        return;
    }
    ENZIAN_ASSERT(it != txns_.end(), "PEMD with unknown tid %u", tid);
    eventq().cancel(it->second.retryEv);
    Txn txn = std::move(it->second);
    txns_.erase(it);
    recordCompletion(txn);

    switch (txn.kind) {
      case Kind::CachedRead: {
        if (cache_) {
            const MoesiState st = table_->remoteFillState(msg.grant);
            auto ev = cache_->fill(txn.line, st, msg.line.data(),
                                   cache::ownerRemote);
            if (txn.invalAfterFill)
                cache_->invalidate(txn.line);
            if (ev)
                handleEviction(std::move(*ev));
        }
        if (txn.out)
            std::memcpy(txn.out, msg.line.data(), cache::lineSize);
        break;
      }
      case Kind::CachedWriteMiss: {
        ENZIAN_ASSERT(cache_, "write-miss fill without cache");
        auto ev = cache_->fill(txn.line, MoesiState::Modified,
                               txn.data.data(), cache::ownerRemote);
        if (txn.invalAfterFill) {
            // The snoop ordered ahead of our write; push the data home.
            auto dirty = cache_->invalidate(txn.line);
            if (dirty)
                handleEviction(std::move(*dirty));
        }
        if (ev)
            handleEviction(std::move(*ev));
        break;
      }
      case Kind::UncachedRead:
        if (txn.out)
            std::memcpy(txn.out, msg.line.data(), cache::lineSize);
        break;
      default:
        panic("PEMD for transaction kind %d",
              static_cast<int>(txn.kind));
    }
    if (txn.done)
        txn.done(now());
    releaseSlot();
    if (txn.kind == Kind::CachedRead || txn.kind == Kind::CachedWriteMiss)
        releaseLine(txn.line);
}

void
RemoteAgent::handleSnoop(const EciMsg &msg)
{
    const Addr line = cache::lineAlign(msg.addr);
    EciMsg rsp;
    rsp.src = node_;
    rsp.dst = peer_;
    rsp.tid = msg.tid;
    rsp.addr = line;

    const MoesiState s =
        cache_ ? cache_->probe(line) : MoesiState::Invalid;
    const proto::RemoteSnoopStep step = table_->remoteSnoop(s, msg.op);

    if (step.response == Opcode::SACKS) {
        ENZIAN_ASSERT(cache_, "SFWD hit at cacheless node");
        rsp.op = step.response;
        cache_->readData(line, rsp.line.data(), cache::lineSize);
        cache_->setState(line, step.stateAfter);
        rsp.hasData = step.hasData;
        fabric_.send(rsp);
        return;
    }

    // SINV, or an SFWD that missed because our eviction is in flight.
    rsp.op = step.response;
    rsp.hasData = false;
    if (cache_) {
        auto dirty = cache_->invalidate(line);
        if (dirty) {
            std::memcpy(rsp.line.data(), dirty->data.data(),
                        cache::lineSize);
            rsp.hasData = step.hasData;
        }
    }
    // If a fill for this line is in flight, remember to drop it on
    // arrival (the home ordered the invalidation after our grant).
    for (auto &[tid, txn] : txns_) {
        if ((txn.kind == Kind::CachedRead ||
             txn.kind == Kind::CachedWriteMiss) &&
            txn.line == line) {
            txn.invalAfterFill = true;
        }
    }
    fabric_.send(rsp);
}

void
RemoteAgent::handle(const EciMsg &msg)
{
    switch (msg.op) {
      case Opcode::PEMD:
        completeFill(msg.tid, msg);
        return;
      case Opcode::PACK: {
        auto it = txns_.find(msg.tid);
        if (it == txns_.end() && retryTimeout_) {
            dupRsps_.inc();
            return;
        }
        ENZIAN_ASSERT(it != txns_.end(), "PACK with unknown tid %u",
                      msg.tid);
        eventq().cancel(it->second.retryEv);
        Txn txn = std::move(it->second);
        txns_.erase(it);
        recordCompletion(txn);
        if (txn.kind == Kind::Upgrade) {
            ENZIAN_ASSERT(cache_, "upgrade without cache");
            // Grant::Owned (update protocols) keeps the writer in
            // Owned — other copies survived; anything else makes it
            // the sole Modified owner.
            const MoesiState after =
                table_->remoteUpgradeResult(msg.grant);
            if (cache_->probe(txn.line) == MoesiState::Invalid) {
                // A racing SINV consumed our Shared copy before the
                // upgrade was granted; the write carries the full
                // line, so install it fresh.
                auto ev = cache_->fill(txn.line, after,
                                       txn.data.data(),
                                       cache::ownerRemote);
                if (ev)
                    handleEviction(std::move(*ev));
            } else {
                cache_->access(txn.line);
                cache_->writeData(txn.line, txn.data.data(),
                                  cache::lineSize);
                cache_->setState(txn.line, after);
            }
        }
        if (txn.done)
            txn.done(now());
        releaseSlot();
        if (txn.kind == Kind::Upgrade ||
            txn.kind == Kind::WriteBack || txn.kind == Kind::Evict)
            releaseLine(txn.line);
        return;
      }
      case Opcode::PNAK: {
        // Retry after a small backoff.
        auto it = txns_.find(msg.tid);
        if (it == txns_.end() && retryTimeout_) {
            dupRsps_.inc();
            return;
        }
        ENZIAN_ASSERT(it != txns_.end(), "PNAK with unknown tid %u",
                      msg.tid);
        eventq().cancel(it->second.retryEv);
        Txn txn = std::move(it->second);
        txns_.erase(it);
        pnaks_.inc();
        logWarn("PNAK for line %llx, retrying",
                static_cast<unsigned long long>(txn.line));
        // Simplified retry: reissue as an uncached read.
        readLineUncached(txn.line, txn.out, std::move(txn.done));
        releaseSlot();
        return;
      }
      case Opcode::SINV:
      case Opcode::SFWD:
        handleSnoop(msg);
        return;
      case Opcode::IOBACK: {
        auto it = txns_.find(msg.tid);
        if (it == txns_.end() && retryTimeout_) {
            dupRsps_.inc();
            return;
        }
        ENZIAN_ASSERT(it != txns_.end(), "IOBACK with unknown tid %u",
                      msg.tid);
        eventq().cancel(it->second.retryEv);
        Txn txn = std::move(it->second);
        txns_.erase(it);
        recordCompletion(txn);
        if (txn.iodone)
            txn.iodone(now(), msg.ioData);
        releaseSlot();
        return;
      }
      default:
        panic("remote agent received unexpected %s",
              msg.toString().c_str());
    }
}

void
dispatch(HomeAgent &home, RemoteAgent &remote, const EciMsg &msg)
{
    switch (msg.op) {
      case Opcode::RLDD:
      case Opcode::RLDX:
      case Opcode::RLDI:
      case Opcode::RSTT:
      case Opcode::RUPG:
      case Opcode::RUPD:
      case Opcode::RWBD:
      case Opcode::REVC:
      case Opcode::SACKI:
      case Opcode::SACKS:
      case Opcode::IOBLD:
      case Opcode::IOBST:
      case Opcode::IPI:
        home.handle(msg);
        return;
      case Opcode::PEMD:
      case Opcode::PACK:
      case Opcode::PNAK:
      case Opcode::SINV:
      case Opcode::SFWD:
      case Opcode::IOBACK:
        remote.handle(msg);
        return;
    }
    panic("dispatch: bad opcode");
}

} // namespace enzian::eci
