/**
 * @file
 * LineSource that places a node's DRAM in its own timing domain.
 *
 * With EnzianMachine's `split.mem` enabled, the memory controllers
 * (and their refresh machinery) run in a dedicated ".mem" timing
 * domain instead of the owning agent's domain. The home agents then
 * reach memory through this source: a line request crosses an
 * agent->mem channel (one hop of modeled interconnect latency),
 * performs the timed DRAM access in the memory domain, and the
 * completion crosses back mem->agent, where the protocol engine's
 * Done callback runs. Requests stay FIFO per direction (channel
 * entries drain in push order and the destination queue orders by
 * timestamp + insertion sequence), so a write followed by a read of
 * the same line cannot reorder.
 *
 * This is a timing-changing split: every home-memory access gains two
 * hop latencies, and the hop (default well below the ECI floor) pins
 * the scheduler's fixed epoch step down — pair it with adaptive
 * epochs. posted() is false because acknowledgements must carry the
 * true durability tick from the other domain.
 */

#ifndef ENZIAN_ECI_DOMAIN_DRAM_SOURCE_HH
#define ENZIAN_ECI_DOMAIN_DRAM_SOURCE_HH

#include "eci/home_agent.hh"

namespace enzian::sim {
class CrossDomainChannel;
class DomainScheduler;
class TimingDomain;
} // namespace enzian::sim

namespace enzian::eci {

/** Home-agent line source backed by DRAM one timing domain away. */
class DomainDramSource : public LineSource
{
  public:
    /**
     * @param mc the memory controller, constructed against
     *        @p mem_domain's queue
     * @param agent_domain the domain the owning home agent runs in
     * @param hop one-way agent<->memory latency in ticks (> 0); also
     *        the lookahead of the two channels this source creates
     */
    DomainDramSource(mem::MemoryController &mc,
                     const mem::AddressMap &map,
                     sim::DomainScheduler &sched,
                     sim::TimingDomain &agent_domain,
                     sim::TimingDomain &mem_domain, Tick hop);

    void readLine(Tick when, Addr addr, std::uint8_t *out,
                  Done done) override;
    void writeLine(Tick when, Addr addr, const std::uint8_t *data,
                   Done done) override;

    /** Acks carry the durability tick from the memory domain. */
    bool posted() const override { return false; }

  private:
    mem::MemoryController &mc_;
    const mem::AddressMap &map_;
    EventQueue &agentq_;
    sim::CrossDomainChannel &toMem_;
    sim::CrossDomainChannel &toAgent_;
    Tick hop_;
};

} // namespace enzian::eci

#endif // ENZIAN_ECI_DOMAIN_DRAM_SOURCE_HH
