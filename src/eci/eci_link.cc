/**
 * @file
 * ECI link and fabric implementation.
 */

#include "eci/eci_link.hh"

#include <algorithm>

#include "base/logging.hh"
#include "obs/span_tracer.hh"
#include "sim/domain_scheduler.hh"

namespace enzian::eci {

EciLink::EciLink(std::string name, EventQueue &eq, const Config &cfg)
    : SimObject(std::move(name), eq), cfg_(cfg)
{
    recomputeBandwidth();
    for (std::size_t dir = 0; dir < deliverQ_.size(); ++dir) {
        deliverQ_[dir].ev.init(
            eq, [this, dir] { deliverNext(dir); }, "eci-deliver");
    }
    stats().addCounter("messages", &agg_.msgs);
    stats().addCounter("bytes", &agg_.bytes);
    stats().addCounter("fault_dropped", &agg_.dropped);
    stats().addCounter("fault_corrupted", &agg_.corrupted);
    stats().addCounter("lane_failures", &laneFails_);
    stats().addCounter("link_flaps", &flaps_);
    stats().addCounter("retrains", &retrains_);
    stats().addCounter("credits_reconciled", &creditsReconciled_);
    stats().addAccumulator("latency_ns", &agg_.latency);
    stats().addAccumulator("ser_wait_ns", &agg_.serWait);
    stats().addHistogram("latency_hist_ns", &agg_.hist);
    for (std::uint32_t vc = 0; vc < vcCount; ++vc) {
        stats().addAccumulator(
            format("vc_%s_latency_ns", toString(static_cast<Vc>(vc))),
            &agg_.vcLatency[vc]);
    }
}

Tick
EciLink::minCrossLatency(const Config &cfg)
{
    // Same sum in both directions: sender engine + wire + receiver
    // engine. Stream (serialization) time is excluded — it only adds
    // latency, so excluding it stays conservative.
    return units::ns(cfg.cpu_proc_ns + cfg.wire_latency_ns +
                     cfg.fpga_proc_ns);
}

void
EciLink::bindDomains(sim::DomainScheduler &sched,
                     sim::TimingDomain &cpu_domain,
                     sim::TimingDomain &fpga_domain)
{
    ENZIAN_ASSERT(sched.lookahead() <= minCrossLatency(cfg_),
                  "scheduler lookahead exceeds the latency floor of "
                  "link '%s'",
                  name().c_str());
    ENZIAN_ASSERT(!domainMode(), "link '%s' already bound to domains",
                  name().c_str());
    stage_.arm();
    // The channel pair carries this link's own latency floor, not the
    // scheduler's global minimum: per-pair lookahead is what lets the
    // adaptive scheduler stretch epochs on slower paths.
    static_assert(static_cast<std::size_t>(mem::NodeId::Cpu) == 0 &&
                      static_cast<std::size_t>(mem::NodeId::Fpga) == 1,
                  "direction indexing assumes Cpu=0 / Fpga=1");
    dirBind_.bind(sched, cpu_domain, fpga_domain,
                  minCrossLatency(cfg_));
    lanes_ = std::make_unique<std::array<sim::ChannelLane<EciMsg>, 2>>();
    for (std::size_t dir = 0; dir < 2; ++dir) {
        (*lanes_)[dir].attach(*dirBind_.channel(dir),
                              [this](EciMsg &m) {
                                  handlers_[static_cast<std::size_t>(
                                      m.dst)](m);
                              });
    }
    sched.addBarrierTask([this] { foldDomainState(); });
}

void
EciLink::TxStats::foldInto(TxStats &agg)
{
    agg.msgs.inc(msgs.value());
    agg.bytes.inc(bytes.value());
    agg.dropped.inc(dropped.value());
    agg.corrupted.inc(corrupted.value());
    agg.latency.merge(latency);
    agg.serWait.merge(serWait);
    agg.hist.merge(hist);
    for (std::size_t vc = 0; vc < vcLatency.size(); ++vc)
        agg.vcLatency[vc].merge(vcLatency[vc]);
    msgs.reset();
    bytes.reset();
    dropped.reset();
    corrupted.reset();
    latency.reset();
    serWait.reset();
    hist.reset();
    for (auto &a : vcLatency)
        a.reset();
}

void
EciLink::foldDomainState()
{
    // Direction 0 (CPU-sourced) folds first, always: the aggregate is
    // then independent of which thread ran which domain.
    stage_.fold([this](TxStats &s) { s.foldInto(agg_); });
    flushTaps();
}

void
EciLink::flushTaps()
{
    auto &a = tapStage_[0];
    auto &b = tapStage_[1];
    if (a.empty() && b.empty())
        return;
    if (!taps_.empty()) {
        // Each stage is sorted by send tick already (sends within a
        // domain are monotone); merge with ties broken toward
        // direction 0 for a fixed observation order.
        std::size_t i = 0;
        std::size_t j = 0;
        while (i < a.size() || j < b.size()) {
            const bool take_a =
                j >= b.size() ||
                (i < a.size() && a[i].first <= b[j].first);
            const auto &e = take_a ? a[i] : b[j];
            for (const Tap &t : taps_)
                t(e.first, e.second);
            if (take_a)
                ++i;
            else
                ++j;
        }
    }
    a.clear();
    b.clear();
}

void
EciLink::recomputeBandwidth()
{
    if (cfg_.lanes == 0)
        fatal("ECI link '%s': zero lanes", name().c_str());
    effBw_ = cfg_.lanes * (cfg_.lane_gbps * 1e9 / 8.0) * cfg_.efficiency;
}

void
EciLink::setLanes(std::uint32_t lanes)
{
    cfg_.lanes = lanes;
    recomputeBandwidth();
}

void
EciLink::setReceiver(mem::NodeId node, Handler h)
{
    handlers_[static_cast<std::size_t>(node)] = std::move(h);
}

Tick
EciLink::procLatency(mem::NodeId node) const
{
    return node == mem::NodeId::Cpu ? units::ns(cfg_.cpu_proc_ns)
                                    : units::ns(cfg_.fpga_proc_ns);
}

Tick
EciLink::busFreeAt(mem::NodeId src_node) const
{
    return busFreeAt_[static_cast<std::size_t>(src_node)].v;
}

EciLink::TxTiming
EciLink::txTiming(Tick tnow, const EciMsg &msg)
{
    // Sender-side processing, then wait for the serializer, stream the
    // message out, cross the wire, then receiver-side processing.
    const auto dir = static_cast<std::size_t>(msg.src);
    TxTiming t;
    t.serReady = tnow + procLatency(msg.src);
    t.start = std::max(t.serReady, busFreeAt_[dir].v);
    t.stream = units::transferTicks(msg.wireBytes(), effBw_);
    busFreeAt_[dir].v = t.start + t.stream;
    t.delivery = t.start + t.stream + units::ns(cfg_.wire_latency_ns) +
                 procLatency(msg.dst);
    return t;
}

void
EciLink::recordTx(std::size_t dir, Tick tnow, const EciMsg &msg,
                  const TxTiming &t)
{
    TxStats &s = txStats(dir);
    s.msgs.inc();
    s.bytes.inc(msg.wireBytes());
    const double lat_ns = units::toNanos(t.delivery - tnow);
    s.latency.sample(lat_ns);
    s.hist.sample(lat_ns);
    s.serWait.sample(units::toNanos(t.start - t.serReady));
    s.vcLatency[static_cast<std::size_t>(vcOf(msg.op))].sample(lat_ns);
}

Tick
EciLink::send(const EciMsg &msg)
{
    if (domainMode())
        return sendDomain(msg);
    const auto dir = static_cast<std::size_t>(msg.src);
    if (fault_) {
        const FaultAction act = fault_(now(), msg);
        if (act != FaultAction::Deliver)
            return sendFaulted(now(), msg, act);
    }
    for (const Tap &tap : taps_)
        tap(now(), msg);

    const TxTiming t = txTiming(now(), msg);
    recordTx(dir, now(), msg, t);
    ENZIAN_SPAN(name(), toString(msg.op), t.start, t.delivery);

    Handler &h = handlers_[static_cast<std::size_t>(msg.dst)];
    ENZIAN_ASSERT(h, "no receiver registered for node %s on %s",
                  mem::toString(msg.dst), name().c_str());

    // The serializer is FIFO per direction, so deliveries land in
    // order; append to the direction's queue and let its one reusable
    // event drain it. Fall back to a one-shot for the (src == dst)
    // corner where the receiver-side latency breaks monotonicity.
    DeliveryQueue &q = deliverQ_[dir];
    if (!q.fifo.empty() && t.delivery < q.fifo.back().first) {
        EciMsg copy = msg;
        eventq().schedule(
            t.delivery, [this, copy]() {
                handlers_[static_cast<std::size_t>(copy.dst)](copy);
            },
            "eci-deliver-ooo");
        return t.delivery;
    }
    q.fifo.emplace_back(t.delivery, msg);
    if (!q.ev.scheduled())
        q.ev.schedule(q.fifo.front().first);
    return t.delivery;
}

Tick
EciLink::sendDomain(const EciMsg &msg)
{
    // Parallel path: time comes from the sending direction's domain
    // clock, statistics go to that direction's stage, and delivery
    // crosses through the scheduler's mailbox so the destination
    // domain schedules it at the epoch barrier.
    const auto dir = static_cast<std::size_t>(msg.src);
    const Tick tnow = dirBind_.now(dir);
    if (fault_) {
        const FaultAction act = fault_(tnow, msg);
        if (act != FaultAction::Deliver)
            return sendFaulted(tnow, msg, act);
    }
    if (!taps_.empty())
        tapStage_[dir].emplace_back(tnow, msg);

    const TxTiming t = txTiming(tnow, msg);
    recordTx(dir, tnow, msg, t);
    ENZIAN_SPAN(name(), toString(msg.op), t.start, t.delivery);

    Handler &h = handlers_[static_cast<std::size_t>(msg.dst)];
    ENZIAN_ASSERT(h, "no receiver registered for node %s on %s",
                  mem::toString(msg.dst), name().c_str());

    if (msg.dst == msg.src) {
        // Loopback stays inside the sending domain.
        const EciMsg copy = msg;
        dirBind_.clock(dir).schedule(
            t.delivery,
            [this, copy]() {
                handlers_[static_cast<std::size_t>(copy.dst)](copy);
            },
            "eci-deliver-local");
        return t.delivery;
    }
    // Cross-domain: the message rides the direction's slot arena —
    // no per-message allocation, and the barrier drain stays
    // cache-linear over the channel's entry stream.
    (*lanes_)[dir].push(t.delivery, msg);
    return t.delivery;
}

Tick
EciLink::sendFaulted(Tick tnow, const EciMsg &msg, FaultAction act)
{
    // The bits still went out: the serializer is occupied as usual.
    // A corrupted message reaches the far side but fails its CRC and
    // is discarded there, which is operationally identical to a drop;
    // we account the two separately. Neither reaches the tap — a real
    // capture would never see the message arrive.
    const auto dir = static_cast<std::size_t>(msg.src);
    TxStats &s = txStats(dir);
    s.msgs.inc();
    s.bytes.inc(msg.wireBytes());
    const Tick ser_ready = tnow + procLatency(msg.src);
    const Tick start = std::max(ser_ready, busFreeAt_[dir].v);
    const Tick stream = units::transferTicks(msg.wireBytes(), effBw_);
    busFreeAt_[dir].v = start + stream;
    if (act == FaultAction::Drop) {
        s.dropped.inc();
        ENZIAN_SPAN(name(), "fault-drop", start, start + stream);
    } else {
        s.corrupted.inc();
        ENZIAN_SPAN(name(), "fault-corrupt", start, start + stream);
    }
    return start + stream;
}

void
EciLink::failLanes(std::uint32_t n)
{
    laneFails_.inc();
    const std::uint32_t survivors = cfg_.lanes > n ? cfg_.lanes - n : 1;
    logWarn("lane failure: %u lane(s) down, retraining to %u lanes", n,
            survivors);
    setLanes(survivors);
    beginRetrain(units::ns(cfg_.retrain_ns));
}

void
EciLink::restoreLanes(std::uint32_t lanes)
{
    logInfo("restoring link to %u lanes", lanes);
    setLanes(lanes);
    beginRetrain(units::ns(cfg_.retrain_ns));
}

void
EciLink::flap(Tick down_time)
{
    flaps_.inc();
    // Everything in flight is lost; the credit machinery reconciles
    // (the agents' retry timers re-issue the requests).
    std::uint64_t lost = 0;
    for (auto &q : deliverQ_) {
        lost += q.fifo.size();
        q.fifo.clear();
        q.ev.cancel();
    }
    creditsReconciled_.inc(lost);
    logWarn("link flap: down %.1f us, %llu message(s) lost",
            units::toNanos(down_time) / 1e3,
            static_cast<unsigned long long>(lost));
    beginRetrain(down_time + units::ns(cfg_.retrain_ns));
}

void
EciLink::beginRetrain(Tick duration)
{
    retrains_.inc();
    retrainEndsAt_ = std::max(retrainEndsAt_, now() + duration);
    // No traffic serializes until the lanes are aligned again.
    for (auto &free_at : busFreeAt_)
        free_at.v = std::max(free_at.v, retrainEndsAt_);
    ENZIAN_SPAN(name(), "retrain", now(), retrainEndsAt_);
}

void
EciLink::deliverNext(std::size_t dir)
{
    DeliveryQueue &q = deliverQ_[dir];
    ENZIAN_ASSERT(!q.fifo.empty(), "delivery event with empty queue");
    const EciMsg msg = q.fifo.front().second;
    q.fifo.pop_front();
    // Re-arm before invoking the handler: it may send() more traffic
    // in this direction, which appends behind the current front.
    if (!q.fifo.empty())
        q.ev.schedule(q.fifo.front().first);
    handlers_[static_cast<std::size_t>(msg.dst)](msg);
}

const char *
toString(BalancePolicy p)
{
    switch (p) {
      case BalancePolicy::SingleLink:
        return "single-link";
      case BalancePolicy::RoundRobin:
        return "round-robin";
      case BalancePolicy::AddressHash:
        return "address-hash";
      case BalancePolicy::LeastLoaded:
        return "least-loaded";
    }
    return "?";
}

EciFabric::EciFabric(std::string name, EventQueue &eq,
                     const EciLink::Config &link_cfg, std::uint32_t links,
                     BalancePolicy policy)
    : SimObject(std::move(name), eq), policy_(policy)
{
    if (links == 0)
        fatal("EciFabric with zero links");
    for (std::uint32_t i = 0; i < links; ++i) {
        links_.push_back(std::make_unique<EciLink>(
            SimObject::name() + ".link" + std::to_string(i), eq,
            link_cfg));
    }
}

void
EciFabric::setReceiver(mem::NodeId node, EciLink::Handler h)
{
    for (auto &l : links_)
        l->setReceiver(node, h);
}

void
EciFabric::setTap(EciLink::Tap tap)
{
    for (auto &l : links_)
        l->setTap(tap);
}

void
EciFabric::addTap(EciLink::Tap tap)
{
    for (auto &l : links_)
        l->addTap(tap);
}

void
EciFabric::bindDomains(sim::DomainScheduler &sched,
                       sim::TimingDomain &cpu_domain,
                       sim::TimingDomain &fpga_domain)
{
    domainMode_ = true;
    for (auto &l : links_)
        l->bindDomains(sched, cpu_domain, fpga_domain);
}

std::uint32_t
EciFabric::pickLink(const EciMsg &msg)
{
    const auto n = static_cast<std::uint32_t>(links_.size());
    if (n == 1)
        return 0;
    switch (policy_) {
      case BalancePolicy::SingleLink:
        return 0;
      case BalancePolicy::RoundRobin:
        // Domain mode: one counter per direction so the two sending
        // domains never share mutable state.
        if (domainMode_)
            return rrDir_[static_cast<std::size_t>(msg.src)]++ % n;
        return rr_++ % n;
      case BalancePolicy::AddressHash: {
        // Mix the line address so striding patterns spread evenly.
        std::uint64_t x = msg.addr / cache::lineSize;
        x ^= x >> 33;
        x *= 0xff51afd7ed558ccdull;
        x ^= x >> 33;
        return static_cast<std::uint32_t>(x % n);
      }
      case BalancePolicy::LeastLoaded: {
        std::uint32_t best = 0;
        Tick best_free = links_[0]->busFreeAt(msg.src);
        for (std::uint32_t i = 1; i < n; ++i) {
            const Tick f = links_[i]->busFreeAt(msg.src);
            if (f < best_free) {
                best = i;
                best_free = f;
            }
        }
        return best;
      }
    }
    panic("unreachable");
}

Tick
EciFabric::send(const EciMsg &msg)
{
    return links_[pickLink(msg)]->send(msg);
}

double
EciFabric::effectiveBandwidth() const
{
    double sum = 0;
    for (const auto &l : links_)
        sum += l->effectiveBandwidth();
    return sum;
}

} // namespace enzian::eci
