/**
 * @file
 * ECI link and fabric implementation.
 */

#include "eci/eci_link.hh"

#include <algorithm>

#include "base/logging.hh"
#include "obs/span_tracer.hh"

namespace enzian::eci {

EciLink::EciLink(std::string name, EventQueue &eq, const Config &cfg)
    : SimObject(std::move(name), eq), cfg_(cfg)
{
    recomputeBandwidth();
    for (std::size_t dir = 0; dir < deliverQ_.size(); ++dir) {
        deliverQ_[dir].ev.init(
            eq, [this, dir] { deliverNext(dir); }, "eci-deliver");
    }
    stats().addCounter("messages", &msgs_);
    stats().addCounter("bytes", &bytes_);
    stats().addCounter("fault_dropped", &dropped_);
    stats().addCounter("fault_corrupted", &corrupted_);
    stats().addCounter("lane_failures", &laneFails_);
    stats().addCounter("link_flaps", &flaps_);
    stats().addCounter("retrains", &retrains_);
    stats().addCounter("credits_reconciled", &creditsReconciled_);
    stats().addAccumulator("latency_ns", &latency_);
    stats().addAccumulator("ser_wait_ns", &serWait_);
    stats().addHistogram("latency_hist_ns", &latencyHist_);
    for (std::uint32_t vc = 0; vc < vcCount; ++vc) {
        stats().addAccumulator(
            format("vc_%s_latency_ns", toString(static_cast<Vc>(vc))),
            &vcLatency_[vc]);
    }
}

void
EciLink::recomputeBandwidth()
{
    if (cfg_.lanes == 0)
        fatal("ECI link '%s': zero lanes", name().c_str());
    effBw_ = cfg_.lanes * (cfg_.lane_gbps * 1e9 / 8.0) * cfg_.efficiency;
}

void
EciLink::setLanes(std::uint32_t lanes)
{
    cfg_.lanes = lanes;
    recomputeBandwidth();
}

void
EciLink::setReceiver(mem::NodeId node, Handler h)
{
    handlers_[static_cast<std::size_t>(node)] = std::move(h);
}

Tick
EciLink::procLatency(mem::NodeId node) const
{
    return node == mem::NodeId::Cpu ? units::ns(cfg_.cpu_proc_ns)
                                    : units::ns(cfg_.fpga_proc_ns);
}

Tick
EciLink::busFreeAt(mem::NodeId src_node) const
{
    return busFreeAt_[static_cast<std::size_t>(src_node)];
}

Tick
EciLink::send(const EciMsg &msg)
{
    const auto dir = static_cast<std::size_t>(msg.src);
    if (fault_) {
        const FaultAction act = fault_(now(), msg);
        if (act != FaultAction::Deliver)
            return sendFaulted(msg, act);
    }
    msgs_.inc();
    bytes_.inc(msg.wireBytes());
    if (tap_)
        tap_(now(), msg);

    // Sender-side processing, then wait for the serializer, stream the
    // message out, cross the wire, then receiver-side processing.
    const Tick ser_ready = now() + procLatency(msg.src);
    const Tick start = std::max(ser_ready, busFreeAt_[dir]);
    const Tick stream = units::transferTicks(msg.wireBytes(), effBw_);
    busFreeAt_[dir] = start + stream;
    const Tick delivery = start + stream + units::ns(cfg_.wire_latency_ns)
                          + procLatency(msg.dst);

    const double lat_ns = units::toNanos(delivery - now());
    latency_.sample(lat_ns);
    latencyHist_.sample(lat_ns);
    serWait_.sample(units::toNanos(start - ser_ready));
    vcLatency_[static_cast<std::size_t>(vcOf(msg.op))].sample(lat_ns);
    ENZIAN_SPAN(name(), toString(msg.op), start, delivery);

    Handler &h = handlers_[static_cast<std::size_t>(msg.dst)];
    ENZIAN_ASSERT(h, "no receiver registered for node %s on %s",
                  mem::toString(msg.dst), name().c_str());

    // The serializer is FIFO per direction, so deliveries land in
    // order; append to the direction's queue and let its one reusable
    // event drain it. Fall back to a one-shot for the (src == dst)
    // corner where the receiver-side latency breaks monotonicity.
    DeliveryQueue &q = deliverQ_[dir];
    if (!q.fifo.empty() && delivery < q.fifo.back().first) {
        EciMsg copy = msg;
        eventq().schedule(
            delivery, [this, copy]() {
                handlers_[static_cast<std::size_t>(copy.dst)](copy);
            },
            "eci-deliver-ooo");
        return delivery;
    }
    q.fifo.emplace_back(delivery, msg);
    if (!q.ev.scheduled())
        q.ev.schedule(q.fifo.front().first);
    return delivery;
}

Tick
EciLink::sendFaulted(const EciMsg &msg, FaultAction act)
{
    // The bits still went out: the serializer is occupied as usual.
    // A corrupted message reaches the far side but fails its CRC and
    // is discarded there, which is operationally identical to a drop;
    // we account the two separately. Neither reaches the tap — a real
    // capture would never see the message arrive.
    msgs_.inc();
    bytes_.inc(msg.wireBytes());
    const Tick ser_ready = now() + procLatency(msg.src);
    const auto dir = static_cast<std::size_t>(msg.src);
    const Tick start = std::max(ser_ready, busFreeAt_[dir]);
    const Tick stream = units::transferTicks(msg.wireBytes(), effBw_);
    busFreeAt_[dir] = start + stream;
    if (act == FaultAction::Drop) {
        dropped_.inc();
        ENZIAN_SPAN(name(), "fault-drop", start, start + stream);
    } else {
        corrupted_.inc();
        ENZIAN_SPAN(name(), "fault-corrupt", start, start + stream);
    }
    return start + stream;
}

void
EciLink::failLanes(std::uint32_t n)
{
    laneFails_.inc();
    const std::uint32_t survivors = cfg_.lanes > n ? cfg_.lanes - n : 1;
    logWarn("lane failure: %u lane(s) down, retraining to %u lanes", n,
            survivors);
    setLanes(survivors);
    beginRetrain(units::ns(cfg_.retrain_ns));
}

void
EciLink::restoreLanes(std::uint32_t lanes)
{
    logInfo("restoring link to %u lanes", lanes);
    setLanes(lanes);
    beginRetrain(units::ns(cfg_.retrain_ns));
}

void
EciLink::flap(Tick down_time)
{
    flaps_.inc();
    // Everything in flight is lost; the credit machinery reconciles
    // (the agents' retry timers re-issue the requests).
    std::uint64_t lost = 0;
    for (auto &q : deliverQ_) {
        lost += q.fifo.size();
        q.fifo.clear();
        q.ev.cancel();
    }
    creditsReconciled_.inc(lost);
    logWarn("link flap: down %.1f us, %llu message(s) lost",
            units::toNanos(down_time) / 1e3,
            static_cast<unsigned long long>(lost));
    beginRetrain(down_time + units::ns(cfg_.retrain_ns));
}

void
EciLink::beginRetrain(Tick duration)
{
    retrains_.inc();
    retrainEndsAt_ = std::max(retrainEndsAt_, now() + duration);
    // No traffic serializes until the lanes are aligned again.
    for (auto &free_at : busFreeAt_)
        free_at = std::max(free_at, retrainEndsAt_);
    ENZIAN_SPAN(name(), "retrain", now(), retrainEndsAt_);
}

void
EciLink::deliverNext(std::size_t dir)
{
    DeliveryQueue &q = deliverQ_[dir];
    ENZIAN_ASSERT(!q.fifo.empty(), "delivery event with empty queue");
    const EciMsg msg = q.fifo.front().second;
    q.fifo.pop_front();
    // Re-arm before invoking the handler: it may send() more traffic
    // in this direction, which appends behind the current front.
    if (!q.fifo.empty())
        q.ev.schedule(q.fifo.front().first);
    handlers_[static_cast<std::size_t>(msg.dst)](msg);
}

const char *
toString(BalancePolicy p)
{
    switch (p) {
      case BalancePolicy::SingleLink:
        return "single-link";
      case BalancePolicy::RoundRobin:
        return "round-robin";
      case BalancePolicy::AddressHash:
        return "address-hash";
      case BalancePolicy::LeastLoaded:
        return "least-loaded";
    }
    return "?";
}

EciFabric::EciFabric(std::string name, EventQueue &eq,
                     const EciLink::Config &link_cfg, std::uint32_t links,
                     BalancePolicy policy)
    : SimObject(std::move(name), eq), policy_(policy)
{
    if (links == 0)
        fatal("EciFabric with zero links");
    for (std::uint32_t i = 0; i < links; ++i) {
        links_.push_back(std::make_unique<EciLink>(
            SimObject::name() + ".link" + std::to_string(i), eq,
            link_cfg));
    }
}

void
EciFabric::setReceiver(mem::NodeId node, EciLink::Handler h)
{
    for (auto &l : links_)
        l->setReceiver(node, h);
}

void
EciFabric::setTap(EciLink::Tap tap)
{
    for (auto &l : links_)
        l->setTap(tap);
}

std::uint32_t
EciFabric::pickLink(const EciMsg &msg)
{
    const auto n = static_cast<std::uint32_t>(links_.size());
    if (n == 1)
        return 0;
    switch (policy_) {
      case BalancePolicy::SingleLink:
        return 0;
      case BalancePolicy::RoundRobin:
        return rr_++ % n;
      case BalancePolicy::AddressHash: {
        // Mix the line address so striding patterns spread evenly.
        std::uint64_t x = msg.addr / cache::lineSize;
        x ^= x >> 33;
        x *= 0xff51afd7ed558ccdull;
        x ^= x >> 33;
        return static_cast<std::uint32_t>(x % n);
      }
      case BalancePolicy::LeastLoaded: {
        std::uint32_t best = 0;
        Tick best_free = links_[0]->busFreeAt(msg.src);
        for (std::uint32_t i = 1; i < n; ++i) {
            const Tick f = links_[i]->busFreeAt(msg.src);
            if (f < best_free) {
                best = i;
                best_free = f;
            }
        }
        return best;
      }
    }
    panic("unreachable");
}

Tick
EciFabric::send(const EciMsg &msg)
{
    return links_[pickLink(msg)]->send(msg);
}

double
EciFabric::effectiveBandwidth() const
{
    double sum = 0;
    for (const auto &l : links_)
        sum += l->effectiveBandwidth();
    return sum;
}

} // namespace enzian::eci
