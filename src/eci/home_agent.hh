/**
 * @file
 * ECI home agent: the directory-side protocol engine of one node.
 *
 * Each Enzian node (CPU and FPGA) is home for its statically
 * partitioned share of the physical address space. The home agent
 * serves coherent requests from the remote node, tracks the remote
 * node's MOESI state per line in a directory, snoops the local cache,
 * and sources line data.
 *
 * Line data normally comes from the node's DRAM, but the source is
 * pluggable: the paper's "FPGA as a custom memory controller"
 * use-case (section 5.4, Figure 10) installs a transform that turns
 * an incoming RLDD refill request into a larger sequential DRAM burst
 * plus a data-reduction computation, returning the packed result as
 * the PEMD payload. The pipeline is invisible to the CPU beyond an
 * increase in latency.
 */

#ifndef ENZIAN_ECI_HOME_AGENT_HH
#define ENZIAN_ECI_HOME_AGENT_HH

#include <deque>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "cache/cache.hh"
#include "eci/eci_link.hh"
#include "eci/io_space.hh"
#include "eci/protocol_table.hh"
#include "mem/memory_controller.hh"

namespace enzian::eci {

/**
 * Source of line data at a home node. Implementations must be
 * functional (really produce/accept bytes) and timed (deliver the
 * tick the data is ready/durable through the completion callback).
 * The callback may run synchronously (a DRAM source computes its
 * timing immediately) or after arbitrarily many events (the
 * cluster-level coherence bridge performs a network round trip).
 */
class LineSource
{
  public:
    using Done = std::function<void(Tick)>;

    virtual ~LineSource() = default;

    /**
     * Produce the 128-byte line at @p addr into @p out; @p out must
     * stay valid until @p done runs.
     * @param when tick the request reaches the source
     */
    virtual void readLine(Tick when, Addr addr, std::uint8_t *out,
                          Done done) = 0;

    /**
     * Accept a full-line write; @p data is copied before return if
     * needed beyond the call.
     */
    virtual void writeLine(Tick when, Addr addr,
                           const std::uint8_t *data, Done done) = 0;

    /**
     * True if writes may be acknowledged as soon as the home engine
     * accepts them (a local DRAM behind a store buffer). Sources that
     * are a network away return false so the protocol ack carries the
     * true durability point.
     */
    virtual bool posted() const { return true; }
};

/** Default LineSource backed by the node's memory controller. */
class DramLineSource : public LineSource
{
  public:
    DramLineSource(mem::MemoryController &mc, const mem::AddressMap &map);

    void readLine(Tick when, Addr addr, std::uint8_t *out,
                  Done done) override;
    void writeLine(Tick when, Addr addr, const std::uint8_t *data,
                   Done done) override;

  private:
    mem::MemoryController &mc_;
    const mem::AddressMap &map_;
};

/** The home-side protocol engine of one node. */
class HomeAgent : public SimObject
{
  public:
    using Done = std::function<void(Tick)>;

    /**
     * @param node which node this agent belongs to
     * @param map the machine's static address partition
     * @param mc this node's memory controller
     * @param fabric the ECI link pair
     */
    HomeAgent(std::string name, EventQueue &eq, mem::NodeId node,
              const mem::AddressMap &map, mem::MemoryController &mc,
              EciFabric &fabric);

    /** Replace the line data source (nullptr restores DRAM). */
    void setLineSource(LineSource *src);

    /** Attach the home node's own cache, snooped for local copies. */
    void attachLocalCache(cache::Cache *c) { localCache_ = c; }

    /**
     * Read-allocate policy for the local cache: when on, local reads
     * whose data came from memory or a remote forward also install
     * the line locally as Shared, so later upgrades find a resident
     * home copy (the state write-update protocols exploit). Only
     * allocates into a free frame — the home agent never forces an
     * eviction it would have to write back. Off by default: reference
     * timing runs stay untouched.
     */
    void setReadAllocate(bool on) { readAllocate_ = on; }

    /** Select the coherence protocol table (default: shipped MOESI).
     *  Must match the remote agents'; switch only while idle. */
    void setProtocol(const proto::ProtocolTable *table)
    {
        table_ = table;
    }

    /** The active protocol table. */
    const proto::ProtocolTable &protocol() const { return *table_; }

    /** Attach the node's uncached I/O space. */
    void attachIoSpace(IoSpace *io) { ioSpace_ = io; }

    /** Set the IPI delivery handler (vector number argument). */
    void setIpiHandler(std::function<void(std::uint32_t)> h);

    /**
     * Turn on the loss-recovery path: duplicate requests are detected
     * and answered from a bounded reply cache (requesters retry with
     * the same tid), and outgoing snoops are retried with exponential
     * backoff until their response arrives. Off by default — the
     * happy path pays nothing.
     *
     * @param snoop_timeout_us initial snoop retry timeout
     * @param max_retries livelock guard: panic past this many retries
     */
    void enableRecovery(double snoop_timeout_us,
                        std::uint32_t max_retries = 16);

    /** Entry point for messages addressed to this node's home side. */
    void handle(const EciMsg &msg);

    /**
     * Coherent read by this node's own cores/engines. Snoops the
     * remote node if it holds the line M/E/O, then delivers the data.
     *
     * @param line line-aligned address homed at this node
     * @param out 128-byte buffer filled before @p done runs
     * @param done completion callback with the data-ready tick
     */
    void localRead(Addr line, std::uint8_t *out, Done done);

    /** Coherent full-line write by this node's own cores/engines. */
    void localWrite(Addr line, const std::uint8_t *data, Done done);

    /** Directory state the remote node holds for @p line. */
    cache::MoesiState remoteState(Addr line) const;

    std::uint64_t requestsServed() const { return served_.value(); }
    std::uint64_t snoopsSent() const { return snoops_.value(); }
    /** Responses replayed from the reply cache (recovery mode). */
    std::uint64_t responsesReplayed() const { return replays_.value(); }
    /** Duplicate requests dropped while the original was in flight. */
    std::uint64_t duplicateRequests() const { return dupReqs_.value(); }
    /** Snoops re-sent after a timeout (recovery mode). */
    std::uint64_t snoopRetries() const { return snoopRetries_.value(); }
    /** Duplicate snoop responses ignored (recovery mode). */
    std::uint64_t duplicateSnoopResponses() const
    {
        return dupSnoopRsps_.value();
    }

  private:
    struct PendingSnoop
    {
        Addr line;
        bool invalidate;
        Done done;
        std::uint8_t *out;               // localRead destination
        std::vector<std::uint8_t> wdata; // localWrite payload
        /** Copy of the snoop for retransmission (recovery mode). */
        EciMsg msg{};
        EventId retryEv = 0;
        std::uint32_t attempts = 0;
    };

    void process(const EciMsg &msg);
    void handleRequest(const EciMsg &msg);
    bool isDuplicateRequest(const EciMsg &msg);
    void recordResponse(const EciMsg &msg);
    void armSnoopRetry(std::uint32_t tid);
    void finishLine(Addr line);
    /**
     * Per-line transaction serialization: remote requests AND
     * home-local accesses for a line execute one at a time; a busy
     * line queues @p retry to re-attempt when the current transaction
     * finishes. Serializing local accesses too closes the
     * upgrade-vs-snoop races a concurrent home would have to handle
     * with NAK/retry machinery.
     */
    bool acquireLine(Addr line, std::function<void()> retry);

    /** Install @p data locally as Shared if read-allocate permits. */
    void maybeAllocateLocal(Addr line, const std::uint8_t *data);

    void serveRead(const EciMsg &msg, bool exclusive, bool allocate);
    void serveUncachedWrite(const EciMsg &msg);
    void serveUpgrade(const EciMsg &msg);
    void serveWriteBack(const EciMsg &msg);
    void handleSnoopResponse(const EciMsg &msg);
    void serveIo(const EciMsg &msg);

    /** Send @p msg once @p when arrives. */
    void sendAt(Tick when, const EciMsg &msg);

    /**
     * Record one served request for stats and span tracing: @p t_req
     * is the arrival tick, @p done_at the tick the response leaves.
     */
    void recordService(const char *op, Tick t_req, Tick done_at);

    mem::NodeId node_;
    mem::NodeId peer_;
    const mem::AddressMap &map_;
    mem::MemoryController &mc_;
    EciFabric &fabric_;
    DramLineSource defaultSource_;
    LineSource *source_;
    cache::Cache *localCache_ = nullptr;
    bool readAllocate_ = false;
    IoSpace *ioSpace_ = nullptr;
    const proto::ProtocolTable *table_ = &proto::moesiProtocol();
    std::function<void(std::uint32_t)> ipiHandler_;

    /** Remote node's directory state per line (absent = Invalid). */
    std::unordered_map<Addr, cache::MoesiState> dir_;
    /** Lines with a transaction in flight; arrivals queue behind. */
    std::unordered_set<Addr> busy_;
    std::unordered_map<Addr, std::deque<std::function<void()>>>
        deferred_;
    /** Outstanding local-access snoops by tid. */
    std::unordered_map<std::uint32_t, PendingSnoop> pendingSnoops_;
    std::uint32_t nextSnoopTid_ = 1;

    /** Loss-recovery machinery; inert unless enableRecovery() ran. */
    bool recovery_ = false;
    Tick snoopTimeout_ = 0;
    std::uint32_t maxRetries_ = 16;
    /** Requests accepted but not yet answered (dedup set). */
    std::unordered_set<std::uint32_t> inflightReq_;
    /** Bounded LRU cache of sent responses, replayed on retries. */
    std::unordered_map<std::uint32_t, EciMsg> replay_;
    std::deque<std::uint32_t> replayOrder_;

    /** Directory lookup / pipeline latency of this engine. */
    Tick dirLatency_;

    Counter served_;
    Counter snoops_;
    Counter replays_;
    Counter dupReqs_;
    Counter snoopRetries_;
    Counter dupSnoopRsps_;
    /** Requests that found their line busy and had to queue. */
    Counter deferrals_;
    /** Arrival-to-response service time per request, ns. */
    Accumulator service_;
    /** Concurrently-busy lines, sampled at each acquire. */
    Accumulator occupancy_;
};

} // namespace enzian::eci

#endif // ENZIAN_ECI_HOME_AGENT_HH
