/**
 * @file
 * Pure ECI/MOESI transition kernels (implementation).
 */

#include "eci/protocol_kernel.hh"

namespace enzian::eci::proto {

using cache::MoesiState;

HomeReadStep
homeRead(MoesiState local, MoesiState dir, bool exclusive,
         bool allocate)
{
    HomeReadStep step;
    const bool local_had_copy = local != MoesiState::Invalid;

    step.localAction = LocalAction::Keep;
    step.localAfter = local;
    step.flushLocalDirty = false;
    if (local_had_copy) {
        if (exclusive) {
            // Requester takes ownership; the home flushes its dirty
            // data to the source and drops the copy.
            step.localAction = LocalAction::Invalidate;
            step.localAfter = MoesiState::Invalid;
            step.flushLocalDirty = cache::isDirty(local);
        } else if (cache::isDirty(local) ||
                   local == MoesiState::Exclusive) {
            // Keep an owned copy; the home stays responsible for the
            // dirty data.
            step.localAction = LocalAction::DowngradeOwned;
            step.localAfter = MoesiState::Owned;
        }
    }

    if (exclusive) {
        step.grant = Grant::Exclusive;
    } else if (!local_had_copy && dir == MoesiState::Invalid &&
               allocate) {
        // No other copy anywhere: grant Exclusive so the requester can
        // write without an upgrade (standard MOESI optimization).
        step.grant = Grant::Exclusive;
    } else {
        step.grant = Grant::Shared;
    }

    step.dirAfter = dir;
    if (allocate) {
        step.dirAfter = step.grant == Grant::Exclusive
                            ? MoesiState::Exclusive
                            : MoesiState::Shared;
    }
    return step;
}

HomeUpgradeStep
homeUpgrade(MoesiState local, MoesiState dir)
{
    HomeUpgradeStep step;
    // An RUPG is issued from Shared; directory Invalid means a
    // home-initiated SINV raced ahead and already consumed the
    // requester's copy — the full-line write payload lets the home
    // grant Modified regardless. A writable home copy beside a remote
    // sharer would already have been incoherent.
    step.legal = (dir == MoesiState::Shared ||
                  dir == MoesiState::Invalid) &&
                 !cache::canWrite(local);
    step.dirAfter = step.legal ? MoesiState::Modified : dir;
    step.localAction = local != MoesiState::Invalid
                           ? LocalAction::Invalidate
                           : LocalAction::Keep;
    return step;
}

HomeWritebackStep
homeWriteback(MoesiState dir)
{
    HomeWritebackStep step;
    if (cache::isDirty(dir) || dir == MoesiState::Exclusive) {
        step.legal = true;
        step.commitData = true;
        step.dirAfter = MoesiState::Invalid;
        return step;
    }
    // Directory Invalid: a home-initiated SINV raced with this
    // writeback; the home's own (later-serialized) write supersedes
    // the payload, which must be dropped, not committed.
    step.legal = dir == MoesiState::Invalid;
    step.commitData = false;
    step.dirAfter = dir;
    return step;
}

MoesiState
homeEvict()
{
    return MoesiState::Invalid;
}

SnoopKind
homeLocalReadSnoop(MoesiState dir)
{
    // Remote holds the freshest copy: snoop-forward it.
    if (cache::canWrite(dir) || dir == MoesiState::Owned)
        return SnoopKind::Forward;
    return SnoopKind::None;
}

SnoopKind
homeLocalWriteSnoop(MoesiState dir)
{
    return dir != MoesiState::Invalid ? SnoopKind::Invalidate
                                      : SnoopKind::None;
}

MoesiState
homeSnoopResponse(Opcode ack)
{
    return ack == Opcode::SACKS ? MoesiState::Shared
                                : MoesiState::Invalid;
}

MoesiState
remoteFillState(Grant g)
{
    return g == Grant::Exclusive ? MoesiState::Exclusive
                                 : MoesiState::Shared;
}

RemoteWriteStep
remoteWrite(MoesiState s)
{
    RemoteWriteStep step;
    step.hit = cache::canWrite(s);
    step.stateAfter = step.hit ? MoesiState::Modified : s;
    step.request = (s == MoesiState::Shared || s == MoesiState::Owned)
                       ? Opcode::RUPG
                       : Opcode::RLDX;
    return step;
}

Opcode
remoteEvict(MoesiState s)
{
    return cache::isDirty(s) ? Opcode::RWBD : Opcode::REVC;
}

RemoteSnoopStep
remoteSnoop(MoesiState s, Opcode snoop)
{
    RemoteSnoopStep step;
    if (snoop == Opcode::SFWD && s != MoesiState::Invalid) {
        step.hit = true;
        step.response = Opcode::SACKS;
        step.stateAfter = MoesiState::Shared;
        step.hasData = true;
        return step;
    }
    // SINV, or an SFWD that missed (concurrent eviction in flight):
    // the ack carries data iff the dropped copy was dirty.
    step.hit = s != MoesiState::Invalid;
    step.response = Opcode::SACKI;
    step.stateAfter = MoesiState::Invalid;
    step.hasData = cache::isDirty(s);
    return step;
}

} // namespace enzian::eci::proto
