/**
 * @file
 * ECI (Enzian Coherence Interface) message definitions.
 *
 * ECI is the MOESI-based inter-socket protocol the Enzian CPU and
 * FPGA speak (paper section 4.1). Messages travel on virtual circuits
 * (VCs); cache lines are 128 bytes. Besides coherent line transfers,
 * the protocol carries uncached small I/O reads/writes and
 * inter-processor interrupts.
 *
 * Opcode naming follows the conventions visible in the paper (RLDD =
 * read-load-data request from the L2, PEMD = data response carrying
 * permissions, see Figure 10) extended with a documented set for the
 * remaining transactions.
 */

#ifndef ENZIAN_ECI_ECI_MSG_HH
#define ENZIAN_ECI_ECI_MSG_HH

#include <array>
#include <cstdint>
#include <string>

#include "base/units.hh"
#include "cache/moesi.hh"
#include "mem/address_map.hh"

namespace enzian::eci {

/** Virtual circuit classes, each with independent flow control. */
enum class Vc : std::uint8_t {
    Request = 0,  ///< coherent requests (RLDD/RLDX/RUPG/REVC)
    Response,     ///< non-data responses (PACK/PNAK)
    Data,         ///< data-carrying responses and writebacks
    Snoop,        ///< home-initiated invalidations / forwards
    SnoopResp,    ///< snoop acknowledgements (may carry data)
    Io,           ///< uncached small I/O
    Ipi,          ///< inter-processor interrupts
    VcCount
};

/** Number of VCs. */
constexpr std::uint32_t vcCount = static_cast<std::uint32_t>(Vc::VcCount);

/** Readable VC name ("request", "data", ...). */
const char *toString(Vc vc);

/** ECI message opcodes. */
enum class Opcode : std::uint8_t {
    // Requests (requester -> home)
    RLDD = 0,  ///< read line, shared permission
    RLDX,      ///< read line, exclusive permission
    RLDI,      ///< read line uncached (no directory allocation)
    RSTT,      ///< store full line uncached (carries data)
    RUPG,      ///< upgrade S->M without data
    RWBD,      ///< write back dirty line (carries data)
    REVC,      ///< clean eviction notification
    // Responses (home -> requester)
    PEMD,      ///< data response carrying permission grant
    PACK,      ///< acknowledgement without data
    PNAK,      ///< negative ack; requester must retry
    // Snoops (home -> holder)
    SINV,      ///< invalidate the line
    SFWD,      ///< downgrade and forward data
    // Snoop responses (holder -> home)
    SACKI,     ///< invalidated; may carry dirty data
    SACKS,     ///< downgraded to shared; carries data
    // Uncached I/O
    IOBLD,     ///< I/O read, 1..8 bytes
    IOBST,     ///< I/O write, 1..8 bytes
    IOBACK,    ///< I/O completion (read data / write ack)
    // Interrupts
    IPI,       ///< inter-processor interrupt
    // Update-protocol extension (appended so the wire encodings of
    // the base opcodes stay stable)
    RUPD,      ///< full-line write-update for S->M (carries data);
               ///< used by update-based protocol tables instead of
               ///< RUPG, letting the home refresh shared copies
};

/** Readable opcode mnemonic. */
const char *toString(Opcode op);

/** The VC an opcode travels on. */
Vc vcOf(Opcode op);

/** True if the opcode carries a full cache line of payload. */
bool carriesLine(Opcode op);

/** Permission grant carried by a PEMD or an upgrade PACK. */
enum class Grant : std::uint8_t { Shared = 0, Exclusive, Owned };

/** One ECI message. */
struct EciMsg
{
    Opcode op = Opcode::RLDD;
    /** Source node of the message. */
    mem::NodeId src = mem::NodeId::Cpu;
    /** Destination node. */
    mem::NodeId dst = mem::NodeId::Fpga;
    /** Transaction id chosen by the requester; echoed in responses. */
    std::uint32_t tid = 0;
    /** Line-aligned address (coherent ops) or I/O address. */
    Addr addr = 0;
    /** Permission grant (PEMD, and PACK answering RUPG/RUPD). */
    Grant grant = Grant::Shared;
    /** I/O access size in bytes (IOBLD/IOBST/IOBACK), or IPI vector. */
    std::uint32_t ioLen = 0;
    /**
     * For SACKI: true iff the invalidated copy was dirty and the
     * message carries its data (a clean invalidation carries none and
     * the home must not write memory from it). Serialized in the aux
     * word of the wire header.
     */
    bool hasData = true;
    /** Inline I/O payload (IOBST / IOBACK for reads). */
    std::uint64_t ioData = 0;
    /** Cache line payload; valid iff carriesLine(op). */
    std::array<std::uint8_t, cache::lineSize> line{};

    /** VC this message travels on. */
    Vc vc() const { return vcOf(op); }

    /**
     * Wire size in bytes: a fixed header plus the line payload for
     * data-carrying messages. Matches the serialization format in
     * eci_serialize.hh.
     */
    std::uint32_t wireBytes() const;

    /** One-line human-readable rendering, e.g. for traces. */
    std::string toString() const;
};

/** Fixed wire header size of the serialization format. */
constexpr std::uint32_t headerBytes = 32;

} // namespace enzian::eci

#endif // ENZIAN_ECI_ECI_MSG_HH
