/**
 * @file
 * Uncached I/O space of one node.
 *
 * ECI "supports non-cached small I/O reads and writes, and
 * inter-processor interrupts" (paper section 4.1). Devices (the FPGA
 * shell's control registers, doorbells, the BMC mailbox) register
 * handler windows here; IOBLD/IOBST messages arriving at the home
 * agent are routed to the owning handler.
 */

#ifndef ENZIAN_ECI_IO_SPACE_HH
#define ENZIAN_ECI_IO_SPACE_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "base/units.hh"

namespace enzian::eci {

/** A device occupying a window of the uncached I/O space. */
struct IoDevice
{
    /** Read @p len (1..8) bytes at window-relative @p offset. */
    std::function<std::uint64_t(Addr offset, std::uint32_t len)> read;
    /** Write @p len (1..8) bytes at window-relative @p offset. */
    std::function<void(Addr offset, std::uint64_t data,
                       std::uint32_t len)>
        write;
};

/** Registry of I/O windows for one node. */
class IoSpace
{
  public:
    /**
     * Map a device at [base, base+size) in this node's I/O window
     * (window-relative addresses). Overlaps are a user error.
     */
    void map(const std::string &name, Addr base, std::uint64_t size,
             IoDevice dev);

    /** Perform an I/O read; returns 0 for unmapped addresses. */
    std::uint64_t read(Addr offset, std::uint32_t len) const;

    /** Perform an I/O write; writes to unmapped addresses are dropped. */
    void write(Addr offset, std::uint64_t data, std::uint32_t len);

    /** True if @p offset is covered by a mapped window. */
    bool mapped(Addr offset) const;

  private:
    struct Window
    {
        std::string name;
        std::uint64_t size;
        IoDevice dev;
    };

    /** Find the window containing @p offset, or nullptr. */
    const Window *find(Addr offset, Addr &base) const;

    std::map<Addr, Window> windows_; // keyed by base
};

} // namespace enzian::eci

#endif // ENZIAN_ECI_IO_SPACE_HH
