/**
 * @file
 * ECI message serialization.
 *
 * The paper (section 4.1) describes defining "our own serialization
 * format for the messages on ECI's various virtual circuits", used
 * both to store and analyze traces and as an interoperability
 * standard between tools (Wireshark dissector, simulators, FPGA
 * testbenches). This header defines that format for the
 * reproduction:
 *
 *   offset size  field
 *   0      4     magic 0x45434931 ("ECI1"), little-endian
 *   4      1     opcode
 *   5      1     src node
 *   6      1     dst node
 *   7      1     vc
 *   8      4     tid
 *   12     4     ioLen (I/O ops) / grant (PEMD) / 0
 *   16     8     address
 *   24     8     ioData (I/O ops) / 0
 *   32     128   line payload, present iff carriesLine(opcode)
 *
 * All multi-byte fields are little-endian.
 */

#ifndef ENZIAN_ECI_ECI_SERIALIZE_HH
#define ENZIAN_ECI_ECI_SERIALIZE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "eci/eci_msg.hh"

namespace enzian::eci {

/** Serialization magic number ("ECI1"). */
constexpr std::uint32_t serializeMagic = 0x45434931;

/** Serialize @p msg into its wire format. */
std::vector<std::uint8_t> serialize(const EciMsg &msg);

/** Append the serialization of @p msg to @p out. */
void serializeTo(const EciMsg &msg, std::vector<std::uint8_t> &out);

/**
 * Parse one message from @p data.
 *
 * @param data buffer starting at a message boundary
 * @param len bytes available
 * @param consumed set to the number of bytes the message occupied
 * @return the message, or nullopt if the buffer is malformed/truncated
 */
std::optional<EciMsg> deserialize(const std::uint8_t *data,
                                  std::size_t len, std::size_t &consumed);

} // namespace enzian::eci

#endif // ENZIAN_ECI_ECI_SERIALIZE_HH
