/**
 * @file
 * ECI remote agent: the requester-side protocol engine of one node.
 *
 * Issues coherent line reads/writes against memory homed at the peer
 * node, optionally caching the results in an attached local cache
 * (the CPU's L2 caches FPGA-homed memory this way; the FPGA usually
 * runs uncached, as none of the paper's use-cases implement a
 * significant FPGA cache). Also carries uncached I/O accesses and
 * IPIs, and answers snoops from the peer's home agent.
 *
 * The number of outstanding transactions is bounded (hardware MSHRs);
 * additional operations queue, which is what shapes the throughput of
 * small-transfer pipelining in Figure 6.
 */

#ifndef ENZIAN_ECI_REMOTE_AGENT_HH
#define ENZIAN_ECI_REMOTE_AGENT_HH

#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "cache/cache.hh"
#include "eci/eci_link.hh"
#include "eci/protocol_table.hh"
#include "mem/address_map.hh"

namespace enzian::eci {

class HomeAgent;

/** The requester-side protocol engine of one node. */
class RemoteAgent : public SimObject
{
  public:
    using Done = std::function<void(Tick)>;
    using IoDone = std::function<void(Tick, std::uint64_t)>;

    /** Configuration. */
    struct Config
    {
        /** Maximum in-flight coherent transactions (MSHRs). */
        std::uint32_t max_outstanding = 32;
        /** Local cache hit latency (ns) when a cache is attached. */
        double hit_latency_ns = 12.0;
    };

    RemoteAgent(std::string name, EventQueue &eq, mem::NodeId node,
                const mem::AddressMap &map, EciFabric &fabric,
                const Config &cfg);

    /** Construct with default configuration. */
    RemoteAgent(std::string name, EventQueue &eq, mem::NodeId node,
                const mem::AddressMap &map, EciFabric &fabric);

    /** Attach a local cache; cached ops allocate into it. */
    void attachCache(cache::Cache *c) { cache_ = c; }

    /** Select the coherence protocol table (default: shipped MOESI).
     *  Must match the home agents'; switch only while idle. */
    void setProtocol(const proto::ProtocolTable *table)
    {
        table_ = table;
    }

    /** The active protocol table. */
    const proto::ProtocolTable &protocol() const { return *table_; }

    /**
     * Turn on the loss-recovery path: every request keeps a resend
     * copy and a retry timer with exponential backoff; a lost request
     * or response is re-sent with the SAME tid (the home deduplicates
     * and replays its response). Off by default — the happy path pays
     * one null pointer per transaction.
     *
     * @param timeout_us initial retry timeout (should exceed the
     *        worst-case request round trip)
     * @param max_retries livelock guard: panic past this many retries
     */
    void enableRecovery(double timeout_us,
                        std::uint32_t max_retries = 16);

    /**
     * Coherent cached read of a peer-homed line. On a local hit the
     * callback runs after the hit latency; on a miss an RLDD fetches
     * and allocates the line.
     *
     * @param line line-aligned address homed at the peer
     * @param out optional 128-byte destination (may be nullptr)
     * @param done completion callback with the data-ready tick
     */
    void readLine(Addr line, std::uint8_t *out, Done done);

    /** Coherent cached full-line write (obtains exclusivity first). */
    void writeLine(Addr line, const std::uint8_t *data, Done done);

    /** Uncached coherent read (RLDI): no local allocation. */
    void readLineUncached(Addr line, std::uint8_t *out, Done done);

    /** Uncached coherent full-line write (RSTT). */
    void writeLineUncached(Addr line, const std::uint8_t *data,
                           Done done);

    /** Uncached I/O read in the peer's I/O window. */
    void ioRead(Addr offset, std::uint32_t len, IoDone done);

    /** Uncached I/O write in the peer's I/O window. */
    void ioWrite(Addr offset, std::uint64_t data, std::uint32_t len,
                 Done done);

    /** Fire an inter-processor interrupt at the peer. */
    void sendIpi(std::uint32_t vector);

    /**
     * Write back all dirty peer-homed lines and drop clean ones.
     * @param done runs when every writeback has been acknowledged.
     */
    void flushAll(Done done);

    /** Entry point for responses and snoops addressed to this node. */
    void handle(const EciMsg &msg);

    /** Currently in-flight coherent transactions. */
    std::size_t outstanding() const { return txns_.size(); }

    std::uint64_t hitsLocal() const { return hits_.value(); }
    std::uint64_t requestsSent() const { return reqs_.value(); }
    /** Requests re-sent after a timeout (recovery mode). */
    std::uint64_t retriesSent() const { return retries_.value(); }
    /** Responses for already-completed tids ignored (recovery mode). */
    std::uint64_t duplicateResponses() const { return dupRsps_.value(); }

  private:
    enum class Kind : std::uint8_t {
        CachedRead,
        CachedWriteMiss,
        Upgrade,
        UncachedRead,
        UncachedWrite,
        WriteBack,
        Evict,
        Io,
    };

    struct Txn
    {
        Kind kind;
        Addr line = 0;
        std::uint8_t *out = nullptr;
        std::vector<std::uint8_t> data; // write payload
        Done done;
        IoDone iodone;
        bool invalAfterFill = false; // SINV raced with our fill
        Tick start = 0;              // request issue tick
        Opcode op = Opcode::RLDD;    // request opcode (span label)
        /** Resend copy + retry timer; populated in recovery mode
         *  only, so the default path stays one pointer wide. */
        std::unique_ptr<EciMsg> resend;
        EventId retryEv = 0;
        std::uint32_t attempts = 0;
    };

    /** Launch or queue an operation needing an MSHR slot. */
    void submit(std::function<void()> op);
    /** Release one slot and launch a queued op if any. */
    void releaseSlot();

    /**
     * Same-line merging: a cached operation that would change a
     * line's state while another transaction for that line is in
     * flight is parked and re-executed when the transaction
     * completes (hardware MSHRs coalesce such requests; issuing two
     * upgrades for one line is a protocol violation).
     */
    bool lineBusy(Addr line) const { return busyLines_.contains(line); }
    void markLineBusy(Addr line) { busyLines_.insert(line); }
    void releaseLine(Addr line);
    void parkOnLine(Addr line, std::function<void()> retry);

    std::uint32_t newTid();
    void sendRequest(Opcode op, Addr line, Txn txn,
                     const std::uint8_t *payload = nullptr);
    /** (Re-)arm the retry timer of transaction @p tid. */
    void armRetry(std::uint32_t tid);
    void onRetryTimeout(std::uint32_t tid);
    /** Record RTT stats and the request span for a finished txn. */
    void recordCompletion(const Txn &txn);
    void completeFill(std::uint32_t tid, const EciMsg &msg);
    void handleSnoop(const EciMsg &msg);
    /** Dispose of a victim line evicted by a fill. */
    void handleEviction(cache::Eviction ev);

    mem::NodeId node_;
    mem::NodeId peer_;
    const mem::AddressMap &map_;
    EciFabric &fabric_;
    const proto::ProtocolTable *table_ = &proto::moesiProtocol();
    Config cfg_;
    cache::Cache *cache_ = nullptr;

    std::uint32_t nextTid_ = 1;
    std::unordered_map<std::uint32_t, Txn> txns_;
    std::deque<std::function<void()>> waiting_;
    std::unordered_set<Addr> busyLines_;
    std::unordered_map<Addr, std::deque<std::function<void()>>>
        lineWaiters_;

    /** Retry timeout; 0 = recovery off. */
    Tick retryTimeout_ = 0;
    std::uint32_t maxRetries_ = 16;

    Counter hits_;
    Counter reqs_;
    /** Requests NAKed by the home and retried. */
    Counter pnaks_;
    /** Timeout-driven retransmissions (recovery mode). */
    Counter retries_;
    /** Duplicate responses ignored (recovery mode). */
    Counter dupRsps_;
    /** Request-to-completion round trip, ns. */
    Accumulator rtt_;
    /** In-flight transactions (MSHR occupancy), sampled per issue. */
    Accumulator outstanding_;
};

/**
 * Route a delivered ECI message to the right engine of the receiving
 * node: requests, snoop responses, I/O requests and IPIs go to the
 * home agent; grants, acks, I/O completions and snoops go to the
 * remote agent. Install as the fabric receiver for the node.
 */
void dispatch(HomeAgent &home, RemoteAgent &remote, const EciMsg &msg);

} // namespace enzian::eci

#endif // ENZIAN_ECI_REMOTE_AGENT_HH
