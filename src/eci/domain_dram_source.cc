/**
 * @file
 * Cross-domain DRAM line source (see header).
 */

#include "eci/domain_dram_source.hh"

#include <algorithm>
#include <array>
#include <cstring>

#include "base/logging.hh"
#include "cache/moesi.hh"
#include "mem/memory_controller.hh"
#include "sim/domain_scheduler.hh"

namespace enzian::eci {

DomainDramSource::DomainDramSource(mem::MemoryController &mc,
                                   const mem::AddressMap &map,
                                   sim::DomainScheduler &sched,
                                   sim::TimingDomain &agent_domain,
                                   sim::TimingDomain &mem_domain,
                                   Tick hop)
    : mc_(mc), map_(map), agentq_(agent_domain.queue()),
      toMem_(sched.channel(agent_domain, mem_domain, hop)),
      toAgent_(sched.channel(mem_domain, agent_domain, hop)),
      hop_(hop)
{
    ENZIAN_ASSERT(hop_ > 0, "domain DRAM hop must be positive");
}

void
DomainDramSource::readLine(Tick when, Addr addr, std::uint8_t *out,
                           Done done)
{
    // The request departs the agent domain no earlier than its clock
    // (when is normally "now") and lands in the memory domain one hop
    // later; the completion makes the same trip back. Caller keeps
    // `out` alive until done runs, per the LineSource contract.
    const Tick arrive = std::max(when, agentq_.now()) + hop_;
    toMem_.push(arrive, [this, arrive, addr, out,
                         done = std::move(done)]() mutable {
        const Tick fin =
            mc_.read(arrive, map_.offsetInRegion(addr), out,
                     cache::lineSize)
                .done;
        toAgent_.push(fin + hop_,
                      [done = std::move(done), back = fin + hop_]() {
                          done(back);
                      });
    });
}

void
DomainDramSource::writeLine(Tick when, Addr addr,
                            const std::uint8_t *data, Done done)
{
    // Snapshot the line: the caller's buffer is only guaranteed for
    // the duration of this call, and the store happens an epoch later.
    std::array<std::uint8_t, cache::lineSize> line;
    std::memcpy(line.data(), data, cache::lineSize);
    const Tick arrive = std::max(when, agentq_.now()) + hop_;
    toMem_.push(arrive, [this, arrive, addr, line,
                         done = std::move(done)]() mutable {
        const Tick fin =
            mc_.write(arrive, map_.offsetInRegion(addr), line.data(),
                      cache::lineSize)
                .done;
        toAgent_.push(fin + hop_,
                      [done = std::move(done), back = fin + hop_]() {
                          done(back);
                      });
    });
}

} // namespace enzian::eci
