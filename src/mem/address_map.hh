/**
 * @file
 * Static physical address partition of the Enzian machine.
 *
 * Per the paper (section 4.1): "The system's physical address space is
 * statically partitioned between the CPU and FPGA." We model the CPU
 * node's DRAM at [0, cpuSize) and the FPGA node's DRAM at a fixed high
 * base, plus a small uncached I/O window per node for ECI I/O reads
 * and writes.
 */

#ifndef ENZIAN_MEM_ADDRESS_MAP_HH
#define ENZIAN_MEM_ADDRESS_MAP_HH

#include <cstdint>
#include <string>

#include "base/units.hh"

namespace enzian::mem {

/** Which NUMA node homes an address. */
enum class NodeId : std::uint8_t { Cpu = 0, Fpga = 1 };

/** Kind of region an address falls in. */
enum class RegionKind : std::uint8_t { CpuDram, FpgaDram, CpuIo, FpgaIo };

/** Readable name for a node. */
const char *toString(NodeId n);
/** Readable name for a region kind. */
const char *toString(RegionKind k);

/** Static partition of the physical address space. */
class AddressMap
{
  public:
    /**
     * @param cpu_dram_size bytes of CPU-homed DRAM (node 0)
     * @param fpga_dram_size bytes of FPGA-homed DRAM (node 1)
     */
    AddressMap(std::uint64_t cpu_dram_size, std::uint64_t fpga_dram_size);

    /** Fixed base of the FPGA-homed DRAM window (1 TiB). */
    static constexpr Addr fpgaDramBase = 1ull << 40;
    /** Fixed base of the CPU I/O window. */
    static constexpr Addr cpuIoBase = 1ull << 44;
    /** Fixed base of the FPGA I/O window. */
    static constexpr Addr fpgaIoBase = (1ull << 44) + (1ull << 32);
    /** Size of each I/O window. */
    static constexpr std::uint64_t ioWindowSize = 1ull << 32;

    std::uint64_t cpuDramSize() const { return cpuDramSize_; }
    std::uint64_t fpgaDramSize() const { return fpgaDramSize_; }

    /** True if @p addr falls in any mapped region. */
    bool contains(Addr addr) const;

    /** Region kind of @p addr; fatal() if unmapped. */
    RegionKind classify(Addr addr) const;

    /** Home node of @p addr; fatal() if unmapped. */
    NodeId homeOf(Addr addr) const;

    /** Offset of @p addr within its region's backing store. */
    std::uint64_t offsetInRegion(Addr addr) const;

  private:
    std::uint64_t cpuDramSize_;
    std::uint64_t fpgaDramSize_;
};

} // namespace enzian::mem

#endif // ENZIAN_MEM_ADDRESS_MAP_HH
