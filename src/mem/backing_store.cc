/**
 * @file
 * BackingStore implementation.
 */

#include "mem/backing_store.hh"

#include <algorithm>

#include "base/logging.hh"

namespace enzian::mem {

BackingStore::BackingStore(std::uint64_t size) : size_(size)
{
    if (size_ == 0)
        fatal("BackingStore of size 0");
}

void
BackingStore::checkRange(Addr addr, std::uint64_t len) const
{
    ENZIAN_ASSERT(addr + len <= size_ && addr + len >= addr,
                  "access [%llx, +%llu) beyond store size %llx",
                  static_cast<unsigned long long>(addr),
                  static_cast<unsigned long long>(len),
                  static_cast<unsigned long long>(size_));
}

const BackingStore::Page *
BackingStore::findPage(Addr addr) const
{
    auto it = pages_.find(addr / pageSize);
    return it == pages_.end() ? nullptr : it->second.get();
}

BackingStore::Page &
BackingStore::touchPage(Addr addr)
{
    auto &slot = pages_[addr / pageSize];
    if (!slot) {
        slot = std::make_unique<Page>();
        slot->fill(0);
    }
    return *slot;
}

void
BackingStore::read(Addr addr, void *dst, std::uint64_t len) const
{
    checkRange(addr, len);
    auto *out = static_cast<std::uint8_t *>(dst);
    while (len > 0) {
        const std::uint64_t off = addr % pageSize;
        const std::uint64_t chunk = std::min(len, pageSize - off);
        if (const Page *p = findPage(addr))
            std::memcpy(out, p->data() + off, chunk);
        else
            std::memset(out, 0, chunk);
        addr += chunk;
        out += chunk;
        len -= chunk;
    }
}

void
BackingStore::write(Addr addr, const void *src, std::uint64_t len)
{
    checkRange(addr, len);
    const auto *in = static_cast<const std::uint8_t *>(src);
    while (len > 0) {
        const std::uint64_t off = addr % pageSize;
        const std::uint64_t chunk = std::min(len, pageSize - off);
        std::memcpy(touchPage(addr).data() + off, in, chunk);
        addr += chunk;
        in += chunk;
        len -= chunk;
    }
}

void
BackingStore::fill(Addr addr, std::uint8_t byte, std::uint64_t len)
{
    checkRange(addr, len);
    while (len > 0) {
        const std::uint64_t off = addr % pageSize;
        const std::uint64_t chunk = std::min(len, pageSize - off);
        std::memset(touchPage(addr).data() + off, byte, chunk);
        addr += chunk;
        len -= chunk;
    }
}

} // namespace enzian::mem
