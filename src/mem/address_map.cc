/**
 * @file
 * AddressMap implementation.
 */

#include "mem/address_map.hh"

#include "base/logging.hh"

namespace enzian::mem {

const char *
toString(NodeId n)
{
    switch (n) {
      case NodeId::Cpu:
        return "cpu";
      case NodeId::Fpga:
        return "fpga";
    }
    return "?";
}

const char *
toString(RegionKind k)
{
    switch (k) {
      case RegionKind::CpuDram:
        return "cpu-dram";
      case RegionKind::FpgaDram:
        return "fpga-dram";
      case RegionKind::CpuIo:
        return "cpu-io";
      case RegionKind::FpgaIo:
        return "fpga-io";
    }
    return "?";
}

AddressMap::AddressMap(std::uint64_t cpu_dram_size,
                       std::uint64_t fpga_dram_size)
    : cpuDramSize_(cpu_dram_size), fpgaDramSize_(fpga_dram_size)
{
    if (cpuDramSize_ > fpgaDramBase)
        fatal("CPU DRAM size overlaps FPGA DRAM window");
    if (fpgaDramSize_ > cpuIoBase - fpgaDramBase)
        fatal("FPGA DRAM size overlaps I/O windows");
}

bool
AddressMap::contains(Addr addr) const
{
    if (addr < cpuDramSize_)
        return true;
    if (addr >= fpgaDramBase && addr < fpgaDramBase + fpgaDramSize_)
        return true;
    if (addr >= cpuIoBase && addr < cpuIoBase + ioWindowSize)
        return true;
    if (addr >= fpgaIoBase && addr < fpgaIoBase + ioWindowSize)
        return true;
    return false;
}

RegionKind
AddressMap::classify(Addr addr) const
{
    if (addr < cpuDramSize_)
        return RegionKind::CpuDram;
    if (addr >= fpgaDramBase && addr < fpgaDramBase + fpgaDramSize_)
        return RegionKind::FpgaDram;
    if (addr >= cpuIoBase && addr < cpuIoBase + ioWindowSize)
        return RegionKind::CpuIo;
    if (addr >= fpgaIoBase && addr < fpgaIoBase + ioWindowSize)
        return RegionKind::FpgaIo;
    fatal("address %llx is unmapped",
          static_cast<unsigned long long>(addr));
}

NodeId
AddressMap::homeOf(Addr addr) const
{
    switch (classify(addr)) {
      case RegionKind::CpuDram:
      case RegionKind::CpuIo:
        return NodeId::Cpu;
      case RegionKind::FpgaDram:
      case RegionKind::FpgaIo:
        return NodeId::Fpga;
    }
    panic("unreachable");
}

std::uint64_t
AddressMap::offsetInRegion(Addr addr) const
{
    switch (classify(addr)) {
      case RegionKind::CpuDram:
        return addr;
      case RegionKind::FpgaDram:
        return addr - fpgaDramBase;
      case RegionKind::CpuIo:
        return addr - cpuIoBase;
      case RegionKind::FpgaIo:
        return addr - fpgaIoBase;
    }
    panic("unreachable");
}

} // namespace enzian::mem
