/**
 * @file
 * DRAM channel timing implementation.
 */

#include "mem/dram_channel.hh"

#include <algorithm>

#include "base/logging.hh"
#include "base/units.hh"
#include "obs/span_tracer.hh"

namespace enzian::mem {

DramChannel::DramChannel(std::string name, EventQueue &eq,
                         const Config &cfg)
    : SimObject(std::move(name), eq), cfg_(cfg)
{
    // DDR transfers twice per clock; MT/s already counts transfers.
    peakBw_ = cfg_.mega_transfers * 1e6 * cfg_.bus_bytes;
    effBw_ = peakBw_ * cfg_.efficiency;
    accessLatency_ = units::ns(cfg_.access_latency_ns);
    if (effBw_ <= 0)
        fatal("DRAM channel '%s': non-positive bandwidth",
              SimObject::name().c_str());
    refreshEv_.init(eq, [this]() { onRefresh(); }, "dram-refresh");
    stats().addCounter("requests", &reqs_);
    stats().addCounter("bytes", &bytes_);
    stats().addCounter("refreshes", &refreshes_);
    stats().addCounter("ecc_correctable", &eccCorrectable_);
    stats().addCounter("ecc_uncorrectable", &eccUncorrectable_);
    stats().addCounter("ecc_scrubs", &eccScrubs_);
    stats().addCounter("ecc_retries", &eccRetries_);
    stats().addAccumulator("latency_ns", &latency_);
    stats().addAccumulator("queue_wait_ns", &queueWait_);
    stats().addHistogram("latency_hist_ns", &latencyHist_);
}

Tick
DramChannel::access(Tick when, std::uint64_t bytes)
{
    reqs_.inc();
    bytes_.inc(bytes);
    // Command is accepted when the bus frees; data streams after the
    // access latency.
    const Tick start = std::max(when, busFreeAt_);
    const Tick stream = units::transferTicks(bytes, effBw_);
    busFreeAt_ = start + stream;
    Tick done = start + accessLatency_ + stream;
    const double lat_ns = units::toNanos(done - when);
    latency_.sample(lat_ns);
    latencyHist_.sample(lat_ns);
    queueWait_.sample(units::toNanos(start - when));
    ENZIAN_SPAN(name(), "burst", start, done);
    if (eccRng_)
        done = applyEcc(done, bytes);
    return done;
}

void
DramChannel::armEcc(Rng *rng, const EccConfig &ecc)
{
    eccRng_ = rng;
    ecc_ = ecc;
}

Tick
DramChannel::applyEcc(Tick done, std::uint64_t bytes)
{
    // One draw per access keeps the stream independent of burst size.
    const double p = eccRng_->uniform();
    if (p < ecc_.uncorrectable_prob) {
        // Uncorrectable: the controller replays the whole burst after
        // a recovery stall. The retry succeeds (the model injects
        // timing, never silent corruption).
        eccUncorrectable_.inc();
        eccRetries_.inc();
        const Tick restart = busFreeAt_ + ecc_.retry_penalty;
        const Tick stream = units::transferTicks(bytes, effBw_);
        busFreeAt_ = restart + stream;
        done = restart + accessLatency_ + stream;
        ENZIAN_SPAN(name(), "ecc-retry", restart, done);
        return done;
    }
    if (p < ecc_.uncorrectable_prob + ecc_.correctable_prob) {
        // Correctable flip: data is fixed in flight; a demand scrub
        // writes the corrected line back, briefly extending the bus.
        eccCorrectable_.inc();
        eccScrubs_.inc();
        busFreeAt_ += ecc_.scrub_penalty;
        done += ecc_.scrub_penalty;
        ENZIAN_SPAN(name(), "ecc-scrub", done - ecc_.scrub_penalty,
                    done);
    }
    return done;
}

void
DramChannel::enableRefresh(Tick until, Tick period, Tick penalty)
{
    if (period == 0)
        fatal("DRAM channel '%s': zero refresh period",
              name().c_str());
    refreshPeriod_ = period;
    refreshPenalty_ = penalty;
    refreshUntil_ = until;
    const Tick first = now() + period;
    if (first <= until)
        refreshEv_.reschedule(first);
}

void
DramChannel::onRefresh()
{
    // tRFC: all banks are busy refreshing, so the data bus extends
    // past any in-flight burst by the refresh penalty.
    refreshes_.inc();
    busFreeAt_ = std::max(busFreeAt_, now()) + refreshPenalty_;
    const Tick next = now() + refreshPeriod_;
    if (next <= refreshUntil_)
        refreshEv_.schedule(next);
}

DramSystem::DramSystem(std::string name, EventQueue &eq,
                       std::uint32_t channels,
                       const DramChannel::Config &cfg)
{
    if (channels == 0)
        fatal("DramSystem with zero channels");
    for (std::uint32_t i = 0; i < channels; ++i) {
        channels_.push_back(std::make_unique<DramChannel>(
            name + ".ch" + std::to_string(i), eq, cfg));
    }
}

Tick
DramSystem::access(Tick when, std::uint64_t bytes)
{
    // A large burst is striped across all channels; a cache-line-sized
    // access lands on one channel (round-robin stands in for the
    // address interleave).
    const auto n = static_cast<std::uint32_t>(channels_.size());
    if (bytes <= 128 || n == 1) {
        Tick done = channels_[next_]->access(when, bytes);
        next_ = (next_ + 1) % n;
        return done;
    }
    const std::uint64_t per = (bytes + n - 1) / n;
    Tick done = when;
    std::uint64_t left = bytes;
    for (std::uint32_t i = 0; i < n && left > 0; ++i) {
        const std::uint64_t chunk = std::min(per, left);
        done = std::max(done, channels_[i]->access(when, chunk));
        left -= chunk;
    }
    return done;
}

double
DramSystem::effectiveBandwidth() const
{
    double sum = 0;
    for (const auto &c : channels_)
        sum += c->effectiveBandwidth();
    return sum;
}

} // namespace enzian::mem
