/**
 * @file
 * MemoryController implementation.
 */

#include "mem/memory_controller.hh"

#include <algorithm>

namespace enzian::mem {

MemoryController::MemoryController(std::string name, EventQueue &eq,
                                   std::uint64_t size,
                                   std::uint32_t channels,
                                   const DramChannel::Config &cfg)
    : SimObject(std::move(name), eq), store_(size),
      dram_(SimObject::name() + ".dram", eq, channels, cfg)
{
    stats().addCounter("strided_ops", &stridedOps_);
    stats().addCounter("strided_rows", &stridedRows_);
}

AccessResult
MemoryController::read(Tick when, Addr offset, void *dst,
                       std::uint64_t len)
{
    store_.read(offset, dst, len);
    return AccessResult{dram_.access(when, len)};
}

AccessResult
MemoryController::write(Tick when, Addr offset, const void *src,
                        std::uint64_t len)
{
    store_.write(offset, src, len);
    return AccessResult{dram_.access(when, len)};
}

AccessResult
MemoryController::readStrided(Tick when, Addr offset,
                              std::uint64_t row_bytes,
                              std::uint32_t rows, std::uint64_t pitch,
                              void *dst)
{
    auto *out = static_cast<std::uint8_t *>(dst);
    Tick done = when;
    for (std::uint32_t r = 0; r < rows; ++r) {
        store_.read(offset + r * pitch, out + r * row_bytes,
                    row_bytes);
        done = std::max(done, dram_.access(when, row_bytes));
    }
    stridedOps_.inc();
    stridedRows_.inc(rows);
    return AccessResult{done};
}

AccessResult
MemoryController::writeStrided(Tick when, Addr offset,
                               std::uint64_t row_bytes,
                               std::uint32_t rows,
                               std::uint64_t pitch, const void *src)
{
    const auto *in = static_cast<const std::uint8_t *>(src);
    Tick done = when;
    for (std::uint32_t r = 0; r < rows; ++r) {
        store_.write(offset + r * pitch, in + r * row_bytes,
                     row_bytes);
        done = std::max(done, dram_.access(when, row_bytes));
    }
    stridedOps_.inc();
    stridedRows_.inc(rows);
    return AccessResult{done};
}

} // namespace enzian::mem
