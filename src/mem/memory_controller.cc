/**
 * @file
 * MemoryController implementation.
 */

#include "mem/memory_controller.hh"

namespace enzian::mem {

MemoryController::MemoryController(std::string name, EventQueue &eq,
                                   std::uint64_t size,
                                   std::uint32_t channels,
                                   const DramChannel::Config &cfg)
    : SimObject(std::move(name), eq), store_(size),
      dram_(SimObject::name() + ".dram", eq, channels, cfg)
{
}

AccessResult
MemoryController::read(Tick when, Addr offset, void *dst,
                       std::uint64_t len)
{
    store_.read(offset, dst, len);
    return AccessResult{dram_.access(when, len)};
}

AccessResult
MemoryController::write(Tick when, Addr offset, const void *src,
                        std::uint64_t len)
{
    store_.write(offset, src, len);
    return AccessResult{dram_.access(when, len)};
}

} // namespace enzian::mem
