/**
 * @file
 * Sparse functional memory.
 *
 * BackingStore holds the actual bytes of the simulated machine's
 * DRAM. It is sparse (4 KiB pages allocated on first touch) so a
 * simulated 512 GiB FPGA-side memory costs only what is touched.
 * Timing is handled separately by DramChannel / MemoryController;
 * this class is purely functional.
 */

#ifndef ENZIAN_MEM_BACKING_STORE_HH
#define ENZIAN_MEM_BACKING_STORE_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "base/units.hh"

namespace enzian::mem {

/** Sparse byte-addressable memory with on-demand page allocation. */
class BackingStore
{
  public:
    static constexpr std::uint64_t pageSize = 4096;

    /**
     * @param size total addressable bytes (accesses beyond it panic)
     */
    explicit BackingStore(std::uint64_t size);

    std::uint64_t size() const { return size_; }

    /** Copy @p len bytes at @p addr into @p dst. Untouched pages read 0. */
    void read(Addr addr, void *dst, std::uint64_t len) const;

    /** Copy @p len bytes from @p src into memory at @p addr. */
    void write(Addr addr, const void *src, std::uint64_t len);

    /** Convenience typed load (little-endian host layout). */
    template <typename T>
    T
    load(Addr addr) const
    {
        T v{};
        read(addr, &v, sizeof(T));
        return v;
    }

    /** Convenience typed store. */
    template <typename T>
    void
    store(Addr addr, const T &v)
    {
        write(addr, &v, sizeof(T));
    }

    /** Fill [addr, addr+len) with @p byte. */
    void fill(Addr addr, std::uint8_t byte, std::uint64_t len);

    /** Number of pages actually allocated (for tests / footprint). */
    std::size_t pagesAllocated() const { return pages_.size(); }

  private:
    using Page = std::array<std::uint8_t, pageSize>;

    /** Page for addr, or nullptr if never written. */
    const Page *findPage(Addr addr) const;
    /** Page for addr, allocating (zeroed) if needed. */
    Page &touchPage(Addr addr);

    void checkRange(Addr addr, std::uint64_t len) const;

    std::uint64_t size_;
    std::unordered_map<std::uint64_t, std::unique_ptr<Page>> pages_;
};

} // namespace enzian::mem

#endif // ENZIAN_MEM_BACKING_STORE_HH
