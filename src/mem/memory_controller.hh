/**
 * @file
 * Per-node memory controller: couples the functional BackingStore of
 * a node's DRAM with its DramSystem timing. Both the ECI home agent
 * and local caches perform accesses through this interface.
 */

#ifndef ENZIAN_MEM_MEMORY_CONTROLLER_HH
#define ENZIAN_MEM_MEMORY_CONTROLLER_HH

#include <memory>

#include "mem/address_map.hh"
#include "mem/backing_store.hh"
#include "mem/dram_channel.hh"
#include "sim/sim_object.hh"

namespace enzian::mem {

/** Result of a timed memory access. */
struct AccessResult
{
    /** Tick at which the data is available / the write is durable. */
    Tick done;
};

/** A node-local memory controller (functional + timing). */
class MemoryController : public SimObject
{
  public:
    /**
     * @param name hierarchical name
     * @param eq event queue
     * @param size bytes of DRAM behind this controller
     * @param channels number of DDR4 channels
     * @param cfg per-channel timing configuration
     */
    MemoryController(std::string name, EventQueue &eq, std::uint64_t size,
                     std::uint32_t channels,
                     const DramChannel::Config &cfg);

    /** Timed read: copies into @p dst and returns completion tick. */
    AccessResult read(Tick when, Addr offset, void *dst,
                      std::uint64_t len);

    /** Timed write: copies from @p src and returns completion tick. */
    AccessResult write(Tick when, Addr offset, const void *src,
                       std::uint64_t len);

    /**
     * Timed strided (2D) read: @p rows bursts of @p row_bytes whose
     * start addresses are @p pitch apart, gathered densely into
     * @p dst. Each row is its own DRAM access, so a tile walk with a
     * large pitch pays the per-access latency once per row — the
     * cost a blocked-transpose engine's column reads incur. All rows
     * issue at @p when (the address generator runs ahead); the
     * channels' bus occupancy serializes them.
     */
    AccessResult readStrided(Tick when, Addr offset,
                             std::uint64_t row_bytes,
                             std::uint32_t rows, std::uint64_t pitch,
                             void *dst);

    /** Timed strided (2D) write, scattering @p src over the rows. */
    AccessResult writeStrided(Tick when, Addr offset,
                              std::uint64_t row_bytes,
                              std::uint32_t rows, std::uint64_t pitch,
                              const void *src);

    /** Rows moved by strided accesses (stat mirror). */
    std::uint64_t stridedRows() const { return stridedRows_.value(); }

    /** Untimed (functional) access for loaders and checkers. */
    BackingStore &store() { return store_; }
    const BackingStore &store() const { return store_; }

    DramSystem &dram() { return dram_; }

  private:
    BackingStore store_;
    DramSystem dram_;
    Counter stridedOps_;
    Counter stridedRows_;
};

} // namespace enzian::mem

#endif // ENZIAN_MEM_MEMORY_CONTROLLER_HH
