/**
 * @file
 * Per-node memory controller: couples the functional BackingStore of
 * a node's DRAM with its DramSystem timing. Both the ECI home agent
 * and local caches perform accesses through this interface.
 */

#ifndef ENZIAN_MEM_MEMORY_CONTROLLER_HH
#define ENZIAN_MEM_MEMORY_CONTROLLER_HH

#include <memory>

#include "mem/address_map.hh"
#include "mem/backing_store.hh"
#include "mem/dram_channel.hh"
#include "sim/sim_object.hh"

namespace enzian::mem {

/** Result of a timed memory access. */
struct AccessResult
{
    /** Tick at which the data is available / the write is durable. */
    Tick done;
};

/** A node-local memory controller (functional + timing). */
class MemoryController : public SimObject
{
  public:
    /**
     * @param name hierarchical name
     * @param eq event queue
     * @param size bytes of DRAM behind this controller
     * @param channels number of DDR4 channels
     * @param cfg per-channel timing configuration
     */
    MemoryController(std::string name, EventQueue &eq, std::uint64_t size,
                     std::uint32_t channels,
                     const DramChannel::Config &cfg);

    /** Timed read: copies into @p dst and returns completion tick. */
    AccessResult read(Tick when, Addr offset, void *dst,
                      std::uint64_t len);

    /** Timed write: copies from @p src and returns completion tick. */
    AccessResult write(Tick when, Addr offset, const void *src,
                       std::uint64_t len);

    /** Untimed (functional) access for loaders and checkers. */
    BackingStore &store() { return store_; }
    const BackingStore &store() const { return store_; }

    DramSystem &dram() { return dram_; }

  private:
    BackingStore store_;
    DramSystem dram_;
};

} // namespace enzian::mem

#endif // ENZIAN_MEM_MEMORY_CONTROLLER_HH
