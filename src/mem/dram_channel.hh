/**
 * @file
 * DDR4 channel timing model.
 *
 * A bandwidth/occupancy model: each channel has a fixed access latency
 * (row activation + CAS, folded into one constant) and a data-bus
 * occupancy proportional to the burst size. Back-to-back requests
 * queue behind the bus. This captures what the evaluation needs:
 * per-channel bandwidth ceilings and burst-size-dependent latency
 * (e.g. the 1 KiB bursts the 4bpp Fig-11 configuration performs).
 */

#ifndef ENZIAN_MEM_DRAM_CHANNEL_HH
#define ENZIAN_MEM_DRAM_CHANNEL_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "base/stats.hh"
#include "base/units.hh"
#include "sim/sim_object.hh"

namespace enzian::mem {

/** Timing model for one DDR4 channel. */
class DramChannel : public SimObject
{
  public:
    /** Static configuration of a channel. */
    struct Config
    {
        /** Transfer rate in MT/s (e.g. 2133, 2400). */
        double mega_transfers = 2400;
        /** Bus width in bytes (DDR4 DIMM: 8). */
        std::uint32_t bus_bytes = 8;
        /** Closed-page access latency (ns), tRCD+tCAS+ctrl. */
        double access_latency_ns = 45.0;
        /** Fraction of peak bandwidth achievable (bank conflicts etc). */
        double efficiency = 0.80;
    };

    DramChannel(std::string name, EventQueue &eq, const Config &cfg);

    /**
     * Timing for a burst of @p bytes starting at @p when: the channel
     * is busy until the data has streamed out; the returned tick is
     * when the last byte is available.
     */
    Tick access(Tick when, std::uint64_t bytes);

    /**
     * Opt-in refresh modeling: every @p period (DDR4 tREFI, 7.8 us)
     * the channel blocks the data bus for @p penalty (tRFC) until
     * @p until. Bounded, not self-perpetuating, so EventQueue::run()
     * still drains. Driven by one reusable self-rescheduling event.
     */
    void enableRefresh(Tick until,
                       Tick period = units::us(7.8),
                       Tick penalty = units::ns(350.0));

    std::uint64_t refreshes() const { return refreshes_.value(); }

    /** Effective sustainable bandwidth in bytes/s. */
    double effectiveBandwidth() const { return effBw_; }

    /** Peak (pin) bandwidth in bytes/s. */
    double peakBandwidth() const { return peakBw_; }

    std::uint64_t bytesServed() const { return bytes_.value(); }
    std::uint64_t requests() const { return reqs_.value(); }

    /** Request-to-last-byte latency per access, in ns. */
    const Accumulator &latency() const { return latency_; }
    /** Time spent queued behind the data bus, in ns. */
    const Accumulator &queueWait() const { return queueWait_; }

  private:
    void onRefresh();

    Config cfg_;
    double peakBw_;
    double effBw_;
    Tick accessLatency_;
    Tick busFreeAt_ = 0;
    /** Refresh parameters (active when refreshUntil_ > 0). */
    Tick refreshPeriod_ = 0;
    Tick refreshPenalty_ = 0;
    Tick refreshUntil_ = 0;
    Event refreshEv_;
    Counter reqs_;
    Counter bytes_;
    Counter refreshes_;
    Accumulator latency_;
    Accumulator queueWait_;
    Histogram latencyHist_{0.0, 1000.0, 50};
};

/**
 * A group of interleaved channels behaving as one memory system, as
 * both Enzian nodes have four DDR4 channels. Requests are spread
 * round-robin (the cache-line interleave of a real controller).
 */
class DramSystem
{
  public:
    DramSystem(std::string name, EventQueue &eq, std::uint32_t channels,
               const DramChannel::Config &cfg);

    /** Timing for @p bytes starting at @p when, striped over channels. */
    Tick access(Tick when, std::uint64_t bytes);

    /** Aggregate effective bandwidth (bytes/s). */
    double effectiveBandwidth() const;

    std::uint32_t channelCount() const
    {
        return static_cast<std::uint32_t>(channels_.size());
    }

    DramChannel &channel(std::uint32_t i) { return *channels_[i]; }

  private:
    std::vector<std::unique_ptr<DramChannel>> channels_;
    std::uint32_t next_ = 0;
};

} // namespace enzian::mem

#endif // ENZIAN_MEM_DRAM_CHANNEL_HH
