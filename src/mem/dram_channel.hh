/**
 * @file
 * DDR4 channel timing model.
 *
 * A bandwidth/occupancy model: each channel has a fixed access latency
 * (row activation + CAS, folded into one constant) and a data-bus
 * occupancy proportional to the burst size. Back-to-back requests
 * queue behind the bus. This captures what the evaluation needs:
 * per-channel bandwidth ceilings and burst-size-dependent latency
 * (e.g. the 1 KiB bursts the 4bpp Fig-11 configuration performs).
 */

#ifndef ENZIAN_MEM_DRAM_CHANNEL_HH
#define ENZIAN_MEM_DRAM_CHANNEL_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "base/rng.hh"
#include "base/stats.hh"
#include "base/units.hh"
#include "sim/sim_object.hh"

namespace enzian::mem {

/** Timing model for one DDR4 channel. */
class DramChannel : public SimObject
{
  public:
    /** Static configuration of a channel. */
    struct Config
    {
        /** Transfer rate in MT/s (e.g. 2133, 2400). */
        double mega_transfers = 2400;
        /** Bus width in bytes (DDR4 DIMM: 8). */
        std::uint32_t bus_bytes = 8;
        /** Closed-page access latency (ns), tRCD+tCAS+ctrl. */
        double access_latency_ns = 45.0;
        /** Fraction of peak bandwidth achievable (bank conflicts etc). */
        double efficiency = 0.80;
    };

    /** ECC fault-injection parameters (all off by default). */
    struct EccConfig
    {
        /** Per-access probability of a correctable flip. */
        double correctable_prob = 0.0;
        /** Per-access probability of an uncorrectable error. */
        double uncorrectable_prob = 0.0;
        /** Extra bus time to scrub after a corrected flip. */
        Tick scrub_penalty = units::ns(120.0);
        /** Bus stall before the retried burst of an uncorrectable. */
        Tick retry_penalty = units::ns(400.0);
    };

    DramChannel(std::string name, EventQueue &eq, const Config &cfg);

    /**
     * Timing for a burst of @p bytes starting at @p when: the channel
     * is busy until the data has streamed out; the returned tick is
     * when the last byte is available.
     */
    Tick access(Tick when, std::uint64_t bytes);

    /**
     * Arm ECC error injection drawing from @p rng (nullptr disarms).
     * A correctable error costs a scrub penalty; an uncorrectable one
     * forces a full retried burst. Timing-only: the retry always
     * succeeds, so data integrity is preserved — the faults show up
     * as latency tails and in the error accounting.
     */
    void armEcc(Rng *rng, const EccConfig &ecc);

    std::uint64_t eccCorrectable() const
    {
        return eccCorrectable_.value();
    }
    std::uint64_t eccUncorrectable() const
    {
        return eccUncorrectable_.value();
    }
    std::uint64_t eccScrubs() const { return eccScrubs_.value(); }
    std::uint64_t eccRetries() const { return eccRetries_.value(); }

    /**
     * Opt-in refresh modeling: every @p period (DDR4 tREFI, 7.8 us)
     * the channel blocks the data bus for @p penalty (tRFC) until
     * @p until. Bounded, not self-perpetuating, so EventQueue::run()
     * still drains. Driven by one reusable self-rescheduling event.
     */
    void enableRefresh(Tick until,
                       Tick period = units::us(7.8),
                       Tick penalty = units::ns(350.0));

    std::uint64_t refreshes() const { return refreshes_.value(); }

    /** Effective sustainable bandwidth in bytes/s. */
    double effectiveBandwidth() const { return effBw_; }

    /** Peak (pin) bandwidth in bytes/s. */
    double peakBandwidth() const { return peakBw_; }

    std::uint64_t bytesServed() const { return bytes_.value(); }
    std::uint64_t requests() const { return reqs_.value(); }

    /** Request-to-last-byte latency per access, in ns. */
    const Accumulator &latency() const { return latency_; }
    /** Time spent queued behind the data bus, in ns. */
    const Accumulator &queueWait() const { return queueWait_; }

  private:
    void onRefresh();
    Tick applyEcc(Tick done, std::uint64_t bytes);

    Config cfg_;
    double peakBw_;
    double effBw_;
    Tick accessLatency_;
    Tick busFreeAt_ = 0;
    /** Refresh parameters (active when refreshUntil_ > 0). */
    Tick refreshPeriod_ = 0;
    Tick refreshPenalty_ = 0;
    Tick refreshUntil_ = 0;
    Event refreshEv_;
    /** ECC injection stream; nullptr = no injection (the default). */
    Rng *eccRng_ = nullptr;
    EccConfig ecc_;
    Counter reqs_;
    Counter bytes_;
    Counter refreshes_;
    Counter eccCorrectable_;
    Counter eccUncorrectable_;
    Counter eccScrubs_;
    Counter eccRetries_;
    Accumulator latency_;
    Accumulator queueWait_;
    Histogram latencyHist_{0.0, 1000.0, 50};
};

/**
 * A group of interleaved channels behaving as one memory system, as
 * both Enzian nodes have four DDR4 channels. Requests are spread
 * round-robin (the cache-line interleave of a real controller).
 */
class DramSystem
{
  public:
    DramSystem(std::string name, EventQueue &eq, std::uint32_t channels,
               const DramChannel::Config &cfg);

    /** Timing for @p bytes starting at @p when, striped over channels. */
    Tick access(Tick when, std::uint64_t bytes);

    /** Aggregate effective bandwidth (bytes/s). */
    double effectiveBandwidth() const;

    std::uint32_t channelCount() const
    {
        return static_cast<std::uint32_t>(channels_.size());
    }

    DramChannel &channel(std::uint32_t i) { return *channels_[i]; }

  private:
    std::vector<std::unique_ptr<DramChannel>> channels_;
    std::uint32_t next_ = 0;
};

} // namespace enzian::mem

#endif // ENZIAN_MEM_DRAM_CHANNEL_HH
