/**
 * @file
 * Transaction span tracing with Chrome-trace / Perfetto JSON output.
 *
 * Components record spans (an interval of sim time on a named track),
 * instants, and counter samples; the tracer renders them in the Chrome
 * trace-event format (load in chrome://tracing or ui.perfetto.dev).
 * Tracks map to Chrome threads via thread_name metadata, so each
 * component — an ECI link direction, a DRAM channel, a vFPGA slot, a
 * TCP stack — gets its own swim lane. Timestamps are sim ticks
 * converted to the format's microseconds.
 *
 * Cost discipline: tracing is off by default, every recording call is
 * behind a one-load enabled() check (the ENZIAN_SPAN_* macros inline
 * it), and building with -DENZIAN_NO_SPANS compiles the macros out
 * entirely for instrumentation-free binaries.
 *
 * Thread safety: recording calls take an internal mutex so domain
 * worker threads (sim::DomainScheduler) may trace concurrently; the
 * enabled flag is atomic so the hot-path check stays lock-free.
 * Readers (writeChromeJson, counts) are only safe while no simulation
 * is running, which is how every caller uses them.
 */

#ifndef ENZIAN_OBS_SPAN_TRACER_HH
#define ENZIAN_OBS_SPAN_TRACER_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "base/units.hh"

namespace enzian::obs {

/** Records timed spans and writes Chrome trace JSON. */
class SpanTracer
{
  public:
    SpanTracer() = default;

    SpanTracer(const SpanTracer &) = delete;
    SpanTracer &operator=(const SpanTracer &) = delete;

    /** The process-wide tracer the instrumentation macros target. */
    static SpanTracer &global();

    /** Turn recording on/off (off by default). */
    void setEnabled(bool on)
    {
        enabled_.store(on, std::memory_order_relaxed);
    }
    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /**
     * Cap on stored events; recording beyond it drops events (counted
     * in droppedEvents()) instead of growing without bound.
     */
    void setEventLimit(std::size_t limit) { limit_ = limit; }

    /** Record a complete span [start, end] on @p track. */
    void complete(std::string_view track, std::string_view name,
                  Tick start, Tick end);

    /** Record an instantaneous event. */
    void instant(std::string_view track, std::string_view name,
                 Tick at);

    /** Record a counter-track sample (renders as a filled graph). */
    void counter(std::string_view track, std::string_view name,
                 Tick at, double value);

    /**
     * Flow events: stitch spans on different tracks into one causal
     * arrow chain keyed by @p id (a request's flow id). Perfetto
     * binds each event to the enclosing slice on its track, so emit
     * them at a tick covered by the span they annotate. Ids of 0 are
     * legal here but the ENZIAN_FLOW_* macros filter them out as
     * "request not traced".
     */
    void flowBegin(std::string_view track, std::string_view name,
                   Tick at, std::uint64_t id);
    /** An intermediate hop of flow @p id. */
    void flowStep(std::string_view track, std::string_view name,
                  Tick at, std::uint64_t id);
    /** The terminal hop of flow @p id. */
    void flowEnd(std::string_view track, std::string_view name,
                 Tick at, std::uint64_t id);

    std::size_t eventCount() const { return events_.size(); }
    std::size_t trackCount() const { return tracks_.size(); }
    std::uint64_t droppedEvents() const { return dropped_; }

    /** Track names in creation order. */
    const std::vector<std::string> &tracks() const { return tracks_; }

    /** Drop all recorded events and tracks. */
    void clear();

    /**
     * Write the Chrome trace-event JSON document: a traceEvents array
     * of "X"/"i"/"C" events plus thread_name metadata naming each
     * track, all under pid 1.
     */
    void writeChromeJson(std::ostream &os) const;

    /** writeChromeJson() to @p path; fatal() on I/O errors. */
    void save(const std::string &path) const;

  private:
    struct Event
    {
        std::uint32_t track;
        char ph;        // 'X' complete, 'i' instant, 'C' counter,
                        // 's'/'t'/'f' flow begin/step/end
        Tick ts;
        Tick dur;       // 'X' only
        double value;   // 'C' only
        std::uint64_t id; // flow events only
        std::string name;
    };

    void flowEvent(char ph, std::string_view track,
                   std::string_view name, Tick at, std::uint64_t id);

    std::uint32_t trackId(std::string_view track);

    std::atomic<bool> enabled_{false};
    mutable std::mutex mutex_;
    std::size_t limit_ = 1u << 20;
    std::uint64_t dropped_ = 0;
    std::vector<std::string> tracks_;
    std::unordered_map<std::string, std::uint32_t> trackIds_;
    std::vector<Event> events_;
};

} // namespace enzian::obs

/**
 * Instrumentation macros: free when tracing is disabled at runtime,
 * gone entirely with -DENZIAN_NO_SPANS. Arguments are not evaluated
 * unless the tracer is enabled.
 */
#ifndef ENZIAN_NO_SPANS
#define ENZIAN_SPAN(track, name, start, end)                              \
    do {                                                                  \
        auto &enz_tracer_ = ::enzian::obs::SpanTracer::global();          \
        if (enz_tracer_.enabled())                                        \
            enz_tracer_.complete((track), (name), (start), (end));        \
    } while (0)
#define ENZIAN_SPAN_INSTANT(track, name, at)                              \
    do {                                                                  \
        auto &enz_tracer_ = ::enzian::obs::SpanTracer::global();          \
        if (enz_tracer_.enabled())                                        \
            enz_tracer_.instant((track), (name), (at));                   \
    } while (0)
#define ENZIAN_SPAN_COUNTER(track, name, at, value)                       \
    do {                                                                  \
        auto &enz_tracer_ = ::enzian::obs::SpanTracer::global();          \
        if (enz_tracer_.enabled())                                        \
            enz_tracer_.counter((track), (name), (at), (value));          \
    } while (0)
/* Flow macros additionally drop id 0: "this operation belongs to no
 * traced request" is the common case and must stay free. The id is
 * evaluated once, before the track/name expressions. */
#define ENZIAN_FLOW_BEGIN(track, name, at, id)                            \
    do {                                                                  \
        auto &enz_tracer_ = ::enzian::obs::SpanTracer::global();          \
        const std::uint64_t enz_flow_ = (id);                             \
        if (enz_flow_ && enz_tracer_.enabled())                           \
            enz_tracer_.flowBegin((track), (name), (at), enz_flow_);      \
    } while (0)
#define ENZIAN_FLOW_STEP(track, name, at, id)                             \
    do {                                                                  \
        auto &enz_tracer_ = ::enzian::obs::SpanTracer::global();          \
        const std::uint64_t enz_flow_ = (id);                             \
        if (enz_flow_ && enz_tracer_.enabled())                           \
            enz_tracer_.flowStep((track), (name), (at), enz_flow_);       \
    } while (0)
#define ENZIAN_FLOW_END(track, name, at, id)                              \
    do {                                                                  \
        auto &enz_tracer_ = ::enzian::obs::SpanTracer::global();          \
        const std::uint64_t enz_flow_ = (id);                             \
        if (enz_flow_ && enz_tracer_.enabled())                           \
            enz_tracer_.flowEnd((track), (name), (at), enz_flow_);        \
    } while (0)
#else
#define ENZIAN_SPAN(track, name, start, end) do { } while (0)
#define ENZIAN_SPAN_INSTANT(track, name, at) do { } while (0)
#define ENZIAN_SPAN_COUNTER(track, name, at, value) do { } while (0)
#define ENZIAN_FLOW_BEGIN(track, name, at, id) do { } while (0)
#define ENZIAN_FLOW_STEP(track, name, at, id) do { } while (0)
#define ENZIAN_FLOW_END(track, name, at, id) do { } while (0)
#endif

#endif // ENZIAN_OBS_SPAN_TRACER_HH
