/**
 * @file
 * Windowed latency recording against service-level objectives.
 *
 * The serving harness measures millions of request latencies per run;
 * a linear-bucket Histogram can't cover 1 us .. 1 s at useful
 * resolution, so LogHistogram stores values HDR-style: 32 sub-buckets
 * per power of two, giving a bounded <= 3.2% relative quantile error
 * over the full Tick range in 2048 fixed counters.
 *
 * SloRecorder aggregates latencies twice: cumulatively for the whole
 * run, and into tumbling sim-time windows aligned to absolute
 * multiples of the window width (so two runs that see the same
 * completions produce the same windows regardless of when recording
 * started). Each closed window reports p50/p99/p999/max/mean, the
 * exact SLO violation count (tested per sample, not read off the
 * histogram), and the error-budget burn rate: the fraction of the
 * window's requests over the SLO divided by the budget the quantile
 * target allows (1 - slo_quantile). Burn rate 1.0 means the window
 * consumed its budget exactly; sustained > 1.0 means the SLO is being
 * missed.
 *
 * The recorder owns a StatGroup ("load.slo.<name>") registered with
 * the global obs::Registry for its lifetime, so `enzstat`-style
 * exports see serving stats with zero wiring. It deliberately does
 * not touch the EventQueue — callers pass completion ticks in — so it
 * lives in obs below sim, like the rest of this library.
 */

#ifndef ENZIAN_OBS_SLO_HH
#define ENZIAN_OBS_SLO_HH

#include <array>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "base/stats.hh"
#include "base/units.hh"

namespace enzian::obs {

/**
 * Log-bucketed histogram of Tick-valued samples: 2^kSubBits
 * sub-buckets per octave, fixed footprint, O(1) record.
 */
class LogHistogram
{
  public:
    static constexpr unsigned kSubBits = 5;
    static constexpr std::size_t kSubBuckets = std::size_t{1}
                                               << kSubBits;
    /** Enough for 64 octaves x 32 sub-buckets. */
    static constexpr std::size_t kBuckets = 2048;

    /** Bucket index of @p v (total order, monotone in v). */
    static std::size_t index(Tick v);
    /** Smallest value mapping to bucket @p i. */
    static Tick bucketLow(std::size_t i);
    /** Width of bucket @p i in ticks. */
    static Tick bucketWidth(std::size_t i);

    void record(Tick v);

    std::uint64_t count() const { return count_; }
    /** Exact largest recorded value (not bucket-quantized). */
    Tick maxValue() const { return max_; }
    /** Exact mean of recorded values in ticks. */
    double meanTicks() const
    {
        return count_ ? sum_ / static_cast<double>(count_) : 0.0;
    }

    /**
     * Nearest-rank quantile @p q in [0, 1], reported as the midpoint
     * of the containing bucket (clamped to the exact max). Returns 0
     * when empty.
     */
    Tick quantile(double q) const;

    /** Fold @p other in, as if its samples were recorded here. */
    void merge(const LogHistogram &other);

    void reset();

  private:
    std::array<std::uint64_t, kBuckets> counts_{};
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    Tick max_ = 0;
};

/**
 * Records per-request latencies against an SLO, cumulatively and in
 * tumbling sim-time windows keyed by completion tick.
 */
class SloRecorder
{
  public:
    struct Config
    {
        /** Stat group suffix: registers as "load.slo.<name>". */
        std::string name = "serving";
        /** Tumbling window width. */
        Tick window = units::ms(10);
        /** Latency objective. */
        double slo_latency_us = 1000.0;
        /** Quantile the objective applies to (0.99 => p99 <= SLO). */
        double slo_quantile = 0.99;
    };

    /** One closed window's digest. */
    struct Window
    {
        Tick start;
        Tick end;
        std::uint64_t count;
        std::uint64_t violations;
        double p50_us;
        double p99_us;
        double p999_us;
        double max_us;
        double mean_us;
        double burn_rate;
    };

    explicit SloRecorder(Config cfg);
    ~SloRecorder();

    SloRecorder(const SloRecorder &) = delete;
    SloRecorder &operator=(const SloRecorder &) = delete;

    /**
     * Record one request that arrived at @p arrival and completed at
     * @p done. Completions must be fed in nondecreasing @p done order
     * (the natural order a simulation produces them in); a completion
     * landing past the open window closes it.
     */
    void record(Tick arrival, Tick done);

    /**
     * Close the window containing @p now (if it has samples) and any
     * open window before it. Call once at end of run so the final
     * partial window is reported.
     */
    void rollTo(Tick now);

    /** Closed windows in time order (empty windows are skipped). */
    const std::vector<Window> &windows() const { return windows_; }

    std::uint64_t totalCount() const { return total_.count(); }
    std::uint64_t totalViolations() const { return totalViolations_; }

    /** Whole-run quantile, microseconds. */
    double quantileUs(double q) const
    {
        return units::toMicros(total_.quantile(q));
    }
    double p50Us() const { return quantileUs(0.50); }
    double p99Us() const { return quantileUs(0.99); }
    double p999Us() const { return quantileUs(0.999); }
    double maxUs() const { return units::toMicros(total_.maxValue()); }
    double meanUs() const { return total_.meanTicks() / 1e6; }

    /** Does the whole run meet the SLO at the configured quantile? */
    bool sloMet() const
    {
        return total_.count() > 0 &&
               quantileUs(cfg_.slo_quantile) <= cfg_.slo_latency_us;
    }

    /** Whole-run error-budget burn rate. */
    double burnRate() const;

    /** The latency objective in ticks. */
    Tick sloLatencyTicks() const { return sloTicks_; }

    const Config &config() const { return cfg_; }

    /**
     * CSV of the closed windows:
     * window_start_us,window_end_us,count,violations,p50_us,p99_us,
     * p999_us,max_us,mean_us,burn_rate
     */
    void writeCsv(std::ostream &os) const;

  private:
    void closeWindow();
    double windowBudget() const { return 1.0 - cfg_.slo_quantile; }

    Config cfg_;
    Tick sloTicks_;

    LogHistogram total_;
    std::uint64_t totalViolations_ = 0;

    bool windowOpen_ = false;
    Tick windowIdx_ = 0;
    LogHistogram windowHist_;
    std::uint64_t windowViolations_ = 0;
    std::vector<Window> windows_;

    StatGroup stats_;
    Counter requests_;
    Counter violations_;
    Gauge windowP99Us_;
    Gauge windowBurnRate_;
};

} // namespace enzian::obs

#endif // ENZIAN_OBS_SLO_HH
