/**
 * @file
 * Registry implementation.
 */

#include "obs/registry.hh"

#include <algorithm>
#include <cctype>

#include "obs/json.hh"

namespace enzian::obs {

Snapshot
diff(const Snapshot &newer, const Snapshot &older)
{
    Snapshot out;
    for (const auto &[k, v] : newer) {
        auto it = older.find(k);
        out.emplace(k, it == older.end() ? v : v - it->second);
    }
    return out;
}

Registry &
Registry::global()
{
    static Registry instance;
    return instance;
}

void
Registry::add(StatGroup *g)
{
    groups_.push_back(g);
}

void
Registry::remove(StatGroup *g)
{
    auto it = std::find(groups_.begin(), groups_.end(), g);
    if (it != groups_.end())
        groups_.erase(it);
}

std::vector<const StatGroup *>
Registry::groups() const
{
    std::vector<const StatGroup *> out(groups_.begin(), groups_.end());
    std::stable_sort(out.begin(), out.end(),
                     [](const StatGroup *a, const StatGroup *b) {
                         return a->name() < b->name();
                     });
    return out;
}

namespace {

/** Append every stat of @p g to @p snap as flattened dotted names. */
void
flatten(const StatGroup &g, Snapshot &snap)
{
    const std::string &base = g.name();
    for (const auto &[n, c] : g.counters())
        snap[base + '.' + n] = static_cast<double>(c->value());
    for (const auto &[n, gg] : g.gauges())
        snap[base + '.' + n] = gg->value();
    for (const auto &[n, a] : g.accumulators()) {
        const std::string p = base + '.' + n;
        snap[p + ".count"] = static_cast<double>(a->count());
        snap[p + ".sum"] = a->sum();
        snap[p + ".mean"] = a->mean();
        snap[p + ".min"] = a->min();
        snap[p + ".max"] = a->max();
    }
    for (const auto &[n, h] : g.histograms()) {
        const std::string p = base + '.' + n;
        snap[p + ".count"] = static_cast<double>(h->count());
        snap[p + ".p50"] = h->quantile(0.50);
        snap[p + ".p90"] = h->quantile(0.90);
        snap[p + ".p99"] = h->quantile(0.99);
        snap[p + ".underflow"] = static_cast<double>(h->underflow());
        snap[p + ".overflow"] = static_cast<double>(h->overflow());
    }
}

} // namespace

Snapshot
Registry::snapshot() const
{
    Snapshot snap;
    for (const StatGroup *g : groups_)
        flatten(*g, snap);
    return snap;
}

void
Registry::resetAll()
{
    for (StatGroup *g : groups_)
        g->resetAll();
}

void
Registry::exportJson(const Snapshot &snap, std::ostream &os)
{
    // The snapshot is sorted, so a streaming writer only needs to
    // track the current nesting path of dot-separated segments.
    std::vector<std::string> path;
    bool first = true;
    os << "{";
    for (const auto &[key, value] : snap) {
        std::vector<std::string> segs;
        std::size_t start = 0;
        for (std::size_t i = 0; i <= key.size(); ++i) {
            if (i == key.size() || key[i] == '.') {
                segs.push_back(key.substr(start, i - start));
                start = i + 1;
            }
        }
        // Shared prefix with the currently open path (the leaf is
        // never shared: it's a value, not an object).
        std::size_t common = 0;
        while (common < path.size() && common + 1 < segs.size() &&
               path[common] == segs[common])
            ++common;
        for (std::size_t i = path.size(); i > common; --i)
            os << "}";
        path.resize(common);
        for (std::size_t i = common; i + 1 < segs.size(); ++i) {
            os << (first ? "" : ",") << json::quote(segs[i]) << ":{";
            first = true;
            path.push_back(segs[i]);
        }
        os << (first ? "" : ",") << json::quote(segs.back()) << ":"
           << json::number(value);
        first = false;
    }
    for (std::size_t i = path.size(); i > 0; --i)
        os << "}";
    os << "}\n";
}

void
Registry::exportJson(std::ostream &os) const
{
    exportJson(snapshot(), os);
}

std::string
Registry::prometheusName(const std::string &dotted)
{
    std::string out = "enzian_";
    for (const char c : dotted) {
        if (std::isalnum(static_cast<unsigned char>(c)))
            out += c;
        else
            out += '_';
    }
    return out;
}

void
Registry::exportPrometheus(std::ostream &os) const
{
    for (const StatGroup *g : groups()) {
        for (const auto &[n, c] : g->counters()) {
            const std::string m = prometheusName(g->name() + '.' + n);
            os << "# TYPE " << m << " counter\n"
               << m << ' ' << c->value() << '\n';
        }
        for (const auto &[n, gg] : g->gauges()) {
            const std::string m = prometheusName(g->name() + '.' + n);
            os << "# TYPE " << m << " gauge\n"
               << m << ' ' << json::number(gg->value()) << '\n';
        }
        for (const auto &[n, a] : g->accumulators()) {
            const std::string m = prometheusName(g->name() + '.' + n);
            os << "# TYPE " << m << " summary\n"
               << m << "_count " << a->count() << '\n'
               << m << "_sum " << json::number(a->sum()) << '\n';
        }
        for (const auto &[n, h] : g->histograms()) {
            const std::string m = prometheusName(g->name() + '.' + n);
            os << "# TYPE " << m << " summary\n"
               << m << "{quantile=\"0.5\"} "
               << json::number(h->quantile(0.5)) << '\n'
               << m << "{quantile=\"0.9\"} "
               << json::number(h->quantile(0.9)) << '\n'
               << m << "{quantile=\"0.99\"} "
               << json::number(h->quantile(0.99)) << '\n'
               << m << "_count " << h->count() << '\n';
        }
    }
}

} // namespace enzian::obs
