/**
 * @file
 * LogHistogram and SloRecorder implementation.
 */

#include "obs/slo.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

#include "base/logging.hh"
#include "obs/registry.hh"

namespace enzian::obs {

std::size_t
LogHistogram::index(Tick v)
{
    if (v < kSubBuckets)
        return static_cast<std::size_t>(v);
    const unsigned msb = std::bit_width(v) - 1;
    const unsigned shift = msb - kSubBits;
    return ((shift + 1) << kSubBits) +
           static_cast<std::size_t>((v >> shift) & (kSubBuckets - 1));
}

Tick
LogHistogram::bucketLow(std::size_t i)
{
    if (i < kSubBuckets)
        return i;
    const unsigned shift = static_cast<unsigned>(i >> kSubBits) - 1;
    return (Tick{kSubBuckets} | (i & (kSubBuckets - 1))) << shift;
}

Tick
LogHistogram::bucketWidth(std::size_t i)
{
    if (i < kSubBuckets)
        return 1;
    return Tick{1} << (static_cast<unsigned>(i >> kSubBits) - 1);
}

void
LogHistogram::record(Tick v)
{
    ++counts_[index(v)];
    ++count_;
    sum_ += static_cast<double>(v);
    max_ = std::max(max_, v);
}

Tick
LogHistogram::quantile(double q) const
{
    if (count_ == 0)
        return 0;
    q = std::clamp(q, 0.0, 1.0);
    // Nearest rank: the ceil(q*N)-th smallest sample, at least the 1st.
    std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count_)));
    rank = std::clamp<std::uint64_t>(rank, 1, count_);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
        seen += counts_[i];
        if (seen >= rank) {
            const Tick mid = bucketLow(i) + bucketWidth(i) / 2;
            return std::min(mid, max_);
        }
    }
    return max_; // unreachable: seen reaches count_
}

void
LogHistogram::merge(const LogHistogram &other)
{
    for (std::size_t i = 0; i < kBuckets; ++i)
        counts_[i] += other.counts_[i];
    count_ += other.count_;
    sum_ += other.sum_;
    max_ = std::max(max_, other.max_);
}

void
LogHistogram::reset()
{
    counts_.fill(0);
    count_ = 0;
    sum_ = 0.0;
    max_ = 0;
}

SloRecorder::SloRecorder(Config cfg)
    : cfg_(std::move(cfg)), sloTicks_(units::us(cfg_.slo_latency_us)),
      stats_("load.slo." + cfg_.name)
{
    if (cfg_.window == 0)
        fatal("slo recorder '%s': window width must be nonzero",
              cfg_.name.c_str());
    if (cfg_.slo_quantile <= 0.0 || cfg_.slo_quantile >= 1.0)
        fatal("slo recorder '%s': slo_quantile must be in (0, 1)",
              cfg_.name.c_str());
    stats_.addCounter("requests", &requests_);
    stats_.addCounter("slo_violations", &violations_);
    stats_.addGauge("window_p99_us", &windowP99Us_);
    stats_.addGauge("window_burn_rate", &windowBurnRate_);
    Registry::global().add(&stats_);
}

SloRecorder::~SloRecorder()
{
    Registry::global().remove(&stats_);
}

void
SloRecorder::record(Tick arrival, Tick done)
{
    const Tick latency = done >= arrival ? done - arrival : 0;
    const Tick idx = done / cfg_.window;
    if (windowOpen_ && idx != windowIdx_)
        closeWindow();
    if (!windowOpen_) {
        windowOpen_ = true;
        windowIdx_ = idx;
    }

    windowHist_.record(latency);
    total_.record(latency);
    requests_.inc();
    if (latency > sloTicks_) {
        ++windowViolations_;
        ++totalViolations_;
        violations_.inc();
    }
}

void
SloRecorder::rollTo(Tick now)
{
    if (windowOpen_ && now / cfg_.window >= windowIdx_)
        closeWindow();
}

void
SloRecorder::closeWindow()
{
    Window w;
    w.start = windowIdx_ * cfg_.window;
    w.end = w.start + cfg_.window;
    w.count = windowHist_.count();
    w.violations = windowViolations_;
    w.p50_us = units::toMicros(windowHist_.quantile(0.50));
    w.p99_us = units::toMicros(windowHist_.quantile(0.99));
    w.p999_us = units::toMicros(windowHist_.quantile(0.999));
    w.max_us = units::toMicros(windowHist_.maxValue());
    w.mean_us = windowHist_.meanTicks() / 1e6;
    const double frac =
        w.count ? static_cast<double>(w.violations) /
                      static_cast<double>(w.count)
                : 0.0;
    w.burn_rate = frac / windowBudget();
    windows_.push_back(w);

    windowP99Us_.set(w.p99_us);
    windowBurnRate_.set(w.burn_rate);

    windowHist_.reset();
    windowViolations_ = 0;
    windowOpen_ = false;
}

double
SloRecorder::burnRate() const
{
    const std::uint64_t n = total_.count();
    if (n == 0)
        return 0.0;
    const double frac = static_cast<double>(totalViolations_) /
                        static_cast<double>(n);
    return frac / windowBudget();
}

void
SloRecorder::writeCsv(std::ostream &os) const
{
    os << "window_start_us,window_end_us,count,violations,p50_us,"
          "p99_us,p999_us,max_us,mean_us,burn_rate\n";
    char line[320];
    for (const Window &w : windows_) {
        std::snprintf(line, sizeof(line),
                      "%.3f,%.3f,%llu,%llu,%.3f,%.3f,%.3f,%.3f,%.3f,"
                      "%.4f\n",
                      units::toMicros(w.start), units::toMicros(w.end),
                      static_cast<unsigned long long>(w.count),
                      static_cast<unsigned long long>(w.violations),
                      w.p50_us, w.p99_us, w.p999_us, w.max_us,
                      w.mean_us, w.burn_rate);
        os << line;
    }
}

} // namespace enzian::obs
