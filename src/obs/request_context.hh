/**
 * @file
 * Per-request causal context for flow tracing.
 *
 * A serving request is born in the load generator, crosses a service
 * driver, and threads through timed components (the GBDT engine, the
 * RDMA initiator/target, a TCP stack) before completing. To stitch
 * those hops into one Perfetto flow without changing every component
 * signature, the issuing side publishes the request's flow id in an
 * ambient per-thread slot for the duration of the issue call;
 * components capture it into their own per-operation state (a TCP
 * send job, an RDMA pending entry) at the moment work is accepted and
 * tag their spans with it at completion.
 *
 * Id 0 means "not traced": the ENZIAN_FLOW_* macros drop events with
 * a zero id, so untraced requests cost one thread-local load at issue
 * and nothing thereafter. The slot is thread-local so parallel domain
 * workers never observe each other's ids.
 */

#ifndef ENZIAN_OBS_REQUEST_CONTEXT_HH
#define ENZIAN_OBS_REQUEST_CONTEXT_HH

#include <cstdint>

namespace enzian::obs {

namespace detail {

inline std::uint64_t &
flowIdSlot()
{
    thread_local std::uint64_t id = 0;
    return id;
}

} // namespace detail

/** Flow id of the request currently being issued (0 = none). */
inline std::uint64_t
currentFlowId()
{
    return detail::flowIdSlot();
}

/**
 * Deterministic flow-id source for harnesses that are not paced by a
 * load generator (the HPCC suite CLI, benches): ids count up from a
 * fixed base per allocator instance, so the same run issues the same
 * ids regardless of thread count or wall clock. Id 0 is never
 * produced (it means "untraced").
 */
class FlowIdAllocator
{
  public:
    /** @param base first id to hand out (>= 1). */
    explicit FlowIdAllocator(std::uint64_t base = 1)
        : next_(base ? base : 1)
    {
    }

    /** Allocate the next flow id. */
    std::uint64_t next() { return next_++; }

    /** Ids handed out so far. */
    std::uint64_t issued(std::uint64_t base = 1) const
    {
        return next_ - (base ? base : 1);
    }

  private:
    std::uint64_t next_;
};

/**
 * RAII scope publishing a request's flow id while its issue path
 * runs. Nests correctly (the previous id is restored), so a traced
 * request issued from inside another request's completion callback
 * keeps both flows intact.
 */
class FlowScope
{
  public:
    explicit FlowScope(std::uint64_t id) : prev_(detail::flowIdSlot())
    {
        detail::flowIdSlot() = id;
    }

    ~FlowScope() { detail::flowIdSlot() = prev_; }

    FlowScope(const FlowScope &) = delete;
    FlowScope &operator=(const FlowScope &) = delete;

  private:
    std::uint64_t prev_;
};

} // namespace enzian::obs

#endif // ENZIAN_OBS_REQUEST_CONTEXT_HH
