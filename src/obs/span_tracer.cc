/**
 * @file
 * SpanTracer implementation.
 */

#include "obs/span_tracer.hh"

#include <cstdio>
#include <fstream>

#include "base/logging.hh"
#include "obs/json.hh"

namespace enzian::obs {

SpanTracer &
SpanTracer::global()
{
    static SpanTracer instance;
    return instance;
}

std::uint32_t
SpanTracer::trackId(std::string_view track)
{
    auto it = trackIds_.find(std::string(track));
    if (it != trackIds_.end())
        return it->second;
    const auto id = static_cast<std::uint32_t>(tracks_.size());
    tracks_.emplace_back(track);
    trackIds_.emplace(tracks_.back(), id);
    return id;
}

void
SpanTracer::complete(std::string_view track, std::string_view name,
                     Tick start, Tick end)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    if (events_.size() >= limit_) {
        ++dropped_;
        return;
    }
    events_.push_back(Event{trackId(track), 'X', start,
                            end >= start ? end - start : 0, 0.0, 0,
                            std::string(name)});
}

void
SpanTracer::instant(std::string_view track, std::string_view name,
                    Tick at)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    if (events_.size() >= limit_) {
        ++dropped_;
        return;
    }
    events_.push_back(
        Event{trackId(track), 'i', at, 0, 0.0, 0, std::string(name)});
}

void
SpanTracer::counter(std::string_view track, std::string_view name,
                    Tick at, double value)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    if (events_.size() >= limit_) {
        ++dropped_;
        return;
    }
    events_.push_back(
        Event{trackId(track), 'C', at, 0, value, 0, std::string(name)});
}

void
SpanTracer::flowEvent(char ph, std::string_view track,
                      std::string_view name, Tick at, std::uint64_t id)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    if (events_.size() >= limit_) {
        ++dropped_;
        return;
    }
    events_.push_back(
        Event{trackId(track), ph, at, 0, 0.0, id, std::string(name)});
}

void
SpanTracer::flowBegin(std::string_view track, std::string_view name,
                      Tick at, std::uint64_t id)
{
    flowEvent('s', track, name, at, id);
}

void
SpanTracer::flowStep(std::string_view track, std::string_view name,
                     Tick at, std::uint64_t id)
{
    flowEvent('t', track, name, at, id);
}

void
SpanTracer::flowEnd(std::string_view track, std::string_view name,
                    Tick at, std::uint64_t id)
{
    flowEvent('f', track, name, at, id);
}

void
SpanTracer::clear()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    events_.clear();
    tracks_.clear();
    trackIds_.clear();
    dropped_ = 0;
}

void
SpanTracer::writeChromeJson(std::ostream &os) const
{
    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    bool first = true;
    // Thread-name metadata gives each track its swim lane label.
    for (std::size_t i = 0; i < tracks_.size(); ++i) {
        os << (first ? "" : ",")
           << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << i + 1
           << ",\"name\":\"thread_name\",\"args\":{\"name\":"
           << json::quote(tracks_[i]) << "}}";
        first = false;
    }
    for (const Event &e : events_) {
        // Chrome trace timestamps are microseconds; ticks are ps.
        const double ts = units::toMicros(e.ts);
        os << (first ? "" : ",") << "{\"ph\":\"" << e.ph
           << "\",\"pid\":1,\"tid\":" << e.track + 1
           << ",\"ts\":" << json::number(ts)
           << ",\"name\":" << json::quote(e.name);
        if (e.ph == 'X') {
            os << ",\"dur\":" << json::number(units::toMicros(e.dur));
        } else if (e.ph == 'i') {
            os << ",\"s\":\"t\"";
        } else if (e.ph == 'C') {
            os << ",\"args\":{\"value\":" << json::number(e.value)
               << "}";
        } else if (e.ph == 's' || e.ph == 't' || e.ph == 'f') {
            // Flow events carry the request id; "bp":"e" binds each to
            // the enclosing slice so Perfetto draws arrows span-to-span.
            char idbuf[24];
            std::snprintf(idbuf, sizeof(idbuf), "0x%llx",
                          static_cast<unsigned long long>(e.id));
            os << ",\"cat\":\"flow\",\"id\":\"" << idbuf
               << "\",\"bp\":\"e\"";
        }
        os << "}";
        first = false;
    }
    os << "]}\n";
}

void
SpanTracer::save(const std::string &path) const
{
    std::ofstream f(path, std::ios::trunc);
    if (!f)
        fatal("span tracer: cannot open '%s' for writing",
              path.c_str());
    writeChromeJson(f);
    if (!f.good())
        fatal("span tracer: error writing '%s'", path.c_str());
}

} // namespace enzian::obs
