/**
 * @file
 * Interval sampler: periodic registry snapshots as a time series.
 *
 * Schedules snapshot events on the simulation's own event queue, so
 * samples land at exact sim-time intervals regardless of host speed —
 * the simulator equivalent of a node_exporter scrape loop. Each point
 * keeps the full snapshot; the CSV writer emits per-interval deltas
 * (rates), the JSON writer emits both.
 *
 * The sampler drives itself with one reusable self-rescheduling
 * event that stops re-arming past the run(until) bound, so
 * EventQueue::run() — which drains the queue — still terminates and
 * an N-sample run costs one event slot instead of N heap entries.
 *
 * Header-only: lives above base/stats but below sim in the library
 * graph, so it borrows the EventQueue type from the caller's side.
 */

#ifndef ENZIAN_OBS_SAMPLER_HH
#define ENZIAN_OBS_SAMPLER_HH

#include <ostream>
#include <set>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "obs/json.hh"
#include "obs/registry.hh"
#include "sim/event_queue.hh"

namespace enzian::obs {

/** Periodic snapshot recorder over one Registry. */
class Sampler
{
  public:
    /** One recorded point. */
    struct Point
    {
        Tick at = 0;
        Snapshot total;
    };

    /**
     * @param reg registry to snapshot (e.g. Registry::global())
     * @param eq event queue supplying sim time
     * @param interval sampling period in ticks (> 0)
     */
    Sampler(Registry &reg, EventQueue &eq, Tick interval)
        : reg_(reg), eq_(eq), interval_(interval)
    {
        if (interval_ == 0)
            fatal("sampler: zero interval");
    }

    /**
     * Number of periodic samples a run from @p from to @p until
     * takes: one per whole interval boundary in (from, until].
     */
    static std::uint64_t
    expectedSamples(Tick from, Tick until, Tick interval)
    {
        return until > from ? (until - from) / interval : 0;
    }

    /**
     * Sample every interval from now() until @p until (inclusive
     * when it falls on a boundary). Call before running the
     * workload; the samples interleave with the simulation's own
     * events. A second call re-bases the series from the new now().
     */
    void
    run(Tick until)
    {
        const Tick from = eq_.now();
        const std::uint64_t n = expectedSamples(from, until, interval_);
        if (n == 0)
            return;
        stop_ = from + n * interval_;
        if (!ev_.valid())
            ev_.init(eq_, [this]() { onSample(); }, "obs-sample");
        ev_.reschedule(from + interval_);
    }

    /** Take one snapshot immediately at the current sim time. */
    void
    sampleNow()
    {
        points_.push_back(Point{eq_.now(), reg_.snapshot()});
    }

    const std::vector<Point> &points() const { return points_; }
    std::uint64_t samplesTaken() const { return points_.size(); }
    void clear() { points_.clear(); }

    /**
     * CSV time series of per-interval deltas: header row
     * "tick_ps,<stat>,..." over the union of stat names, then one row
     * per point with the change since the previous point (first row
     * is the change since zero).
     */
    void
    writeCsv(std::ostream &os) const
    {
        std::set<std::string> keys;
        for (const Point &p : points_)
            for (const auto &[k, v] : p.total)
                keys.insert(k);
        os << "tick_ps";
        for (const std::string &k : keys)
            os << ',' << k;
        os << '\n';
        const Snapshot empty;
        const Snapshot *prev = &empty;
        for (const Point &p : points_) {
            const Snapshot d = diff(p.total, *prev);
            os << p.at;
            for (const std::string &k : keys) {
                auto it = d.find(k);
                os << ',' << (it == d.end() ? 0.0 : it->second);
            }
            os << '\n';
            prev = &p.total;
        }
    }

    /**
     * JSON time series: {"interval_ps":..,"points":[{"tick":..,
     * "total":{...},"delta":{...}},...]} with hierarchical stat
     * objects as in Registry::exportJson.
     */
    void
    writeJson(std::ostream &os) const
    {
        os << "{\"interval_ps\":" << interval_ << ",\"points\":[";
        const Snapshot empty;
        const Snapshot *prev = &empty;
        bool first = true;
        for (const Point &p : points_) {
            os << (first ? "" : ",") << "{\"tick\":" << p.at
               << ",\"total\":";
            Registry::exportJson(p.total, os);
            os << ",\"delta\":";
            Registry::exportJson(diff(p.total, *prev), os);
            os << "}";
            prev = &p.total;
            first = false;
        }
        os << "]}\n";
    }

  private:
    void
    onSample()
    {
        sampleNow();
        const Tick next = eq_.now() + interval_;
        if (next <= stop_)
            ev_.schedule(next);
    }

    Registry &reg_;
    EventQueue &eq_;
    Tick interval_;
    Tick stop_ = 0;
    Event ev_;
    std::vector<Point> points_;
};

} // namespace enzian::obs

#endif // ENZIAN_OBS_SAMPLER_HH
