/**
 * @file
 * Global hierarchical statistics registry.
 *
 * Every SimObject auto-registers its StatGroup here on construction
 * (and removes it on destruction), giving one global view of the whole
 * machine's counters without any per-component wiring — the role
 * MGSim's uniform counter tree and gem5's stats dump play. On top of
 * the live view the registry provides point-in-time snapshots (a flat
 * map of dotted stat names to values), snapshot diffing for interval
 * measurements, group-wide reset, and machine-readable exports:
 * hierarchical JSON and Prometheus text exposition.
 *
 * Names are hierarchical by convention ("enzian.eci.link0.messages");
 * the JSON export nests on the dots. Two components with the same name
 * (e.g. two independent bench machines both called "enzian") may
 * coexist; flattened snapshots resolve such collisions last-wins.
 */

#ifndef ENZIAN_OBS_REGISTRY_HH
#define ENZIAN_OBS_REGISTRY_HH

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "base/stats.hh"

namespace enzian::obs {

/** Flattened point-in-time view: dotted stat name -> value. */
using Snapshot = std::map<std::string, double>;

/**
 * Per-stat difference @p newer - @p older. Keys only in @p newer are
 * kept as-is (a component created between the snapshots); keys only
 * in @p older are dropped (the component is gone, there is no
 * meaningful delta).
 */
Snapshot diff(const Snapshot &newer, const Snapshot &older);

/** The registry of every live StatGroup. */
class Registry
{
  public:
    Registry() = default;

    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /** The process-wide registry SimObjects register with. */
    static Registry &global();

    /** Register @p g; the group must outlive its registration. */
    void add(StatGroup *g);

    /** Remove @p g (no-op if absent). */
    void remove(StatGroup *g);

    /** Number of registered groups. */
    std::size_t groupCount() const { return groups_.size(); }

    /** Registered groups, sorted by name (then registration order). */
    std::vector<const StatGroup *> groups() const;

    /** Flatten every registered stat into a snapshot. */
    Snapshot snapshot() const;

    /** Reset every statistic in every registered group. */
    void resetAll();

    /**
     * Hierarchical JSON export of @p snap: dotted names become nested
     * objects, so "a.b.c": 1 renders as {"a":{"b":{"c":1}}}.
     */
    static void exportJson(const Snapshot &snap, std::ostream &os);

    /** JSON export of the current live values. */
    void exportJson(std::ostream &os) const;

    /**
     * Prometheus text exposition of @p snap: names sanitized to
     * [a-zA-Z0-9_] with an "enzian_" prefix, one # TYPE line per
     * metric (counter for monotonic counters, gauge otherwise).
     */
    void exportPrometheus(std::ostream &os) const;

    /** Map a dotted stat name to its Prometheus metric name. */
    static std::string prometheusName(const std::string &dotted);

  private:
    std::vector<StatGroup *> groups_;
};

} // namespace enzian::obs

#endif // ENZIAN_OBS_REGISTRY_HH
