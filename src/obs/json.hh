/**
 * @file
 * Minimal JSON support for the observability layer.
 *
 * The exporters (registry snapshots, Chrome traces, bench reports)
 * need correct string escaping, and the tests need to parse what was
 * written back to prove it is well-formed. Rather than pull in a
 * dependency, this is a tiny writer helper plus a strict
 * recursive-descent parser covering the JSON we emit (objects,
 * arrays, strings with escapes, numbers, booleans, null).
 */

#ifndef ENZIAN_OBS_JSON_HH
#define ENZIAN_OBS_JSON_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace enzian::obs::json {

/** Escape @p s for inclusion inside a JSON string literal. */
std::string escape(std::string_view s);

/** Quote and escape: returns "\"...\"". */
std::string quote(std::string_view s);

/**
 * Render a double the way JSON requires: finite values with enough
 * precision to round-trip, non-finite values as null (JSON has no
 * Inf/NaN).
 */
std::string number(double v);

/** A parsed JSON document node. */
struct Value
{
    enum class Type : std::uint8_t {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Type type = Type::Null;
    bool boolean = false;
    double num = 0.0;
    std::string str;
    std::vector<Value> arr;
    /** Object members in document order (duplicates preserved). */
    std::vector<std::pair<std::string, Value>> obj;

    bool isObject() const { return type == Type::Object; }
    bool isArray() const { return type == Type::Array; }
    bool isString() const { return type == Type::String; }
    bool isNumber() const { return type == Type::Number; }

    /** First member named @p key, or nullptr. Object nodes only. */
    const Value *find(std::string_view key) const;
};

/**
 * Parse @p text as one JSON document (trailing whitespace allowed,
 * trailing garbage rejected).
 *
 * @param err optional; receives a human-readable reason on failure.
 * @return true on success, with the document in @p out.
 */
bool parse(std::string_view text, Value &out, std::string *err = nullptr);

} // namespace enzian::obs::json

#endif // ENZIAN_OBS_JSON_HH
