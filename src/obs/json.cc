/**
 * @file
 * JSON writer helpers and parser.
 */

#include "obs/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace enzian::obs::json {

std::string
escape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char raw : s) {
        const auto c = static_cast<unsigned char>(raw);
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += raw;
            }
        }
    }
    return out;
}

std::string
quote(std::string_view s)
{
    return "\"" + escape(s) + "\"";
}

std::string
number(double v)
{
    if (!std::isfinite(v))
        return "null";
    // %.17g round-trips any double; trim to the shortest form that
    // still parses back exactly.
    char buf[40];
    for (int prec = 15; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
        double back = 0;
        std::sscanf(buf, "%lf", &back);
        if (back == v)
            break;
    }
    return buf;
}

const Value *
Value::find(std::string_view key) const
{
    for (const auto &[k, v] : obj)
        if (k == key)
            return &v;
    return nullptr;
}

namespace {

/** Recursive-descent parser state. */
struct Parser
{
    std::string_view text;
    std::size_t pos = 0;
    std::string error = {};

    bool atEnd() const { return pos >= text.size(); }
    char peek() const { return text[pos]; }

    void
    skipWs()
    {
        while (!atEnd() && (text[pos] == ' ' || text[pos] == '\t' ||
                            text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    bool
    fail(const std::string &why)
    {
        if (error.empty())
            error = why + " at offset " + std::to_string(pos);
        return false;
    }

    bool
    expect(char c)
    {
        if (atEnd() || text[pos] != c)
            return fail(std::string("expected '") + c + "'");
        ++pos;
        return true;
    }

    bool
    literal(std::string_view word)
    {
        if (text.substr(pos, word.size()) != word)
            return fail("bad literal");
        pos += word.size();
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!expect('"'))
            return false;
        out.clear();
        while (true) {
            if (atEnd())
                return fail("unterminated string");
            const char c = text[pos++];
            if (c == '"')
                return true;
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (atEnd())
                return fail("dangling escape");
            const char e = text[pos++];
            switch (e) {
              case '"':
                out += '"';
                break;
              case '\\':
                out += '\\';
                break;
              case '/':
                out += '/';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                if (pos + 4 > text.size())
                    return fail("short \\u escape");
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text[pos++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad hex digit in \\u escape");
                }
                // Encode the code point as UTF-8 (surrogate pairs are
                // not combined; we never emit them).
                if (cp < 0x80) {
                    out += static_cast<char>(cp);
                } else if (cp < 0x800) {
                    out += static_cast<char>(0xc0 | (cp >> 6));
                    out += static_cast<char>(0x80 | (cp & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (cp >> 12));
                    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (cp & 0x3f));
                }
                break;
              }
              default:
                return fail("unknown escape");
            }
        }
    }

    bool
    parseNumber(Value &out)
    {
        const std::size_t start = pos;
        if (!atEnd() && peek() == '-')
            ++pos;
        while (!atEnd() &&
               (std::isdigit(static_cast<unsigned char>(peek())) ||
                peek() == '.' || peek() == 'e' || peek() == 'E' ||
                peek() == '+' || peek() == '-'))
            ++pos;
        if (pos == start)
            return fail("empty number");
        const std::string tok(text.substr(start, pos - start));
        char *end = nullptr;
        out.num = std::strtod(tok.c_str(), &end);
        if (end != tok.c_str() + tok.size())
            return fail("malformed number");
        out.type = Value::Type::Number;
        return true;
    }

    bool
    parseValue(Value &out)
    {
        skipWs();
        if (atEnd())
            return fail("unexpected end of input");
        switch (peek()) {
          case '{': {
            ++pos;
            out.type = Value::Type::Object;
            skipWs();
            if (!atEnd() && peek() == '}') {
                ++pos;
                return true;
            }
            while (true) {
                skipWs();
                std::string key;
                if (!parseString(key))
                    return false;
                skipWs();
                if (!expect(':'))
                    return false;
                Value v;
                if (!parseValue(v))
                    return false;
                out.obj.emplace_back(std::move(key), std::move(v));
                skipWs();
                if (atEnd())
                    return fail("unterminated object");
                if (peek() == ',') {
                    ++pos;
                    continue;
                }
                return expect('}');
            }
          }
          case '[': {
            ++pos;
            out.type = Value::Type::Array;
            skipWs();
            if (!atEnd() && peek() == ']') {
                ++pos;
                return true;
            }
            while (true) {
                Value v;
                if (!parseValue(v))
                    return false;
                out.arr.push_back(std::move(v));
                skipWs();
                if (atEnd())
                    return fail("unterminated array");
                if (peek() == ',') {
                    ++pos;
                    continue;
                }
                return expect(']');
            }
          }
          case '"':
            out.type = Value::Type::String;
            return parseString(out.str);
          case 't':
            out.type = Value::Type::Bool;
            out.boolean = true;
            return literal("true");
          case 'f':
            out.type = Value::Type::Bool;
            out.boolean = false;
            return literal("false");
          case 'n':
            out.type = Value::Type::Null;
            return literal("null");
          default:
            return parseNumber(out);
        }
    }
};

} // namespace

bool
parse(std::string_view text, Value &out, std::string *err)
{
    Parser p{.text = text};
    out = Value();
    if (!p.parseValue(out)) {
        if (err)
            *err = p.error;
        return false;
    }
    p.skipWs();
    if (!p.atEnd()) {
        if (err)
            *err = "trailing garbage at offset " + std::to_string(p.pos);
        return false;
    }
    return true;
}

} // namespace enzian::obs::json
