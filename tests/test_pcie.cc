/**
 * @file
 * Unit tests for the PCIe substrate.
 */

#include <gtest/gtest.h>

#include "pcie/dma_engine.hh"
#include "pcie/pcie_link.hh"
#include "pcie/tlp.hh"
#include "platform/params.hh"

namespace enzian::pcie {
namespace {

TEST(Tlp, WireBytesIncludePerPacketOverhead)
{
    EXPECT_EQ(wireBytesFor(0, 256), tlpOverheadBytes);
    EXPECT_EQ(wireBytesFor(256, 256), 256u + tlpOverheadBytes);
    EXPECT_EQ(wireBytesFor(257, 256), 257u + 2 * tlpOverheadBytes);
    EXPECT_EQ(wireBytesFor(4096, 256), 4096u + 16 * tlpOverheadBytes);
}

TEST(PcieLink, Gen3x16WireBandwidth)
{
    EventQueue eq;
    PcieLink link("p", eq, platform::params::alveoPcieConfig());
    // 16 lanes x 8 GT/s x 128/130 = ~15.75 GB/s.
    EXPECT_NEAR(link.wireBandwidth(), 15.75e9, 0.05e9);
    // Effective payload bandwidth is below wire bandwidth.
    EXPECT_LT(link.effectiveBandwidth(), link.wireBandwidth());
    EXPECT_NEAR(link.effectiveBandwidth(),
                link.wireBandwidth() * 256.0 / 280.0, 1e7);
}

TEST(PcieLink, TransferTimingScalesWithSize)
{
    EventQueue eq;
    PcieLink link("p", eq, platform::params::alveoPcieConfig());
    const Tick small = link.transfer(0, 128, true);
    EventQueue eq2;
    PcieLink link2("p2", eq2, platform::params::alveoPcieConfig());
    const Tick big = link2.transfer(0, 1 << 20, true);
    EXPECT_GT(big, small);
    // Large transfer approaches wire bandwidth.
    const double gbps = (1 << 20) / units::toSeconds(big - link2.latency());
    EXPECT_NEAR(gbps, link2.effectiveBandwidth(), 0.1e9);
}

TEST(PcieLink, DirectionsIndependent)
{
    EventQueue eq;
    PcieLink link("p", eq, platform::params::alveoPcieConfig());
    const Tick up = link.transfer(0, 1 << 20, true);
    const Tick down = link.transfer(0, 1 << 20, false);
    EXPECT_EQ(up, down); // no shared occupancy
}

class DmaTest : public ::testing::Test
{
  protected:
    DmaTest()
    {
        link = std::make_unique<PcieLink>(
            "p", eq, platform::params::alveoPcieConfig());
        host = std::make_unique<mem::MemoryController>(
            "host", eq, 64 << 20, 4, platform::params::cpuDramConfig());
        dev = std::make_unique<mem::MemoryController>(
            "dev", eq, 64 << 20, 4, platform::params::fpgaDramConfig());
        dma = std::make_unique<DmaEngine>("dma", eq, *link, *host, *dev,
                                          DmaEngine::Config{});
    }

    EventQueue eq;
    std::unique_ptr<PcieLink> link;
    std::unique_ptr<mem::MemoryController> host, dev;
    std::unique_ptr<DmaEngine> dma;
};

TEST_F(DmaTest, FunctionalCopyBothDirections)
{
    std::vector<std::uint8_t> data(8192);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i);
    host->store().write(0x1000, data.data(), data.size());

    bool there = false;
    dma->hostToDevice(0x1000, 0x2000, data.size(), [&](Tick) {
        there = true;
    });
    eq.run();
    ASSERT_TRUE(there);
    std::vector<std::uint8_t> back(data.size());
    dev->store().read(0x2000, back.data(), back.size());
    EXPECT_EQ(back, data);

    bool home_again = false;
    dma->deviceToHost(0x2000, 0x9000, data.size(), [&](Tick) {
        home_again = true;
    });
    eq.run();
    ASSERT_TRUE(home_again);
    host->store().read(0x9000, back.data(), back.size());
    EXPECT_EQ(back, data);
}

TEST_F(DmaTest, LatencyIncludesSetupCosts)
{
    // Unpipelined single-transfer latency: doorbell + descriptor +
    // setup + wire + completion ~ 1.2+ us even for 128 bytes.
    const Tick lat = dma->transferLatency(128);
    EXPECT_GT(lat, units::ns(1200));
    EXPECT_LT(lat, units::us(3));
}

TEST_F(DmaTest, PipelinedThroughputBeatsSerialLatency)
{
    // 64 back-to-back 4 KiB transfers should take far less than
    // 64x the single-shot latency.
    const std::uint32_t n = 64;
    std::uint32_t done = 0;
    Tick last = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
        dma->hostToDevice(0, 0x4000, 4096, [&](Tick t) {
            ++done;
            last = std::max(last, t);
        });
    }
    eq.run();
    ASSERT_EQ(done, n);
    EXPECT_LT(last, static_cast<Tick>(0.5 * n *
                                      dma->transferLatency(4096)));
}

TEST_F(DmaTest, ThroughputApproachesWireForLargeTransfers)
{
    bool done = false;
    Tick t_done = 0;
    const std::uint64_t len = 16ull << 20;
    dma->hostToDevice(0, 0, len, [&](Tick t) {
        done = true;
        t_done = t;
    });
    eq.run();
    ASSERT_TRUE(done);
    const double rate = len / units::toSeconds(t_done);
    EXPECT_GT(rate, 10e9); // > 10 GB/s on Gen3 x16
}

} // namespace
} // namespace enzian::pcie
