/**
 * @file
 * Heavy chaos soak (ctest label `soak`): longer schedules, more
 * traffic, BMC rail glitches in the mix. The base run keeps CI-sized
 * seed counts; the nightly soak job scales up via ENZIAN_CHAOS_SEEDS
 * (a multiplier on the seed count).
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "fault/chaos_scenario.hh"
#include "fault/fault_plan.hh"

namespace enzian::fault {
namespace {

std::uint64_t
seedMultiplier()
{
    const char *env = std::getenv("ENZIAN_CHAOS_SEEDS");
    if (!env || !*env)
        return 1;
    const long v = std::strtol(env, nullptr, 10);
    return v > 0 ? static_cast<std::uint64_t>(v) : 1;
}

TEST(FaultSoak, HeavySchedulesWithFullSideTraffic)
{
    const std::uint64_t seeds = 4 * seedMultiplier();
    for (std::uint64_t i = 0; i < seeds; ++i) {
        // Offset the seed space away from the quick chaos sweep.
        const std::uint64_t seed = 1000 + i;
        const FaultPlan plan = FaultPlan::random(seed, 600.0);
        ChaosConfig cfg;
        cfg.seed = seed;
        cfg.ops = 400;
        cfg.lines = 32;
        cfg.with_net = true;
        cfg.with_rdma = true;
        cfg.with_bmc = false;
        const ChaosResult r = runChaos(plan, cfg);
        ASSERT_TRUE(r.ok)
            << "seed " << seed << ": " << r.violations.front()
            << "\nplan:\n"
            << plan.toString() << "\n"
            << r.report;
        EXPECT_EQ(r.opsCompleted, r.opsIssued) << "seed " << seed;
    }
}

TEST(FaultSoak, RailGlitchesUnderCoherentLoad)
{
    const std::uint64_t seeds = 2 * seedMultiplier();
    for (std::uint64_t i = 0; i < seeds; ++i) {
        const std::uint64_t seed = 2000 + i;
        FaultPlan plan = FaultPlan::random(seed);
        FaultSpec glitch;
        glitch.kind = FaultKind::BmcRailGlitch;
        glitch.at = units::us(20.0);
        glitch.target = static_cast<std::uint32_t>(i);
        plan.faults.push_back(glitch);
        ChaosConfig cfg;
        cfg.seed = seed;
        cfg.ops = 150;
        cfg.lines = 16;
        cfg.with_net = false;
        cfg.with_rdma = false;
        cfg.with_bmc = true;
        const ChaosResult r = runChaos(plan, cfg);
        ASSERT_TRUE(r.ok)
            << "seed " << seed << ": " << r.violations.front()
            << "\nplan:\n"
            << plan.toString() << "\n"
            << r.report;
    }
}

} // namespace
} // namespace enzian::fault
