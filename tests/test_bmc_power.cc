/**
 * @file
 * Tests for the power model and telemetry service.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "bmc/bmc.hh"
#include "bmc/power_model.hh"
#include "platform/params.hh"

namespace enzian::bmc {
namespace {

TEST(PowerModel, OffMeansZero)
{
    PowerModel pm;
    EXPECT_DOUBLE_EQ(pm.cpuPower(), 0.0);
    EXPECT_DOUBLE_EQ(pm.dramPower(0), 0.0);
    EXPECT_DOUBLE_EQ(pm.fpgaPower(), 0.0);
    EXPECT_GT(pm.bmcPower(), 0.0); // BMC always on
}

TEST(PowerModel, CpuScalesWithCores)
{
    PowerModel pm;
    pm.setCpuOn(true);
    const double idle = pm.cpuPower();
    pm.setActiveCores(48);
    EXPECT_NEAR(pm.cpuPower() - idle, 48 * pm.config().cpu_per_core_w,
                1e-9);
}

TEST(PowerModel, SpikeAddsTransientPower)
{
    PowerModel pm;
    pm.setCpuOn(true);
    const double base = pm.cpuPower();
    pm.setCpuSpike(true);
    EXPECT_NEAR(pm.cpuPower() - base, pm.config().cpu_poweron_spike_w,
                1e-9);
}

TEST(PowerModel, FpgaActivityStaircase)
{
    PowerModel pm;
    pm.setFpgaOn(true);
    EXPECT_NEAR(pm.fpgaPower(), pm.config().fpga_unconfigured_w, 1e-9);
    pm.setFpgaConfigured(true);
    const double idle = pm.fpgaPower();
    pm.setFpgaActivity(1.0);
    EXPECT_NEAR(pm.fpgaPower(), idle + pm.config().fpga_dynamic_w,
                1e-9);
    // Full burn lands in the paper's ~170 W ballpark.
    EXPECT_GT(pm.fpgaPower(), 150.0);
    EXPECT_LT(pm.fpgaPower(), 200.0);
}

TEST(PowerModel, DramActivityBounded)
{
    PowerModel pm;
    pm.setCpuOn(true);
    pm.setDramActivity(0, 0.5);
    EXPECT_NEAR(pm.dramPower(0),
                pm.config().dram_idle_w + 0.5 * pm.config().dram_active_w,
                1e-9);
    EXPECT_EXIT(pm.setDramActivity(0, 1.5),
                ::testing::ExitedWithCode(1), "activity");
}

TEST(PowerModel, TotalSumsComponents)
{
    PowerModel pm;
    pm.setCpuOn(true);
    pm.setFpgaOn(true);
    pm.setFpgaConfigured(true);
    EXPECT_NEAR(pm.totalPower(),
                pm.cpuPower() + pm.dramPower(0) + pm.dramPower(1) +
                    pm.fpgaPower() + pm.bmcPower(),
                1e-9);
}

class TelemetryTest : public ::testing::Test
{
  protected:
    TelemetryTest() : bmc("bmc", eq) {}

    EventQueue eq;
    Bmc bmc;
};

TEST_F(TelemetryTest, SamplesAtConfiguredPeriod)
{
    eq.runUntil(bmc.commonPowerUp() + units::ms(1));
    eq.runUntil(bmc.cpuPowerUp() + units::ms(1));
    bmc.power().setCpuOn(true);
    bmc.power().setActiveCores(48);

    bmc.telemetry().watch("CPU", 0x20);
    bmc.telemetry().start(units::ms(20));
    eq.runUntil(eq.now() + units::sec(1));
    bmc.telemetry().stop();
    eq.run();

    const auto &samples = bmc.telemetry().samples();
    // ~50 sweeps of one rail in a second.
    EXPECT_NEAR(static_cast<double>(samples.size()), 50.0, 3.0);
    const auto *latest = bmc.telemetry().latest("CPU");
    ASSERT_NE(latest, nullptr);
    EXPECT_NEAR(latest->volts, 0.98, 0.01);
    EXPECT_GT(latest->watts, 50.0); // 48 active cores
}

TEST_F(TelemetryTest, CsvDumpWellFormed)
{
    eq.runUntil(bmc.commonPowerUp() + units::ms(1));
    bmc.telemetry().watch("STBY", 0x10);
    bmc.telemetry().start(units::ms(20));
    eq.runUntil(eq.now() + units::ms(100));
    bmc.telemetry().stop();
    eq.run();
    std::ostringstream os;
    bmc.telemetry().dumpCsv(os);
    const std::string csv = os.str();
    EXPECT_NE(csv.find("time_s,rail,volts,amps,watts,temp_c"),
              std::string::npos);
    EXPECT_NE(csv.find("STBY"), std::string::npos);
}

TEST_F(TelemetryTest, QueryOccupiesTheBus)
{
    // Each rail sample issues three PMBus reads; the paper's ~5 ms
    // per-regulator query dominates achievable sweep rates.
    eq.runUntil(bmc.commonPowerUp() + units::ms(1));
    const auto before = bmc.bus().transactions();
    bmc.telemetry().watch("CPU", 0x20);
    bmc.telemetry().start(units::ms(20));
    eq.runUntil(eq.now() + units::ms(50));
    bmc.telemetry().stop();
    eq.run();
    EXPECT_GE(bmc.bus().transactions() - before, 3u * 2u);
}

} // namespace
} // namespace enzian::bmc
