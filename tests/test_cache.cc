/**
 * @file
 * Unit and property tests for the MOESI cache.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "cache/cache.hh"
#include "cache/moesi.hh"

namespace enzian::cache {
namespace {

Cache::Config
smallConfig()
{
    Cache::Config cfg;
    cfg.size_bytes = 4 * 1024; // 32 lines
    cfg.ways = 4;              // 8 sets
    return cfg;
}

std::vector<std::uint8_t>
pattern(std::uint8_t seed)
{
    std::vector<std::uint8_t> d(lineSize);
    for (std::size_t i = 0; i < d.size(); ++i)
        d[i] = static_cast<std::uint8_t>(seed + i);
    return d;
}

TEST(Moesi, StatePredicates)
{
    EXPECT_FALSE(canRead(MoesiState::Invalid));
    EXPECT_TRUE(canRead(MoesiState::Shared));
    EXPECT_TRUE(canWrite(MoesiState::Modified));
    EXPECT_TRUE(canWrite(MoesiState::Exclusive));
    EXPECT_FALSE(canWrite(MoesiState::Shared));
    EXPECT_FALSE(canWrite(MoesiState::Owned));
    EXPECT_TRUE(isDirty(MoesiState::Modified));
    EXPECT_TRUE(isDirty(MoesiState::Owned));
    EXPECT_FALSE(isDirty(MoesiState::Exclusive));
}

/** Property sweep: the full pairwise MOESI compatibility matrix. */
class MoesiCompatTest
    : public ::testing::TestWithParam<
          std::tuple<MoesiState, MoesiState>>
{
};

TEST_P(MoesiCompatTest, MatrixIsSymmetricAndSound)
{
    const auto [a, b] = GetParam();
    EXPECT_EQ(compatible(a, b), compatible(b, a));
    // Never two concurrent writers, never a writer beside a reader.
    if (canWrite(a) && b != MoesiState::Invalid) {
        EXPECT_FALSE(compatible(a, b));
    }
    // Invalid coexists with everything.
    if (a == MoesiState::Invalid) {
        EXPECT_TRUE(compatible(a, b));
    }
    // S+S and O+S are legal.
    if (a == MoesiState::Shared && b == MoesiState::Shared) {
        EXPECT_TRUE(compatible(a, b));
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, MoesiCompatTest,
    ::testing::Combine(
        ::testing::Values(MoesiState::Invalid, MoesiState::Shared,
                          MoesiState::Exclusive, MoesiState::Owned,
                          MoesiState::Modified),
        ::testing::Values(MoesiState::Invalid, MoesiState::Shared,
                          MoesiState::Exclusive, MoesiState::Owned,
                          MoesiState::Modified)));

TEST(Moesi, LineAlignment)
{
    EXPECT_EQ(lineAlign(0), 0u);
    EXPECT_EQ(lineAlign(127), 0u);
    EXPECT_EQ(lineAlign(128), 128u);
    EXPECT_TRUE(isLineAligned(256));
    EXPECT_FALSE(isLineAligned(257));
}

TEST(Cache, MissThenHit)
{
    EventQueue eq;
    Cache c("l2", eq, smallConfig());
    EXPECT_EQ(c.access(0x1000), nullptr);
    EXPECT_EQ(c.misses(), 1u);
    c.fill(0x1000, MoesiState::Shared, pattern(1).data());
    EXPECT_NE(c.access(0x1000), nullptr);
    EXPECT_EQ(c.hits(), 1u);
}

TEST(Cache, DataRoundTrip)
{
    EventQueue eq;
    Cache c("l2", eq, smallConfig());
    const auto d = pattern(9);
    c.fill(0x2000, MoesiState::Exclusive, d.data());
    std::uint8_t back[lineSize];
    c.readData(0x2000, back, lineSize);
    EXPECT_EQ(std::memcmp(back, d.data(), lineSize), 0);

    const std::uint32_t word = 0xabcd1234;
    c.writeData(0x2000 + 16, &word, sizeof(word));
    std::uint32_t got = 0;
    c.readData(0x2000 + 16, &got, sizeof(got));
    EXPECT_EQ(got, word);
}

TEST(Cache, LruEvictsColdestWay)
{
    EventQueue eq;
    Cache::Config cfg = smallConfig(); // 8 sets x 4 ways
    Cache c("l2", eq, cfg);
    // Four lines mapping to set 0 (stride = sets * lineSize = 1024).
    const Addr stride = c.sets() * lineSize;
    for (Addr i = 0; i < 4; ++i)
        c.fill(i * stride, MoesiState::Shared, pattern(0).data());
    // Touch line 0 so line 1 becomes the LRU victim.
    c.access(0);
    auto ev = c.fill(4 * stride, MoesiState::Shared, pattern(0).data());
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(ev->addr, stride);
}

TEST(Cache, DirtyEvictionCarriesData)
{
    EventQueue eq;
    Cache c("l2", eq, smallConfig());
    const Addr stride = c.sets() * lineSize;
    const auto d = pattern(5);
    c.fill(0, MoesiState::Modified, d.data());
    for (Addr i = 1; i <= 4; ++i) {
        auto ev = c.fill(i * stride, MoesiState::Shared,
                         pattern(0).data());
        if (ev) {
            EXPECT_EQ(ev->addr, 0u);
            EXPECT_EQ(ev->state, MoesiState::Modified);
            EXPECT_EQ(std::memcmp(ev->data.data(), d.data(), lineSize),
                      0);
            return;
        }
    }
    FAIL() << "expected an eviction";
}

TEST(Cache, InvalidateReturnsDirtyDataOnly)
{
    EventQueue eq;
    Cache c("l2", eq, smallConfig());
    c.fill(0x100, MoesiState::Shared, pattern(1).data());
    EXPECT_FALSE(c.invalidate(0x100).has_value());
    EXPECT_EQ(c.probe(0x100), MoesiState::Invalid);

    c.fill(0x200, MoesiState::Modified, pattern(2).data());
    auto ev = c.invalidate(0x200);
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(ev->state, MoesiState::Modified);
}

TEST(Cache, SetStateTransitions)
{
    EventQueue eq;
    Cache c("l2", eq, smallConfig());
    c.fill(0x300, MoesiState::Exclusive, pattern(3).data());
    c.setState(0x300, MoesiState::Owned);
    EXPECT_EQ(c.probe(0x300), MoesiState::Owned);
    c.setState(0x300, MoesiState::Invalid);
    EXPECT_EQ(c.probe(0x300), MoesiState::Invalid);
}

TEST(Cache, ForEachLineVisitsAllValid)
{
    EventQueue eq;
    Cache c("l2", eq, smallConfig());
    c.fill(0x000, MoesiState::Shared, pattern(0).data());
    c.fill(0x480, MoesiState::Modified, pattern(1).data());
    std::set<Addr> seen;
    c.forEachLine([&](Addr a, const LineFrame &) { seen.insert(a); });
    EXPECT_EQ(seen, (std::set<Addr>{0x000, 0x480}));
}

TEST(Cache, RefillUpdatesExistingLine)
{
    EventQueue eq;
    Cache c("l2", eq, smallConfig());
    c.fill(0x500, MoesiState::Shared, pattern(1).data());
    auto ev = c.fill(0x500, MoesiState::Exclusive, pattern(2).data());
    EXPECT_FALSE(ev.has_value());
    EXPECT_EQ(c.probe(0x500), MoesiState::Exclusive);
    std::uint8_t b = 0;
    c.readData(0x500, &b, 1);
    EXPECT_EQ(b, 2);
}

TEST(CacheDeathTest, BadGeometryFatal)
{
    EventQueue eq;
    Cache::Config cfg;
    cfg.size_bytes = 1000; // not divisible by ways*lineSize
    cfg.ways = 4;
    EXPECT_EXIT(Cache("bad", eq, cfg), ::testing::ExitedWithCode(1),
                "divisible");
}

// ---------------------------------------------------------------------
// LLC way-partitioning policies (llc_policy.hh).
// ---------------------------------------------------------------------

TEST(LlcPolicy, WayPartitionIsolatesOwners)
{
    EventQueue eq;
    Cache::Config cfg = smallConfig(); // 4 ways, 8 sets
    cfg.policy = ReplPolicy::WayPartition;
    Cache c("l2", eq, cfg);
    // Two local lines fill owner 0's half of set 0 (set stride is
    // 8 * 128 = 0x400 in this geometry).
    c.fill(0x0000, MoesiState::Modified, pattern(1).data(),
           ownerLocal);
    c.fill(0x0400, MoesiState::Modified, pattern(2).data(),
           ownerLocal);
    // A remote stream through the same set thrashes only its own
    // two ways; the local working set survives untouched.
    for (Addr i = 0; i < 16; ++i) {
        c.fill(0x0800 + i * 0x400, MoesiState::Shared,
               pattern(3).data(), ownerRemote);
    }
    EXPECT_EQ(c.probe(0x0000), MoesiState::Modified);
    EXPECT_EQ(c.probe(0x0400), MoesiState::Modified);
    EXPECT_GE(c.evictions(), 14u); // the remote stream self-evicted
}

TEST(LlcPolicy, LookupsAndRefillsCrossThePartition)
{
    EventQueue eq;
    Cache::Config cfg = smallConfig();
    cfg.policy = ReplPolicy::WayPartition;
    Cache c("l2", eq, cfg);
    c.fill(0x1000, MoesiState::Shared, pattern(1).data(), ownerLocal);
    // A foreign owner still hits, and a re-fill over a resident line
    // updates in place regardless of who owns the way.
    EXPECT_NE(c.access(0x1000), nullptr);
    auto ev = c.fill(0x1000, MoesiState::Exclusive, pattern(2).data(),
                     ownerRemote);
    EXPECT_FALSE(ev.has_value());
    EXPECT_EQ(c.probe(0x1000), MoesiState::Exclusive);
}

TEST(LlcPolicy, AdaptiveMigratesWaysTowardPressure)
{
    WayAllocator::Config acfg;
    acfg.ways = 4;
    acfg.partitions = 2;
    acfg.policy = ReplPolicy::Adaptive;
    acfg.adapt_epoch = 8;
    WayAllocator a(acfg);
    EXPECT_EQ(a.waysOf(0), 2u);
    EXPECT_EQ(a.waysOf(1), 2u);
    // One epoch of pure owner-1 pressure moves one way across.
    for (int i = 0; i < 8; ++i)
        a.recordMiss(1);
    EXPECT_EQ(a.waysOf(1), 3u);
    EXPECT_EQ(a.waysOf(0), 1u);
    EXPECT_EQ(a.rebalances(), 1u);
}

TEST(LlcPolicy, AdaptiveNeverStarvesAnOwner)
{
    WayAllocator::Config acfg;
    acfg.ways = 4;
    acfg.partitions = 2;
    acfg.policy = ReplPolicy::Adaptive;
    acfg.adapt_epoch = 8;
    WayAllocator a(acfg);
    // However one-sided the load, the loser keeps one way.
    for (int i = 0; i < 8 * 16; ++i)
        a.recordMiss(1);
    EXPECT_EQ(a.waysOf(0), 1u);
    EXPECT_EQ(a.waysOf(1), 3u);
}

TEST(LlcPolicy, AdaptiveDriftsBackToEvenSplit)
{
    WayAllocator::Config acfg;
    acfg.ways = 4;
    acfg.partitions = 2;
    acfg.policy = ReplPolicy::Adaptive;
    acfg.adapt_epoch = 8;
    WayAllocator a(acfg);
    for (int i = 0; i < 8; ++i) // skew toward owner 1
        a.recordMiss(1);
    ASSERT_EQ(a.waysOf(1), 3u);
    // Symmetric misses: per-way pressure is now higher for owner 0
    // (fewer ways), so the split converges back to even and stays.
    for (int epoch = 0; epoch < 4; ++epoch) {
        for (int i = 0; i < 4; ++i) {
            a.recordMiss(0);
            a.recordMiss(1);
        }
    }
    EXPECT_EQ(a.waysOf(0), 2u);
    EXPECT_EQ(a.waysOf(1), 2u);
}

TEST(LlcPolicy, CacheUnderAdaptivePolicyRepartitions)
{
    EventQueue eq;
    Cache::Config cfg = smallConfig();
    cfg.policy = ReplPolicy::Adaptive;
    cfg.adapt_epoch = 16;
    Cache c("l2", eq, cfg);
    ASSERT_NE(c.allocator(), nullptr);
    // A pure remote streaming load grows the remote share.
    for (Addr i = 0; i < 64; ++i) {
        c.fill(0x10000 + i * 0x400, MoesiState::Shared,
               pattern(4).data(), ownerRemote);
    }
    EXPECT_EQ(c.allocator()->waysOf(ownerRemote), 3u);
    EXPECT_EQ(c.allocator()->waysOf(ownerLocal), 1u);
    EXPECT_GE(c.allocator()->rebalances(), 1u);
}

} // namespace
} // namespace enzian::cache
