/**
 * @file
 * Tests for the topology-as-data layer: parsing, round-tripping,
 * port numbering, distance, and validation.
 */

#include <gtest/gtest.h>

#include "cluster/topology.hh"

namespace enzian::cluster {
namespace {

TEST(Topology, UniformPortNumbering)
{
    const auto t = ClusterTopology::uniform(3, 4);
    EXPECT_EQ(t.nodeCount(), 3u);
    EXPECT_EQ(t.totalPorts(), 12u);
    EXPECT_EQ(t.firstPort(0), 0u);
    EXPECT_EQ(t.firstPort(2), 8u);
    EXPECT_EQ(t.portOf(1, 3), 7u);
    EXPECT_EQ(t.nodeOfPort(0), 0u);
    EXPECT_EQ(t.nodeOfPort(7), 1u);
    EXPECT_EQ(t.nodeOfPort(11), 2u);
}

TEST(Topology, HeterogeneousPortNumbering)
{
    // Nodes may patch different port counts into the switch.
    ClusterTopology t;
    t.nodes.push_back({"a", 2, 0.0});
    t.nodes.push_back({"b", 4, 0.0});
    t.nodes.push_back({"c", 1, 0.0});
    t.validate();
    EXPECT_EQ(t.totalPorts(), 7u);
    EXPECT_EQ(t.firstPort(1), 2u);
    EXPECT_EQ(t.firstPort(2), 6u);
    EXPECT_EQ(t.portOf(1, 3), 5u);
    EXPECT_EQ(t.nodeOfPort(1), 0u);
    EXPECT_EQ(t.nodeOfPort(5), 1u);
    EXPECT_EQ(t.nodeOfPort(6), 2u);
}

TEST(Topology, ParseDescribeRoundTrip)
{
    const std::string text = "# two-rack-unit test cluster\n"
                             "cluster name=rack9\n"
                             "node name=n0 ports=4 latency_ns=450\n"
                             "node name=n1 ports=2\n"
                             "node name=far ports=4 latency_ns=2000\n"
                             "service kind=kv node=0 "
                             "params=replicas=2,placement=dram\n"
                             "service kind=disagg node=2\n";
    const auto t = ClusterTopology::parse(text);
    EXPECT_EQ(t.name, "rack9");
    ASSERT_EQ(t.nodeCount(), 3u);
    EXPECT_EQ(t.nodes[0].name, "n0");
    EXPECT_DOUBLE_EQ(t.nodes[0].latency_ns, 450.0);
    EXPECT_EQ(t.nodes[1].ports, 2u);
    EXPECT_DOUBLE_EQ(t.nodes[1].latency_ns, 0.0);
    ASSERT_EQ(t.services.size(), 2u);
    EXPECT_EQ(t.services[0].kind, "kv");
    EXPECT_EQ(serviceParam(t.services[0], "replicas"), "2");
    EXPECT_EQ(serviceParam(t.services[0], "placement"), "dram");
    EXPECT_EQ(serviceParam(t.services[0], "missing"), "");

    // describe() is canonical and parse(describe()) is an identity.
    const auto again = ClusterTopology::parse(t.describe());
    EXPECT_EQ(again.describe(), t.describe());
    EXPECT_EQ(again.nodeCount(), t.nodeCount());
    EXPECT_EQ(again.services.size(), t.services.size());
}

TEST(Topology, DefaultNodeNamesAndServicesOf)
{
    const auto t = ClusterTopology::parse("node ports=4\n"
                                          "node ports=4\n"
                                          "service kind=kv node=1\n");
    EXPECT_EQ(t.nodes[0].name, "enzian0");
    EXPECT_EQ(t.nodes[1].name, "enzian1");
    const auto kv = t.servicesOf("kv");
    ASSERT_EQ(kv.size(), 1u);
    EXPECT_EQ(kv[0].node, 1u);
    EXPECT_TRUE(t.servicesOf("bridge").empty());
}

TEST(Topology, DistanceSumsEndpointLatencies)
{
    ClusterTopology t;
    t.nodes.push_back({"near", 4, 0.0});  // uses the default
    t.nodes.push_back({"mid", 4, 500.0});
    t.nodes.push_back({"far", 4, 2000.0});
    EXPECT_DOUBLE_EQ(t.distanceNs(0, 0, 450.0), 0.0);
    EXPECT_DOUBLE_EQ(t.distanceNs(0, 1, 450.0), 950.0);
    EXPECT_DOUBLE_EQ(t.distanceNs(1, 2, 450.0), 2500.0);
    EXPECT_DOUBLE_EQ(t.distanceNs(2, 0, 450.0), 2450.0);
}

TEST(TopologyDeath, MalformedInputIsFatal)
{
    // A typo must not silently change a rack.
    EXPECT_DEATH(ClusterTopology::parse("node prots=4\n"), "prots");
    EXPECT_DEATH(ClusterTopology::parse("nod name=x\n"), "nod");
    EXPECT_DEATH(ClusterTopology::parse("node ports=zero\n"), "zero");
}

TEST(TopologyDeath, ValidateRejectsBadRacks)
{
    ClusterTopology empty;
    EXPECT_DEATH(empty.validate(), "node");

    ClusterTopology dup;
    dup.nodes.push_back({"a", 4, 0.0});
    dup.nodes.push_back({"a", 4, 0.0});
    EXPECT_DEATH(dup.validate(), "a");

    ClusterTopology noports;
    noports.nodes.push_back({"a", 0, 0.0});
    EXPECT_DEATH(noports.validate(), "port");

    ClusterTopology badsvc;
    badsvc.nodes.push_back({"a", 4, 0.0});
    badsvc.services.push_back({"kv", 7, ""});
    EXPECT_DEATH(badsvc.validate(), "7");

    const auto t = ClusterTopology::uniform(2, 4);
    EXPECT_DEATH(t.portOf(2, 0), "node");
    EXPECT_DEATH(t.portOf(0, 4), "link");
    EXPECT_DEATH(t.nodeOfPort(8), "port");
}

} // namespace
} // namespace enzian::cluster
