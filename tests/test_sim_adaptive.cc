/**
 * @file
 * Tests for the adaptive-epoch scheduler, no-send promises, typed
 * channel lanes, and the finer machine domain splits: epochs must
 * grow exactly to the provable delivery bound (and shrink back on new
 * traffic), contract violations must die, and every adaptive or split
 * configuration must stay bit-identical across thread counts.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/enzian_cluster.hh"
#include "cluster/replicated_kv.hh"
#include "obs/registry.hh"
#include "platform/enzian_machine.hh"
#include "sim/channel_lane.hh"
#include "sim/cross_domain_channel.hh"
#include "sim/domain_scheduler.hh"

namespace enzian {
namespace {

constexpr Tick kLookahead = 100;

sim::DomainScheduler::Options
adaptiveOpts(std::uint32_t max_grow = 16)
{
    sim::DomainScheduler::Options o;
    o.adaptive = true;
    o.max_grow = max_grow;
    return o;
}

TEST(AdaptiveEpochs, GrowsToPromiseBoundAndExactBoundSendLands)
{
    // Domain a runs dense local events through [0, 600) under a
    // no-sends-before-600 promise, then sends at exactly now +
    // lookahead. The scheduler must cover the promised window in few,
    // long epochs, and the exact-bound message must still land on
    // time.
    sim::DomainScheduler sched("t.agrow", kLookahead, 1,
                               adaptiveOpts());
    auto &a = sched.addDomain("a");
    auto &b = sched.addDomain("b");
    auto &ab = sched.channel(a, b);

    a.promiseNoSendsBefore(600);
    for (Tick t = 0; t < 600; t += 5)
        a.queue().schedule(t, []() {});
    Tick delivered = 0;
    a.queue().schedule(600, [&]() {
        ab.push(600 + kLookahead,
                [&]() { delivered = b.queue().now(); });
    });
    sched.run();

    EXPECT_EQ(delivered, 600 + kLookahead);
    EXPECT_GT(sched.adaptiveGrows(), 0u);
    // 120 dense events would have needed 7 fixed epochs to reach tick
    // 600; the promise lets far fewer cover the same span.
    EXPECT_LT(sched.epochs(), 7u);
}

TEST(AdaptiveEpochs, ShrinksBackOnNewTraffic)
{
    // A promised-quiescent phase (grown epochs) followed by chatty
    // ping-pong: the first post-growth epoch must fall back to the
    // fixed step, counted as a shrink.
    sim::DomainScheduler sched("t.ashrink", kLookahead, 1,
                               adaptiveOpts());
    auto &a = sched.addDomain("a");
    auto &b = sched.addDomain("b");
    auto &ab = sched.channel(a, b);
    auto &ba = sched.channel(b, a);

    a.promiseNoSendsBefore(1000);
    for (Tick t = 0; t < 1000; t += 10)
        a.queue().schedule(t, []() {});
    int hops = 0;
    std::function<void()> pong;
    std::function<void()> ping = [&]() {
        if (++hops >= 8)
            return;
        ab.push(a.queue().now() + kLookahead, [&]() { pong(); });
    };
    pong = [&]() {
        if (++hops >= 8)
            return;
        ba.push(b.queue().now() + kLookahead, [&]() { ping(); });
    };
    a.queue().schedule(1000, [&]() { ping(); });
    sched.run();

    EXPECT_EQ(hops, 8);
    EXPECT_GT(sched.adaptiveGrows(), 0u);
    EXPECT_GT(sched.adaptiveShrinks(), 0u);
}

TEST(AdaptiveEpochs, NeverShorterThanFixedAndCapped)
{
    // No promises, no idle gaps: adaptive must degenerate to the
    // fixed schedule (same epoch count as a fixed-mode run).
    auto run = [](bool adaptive) {
        sim::DomainScheduler sched(
            adaptive ? "t.adegen.a" : "t.adegen.f", kLookahead, 1,
            adaptive ? adaptiveOpts() : sim::DomainScheduler::Options());
        auto &a = sched.addDomain("a");
        auto &b = sched.addDomain("b");
        auto &ab = sched.channel(a, b);
        for (int i = 0; i < 20; ++i) {
            a.queue().schedule(i * kLookahead, [&ab, &a]() {
                ab.push(a.queue().now() + kLookahead, []() {});
            });
        }
        sched.run();
        return sched.epochs();
    };
    EXPECT_EQ(run(true), run(false));
}

TEST(AdaptiveEpochsDeath, PromiseViolationDies)
{
    sim::DomainScheduler sched("t.aviolate", kLookahead, 1,
                               adaptiveOpts());
    auto &a = sched.addDomain("a");
    auto &b = sched.addDomain("b");
    auto &ab = sched.channel(a, b);
    a.promiseNoSendsBefore(500);
    a.queue().schedule(10, [&]() {
        ab.push(10 + kLookahead, []() {});
    });
    EXPECT_DEATH(sched.run(), "promise");
}

TEST(AdaptiveEpochsDeath, PerChannelLookaheadViolationDies)
{
    // A channel may declare a wider-than-base lookahead; a push that
    // honors the base but not the channel's own bound must die.
    sim::DomainScheduler sched("t.chanviolate", kLookahead, 1);
    auto &a = sched.addDomain("a");
    auto &b = sched.addDomain("b");
    auto &ab = sched.channel(a, b, 250);
    EXPECT_EQ(ab.lookahead(), 250u);
    EXPECT_DEATH(ab.push(kLookahead, []() {}), "lookahead");
}

TEST(ChannelLane, PreservesPushOrderAcrossLaneAndGenericEntries)
{
    sim::DomainScheduler sched("t.lane", kLookahead, 1);
    auto &a = sched.addDomain("a");
    auto &b = sched.addDomain("b");
    auto &ab = sched.channel(a, b);
    sim::ChannelLane<int> lane;
    std::vector<int> order;
    lane.attach(ab, [&](int &v) { order.push_back(v); });

    a.queue().schedule(0, [&]() {
        lane.push(kLookahead, 1);
        ab.push(kLookahead, [&]() { order.push_back(2); });
        lane.push(kLookahead, 3);
    });
    sched.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(ChannelLane, RecyclesSlotsAcrossEpochs)
{
    // Steady traffic far beyond one chunk's worth of total messages:
    // the arena must recycle retired slots at barriers instead of
    // growing without bound.
    sim::DomainScheduler sched("t.lanerec", kLookahead, 1);
    auto &a = sched.addDomain("a");
    auto &b = sched.addDomain("b");
    auto &ab = sched.channel(a, b);
    sim::ChannelLane<std::uint64_t> lane;
    std::uint64_t sum = 0;
    lane.attach(ab, [&](std::uint64_t &v) { sum += v; });

    constexpr int kEpochs = 50;
    constexpr int kPerEpoch = 64;
    for (int e = 0; e < kEpochs; ++e) {
        a.queue().schedule(e * kLookahead, [&, e]() {
            for (int i = 0; i < kPerEpoch; ++i)
                lane.push(a.queue().now() + kLookahead, 1);
            (void)e;
        });
    }
    sched.run();
    EXPECT_EQ(sum, static_cast<std::uint64_t>(kEpochs) * kPerEpoch);
    // <= 2 epochs of slots live at once (in flight + not yet
    // recycled): one 256-slot chunk is enough for 64/epoch.
    EXPECT_LE(lane.chunksAllocated(), 1u);
}

/** Completion tick traces of a small bidirectional ECI workload. */
struct MachineTrace
{
    std::vector<Tick> cpu, fpga;
    std::uint64_t events = 0;
    std::string registryJson;

    bool sameSimulation(const MachineTrace &o) const
    {
        return cpu == o.cpu && fpga == o.fpga && events == o.events;
    }
};

MachineTrace
machineWorkload(const platform::EnzianMachine::Config &base,
                std::uint32_t threads)
{
    platform::EnzianMachine::Config mc = base;
    mc.cpu_dram_bytes = 32ull << 20;
    mc.fpga_dram_bytes = 32ull << 20;
    mc.cores = 2;
    mc.threads = threads;
    mc.name = "tadapt";
    platform::EnzianMachine m(mc);

    MachineTrace tr;
    std::vector<std::uint8_t> buf(cache::lineSize, 0x5a);
    for (std::uint32_t i = 0; i < 24; ++i) {
        const Addr fline = mem::AddressMap::fpgaDramBase +
                           static_cast<Addr>(i) * cache::lineSize;
        m.cpuRemote().writeLine(fline, buf.data(), [&tr](Tick t) {
            tr.cpu.push_back(t);
        });
        const Addr cline = static_cast<Addr>(i) * cache::lineSize;
        m.fpgaRemote().readLineUncached(cline, nullptr, [&tr](Tick t) {
            tr.fpga.push_back(t);
        });
    }
    tr.events = m.run();
    // A long idle gap before phase 2 is exactly what adaptive epochs
    // exploit; results must not depend on it.
    const Tick phase2 = units::us(5.0);
    for (std::uint32_t i = 0; i < 24; ++i) {
        const Addr fline = mem::AddressMap::fpgaDramBase +
                           static_cast<Addr>(i) * cache::lineSize;
        m.fpgaEventq().schedule(phase2, [&m, &tr, fline]() {
            m.fpgaHome().localRead(fline, nullptr, [&tr](Tick t) {
                tr.fpga.push_back(t);
            });
        });
    }
    tr.events += m.run();
    std::ostringstream os;
    obs::Registry::global().exportJson(os);
    tr.registryJson = os.str();
    return tr;
}

TEST(AdaptiveMachine, RegistryByteIdenticalAcrossThreadCounts)
{
    platform::EnzianMachine::Config mc;
    mc.adaptive_epochs = true;
    const auto r1 = machineWorkload(mc, 1);
    const auto r2 = machineWorkload(mc, 2);
    const auto r4 = machineWorkload(mc, 4);
    const auto r8 = machineWorkload(mc, 8);
    ASSERT_EQ(r1.cpu.size(), 24u);
    ASSERT_EQ(r1.fpga.size(), 48u);
    EXPECT_TRUE(r1.sameSimulation(r2));
    EXPECT_TRUE(r1.sameSimulation(r4));
    EXPECT_TRUE(r1.sameSimulation(r8));
    // The whole observable state of the machine, byte for byte —
    // including the scheduler's own epoch_len / adaptive_* stats.
    EXPECT_FALSE(r1.registryJson.empty());
    EXPECT_EQ(r1.registryJson, r2.registryJson);
    EXPECT_EQ(r1.registryJson, r4.registryJson);
    EXPECT_EQ(r1.registryJson, r8.registryJson);
}

TEST(AdaptiveMachine, AdaptiveMatchesFixedSimulation)
{
    // The collision-free ECI workload above must produce identical
    // completion ticks whether epochs grow or not: adaptive changes
    // the synchronization schedule, never the simulation.
    platform::EnzianMachine::Config fixed;
    platform::EnzianMachine::Config adaptive;
    adaptive.adaptive_epochs = true;
    const auto rf = machineWorkload(fixed, 1);
    const auto ra = machineWorkload(adaptive, 1);
    EXPECT_EQ(rf.cpu, ra.cpu);
    EXPECT_EQ(rf.fpga, ra.fpga);
    EXPECT_EQ(rf.events, ra.events);
}

TEST(SplitDomains, RequireParallelMode)
{
    platform::EnzianMachine::Config mc;
    mc.split.bmc = true;
    mc.name = "tsplitbad";
    EXPECT_DEATH(platform::EnzianMachine m(mc), "require parallel");
}

TEST(SplitDomains, BmcAndNetSplitsPreserveTheSimulation)
{
    // Peeling the (idle) BMC and the empty net domain out changes no
    // timing at all: completion ticks match the unsplit machine.
    platform::EnzianMachine::Config plain;
    platform::EnzianMachine::Config split;
    split.split.bmc = true;
    split.split.net = true;
    const auto r0 = machineWorkload(plain, 1);
    const auto rs = machineWorkload(split, 1);
    EXPECT_EQ(r0.cpu, rs.cpu);
    EXPECT_EQ(r0.fpga, rs.fpga);
}

TEST(SplitDomains, MemSplitDeterministicAndFunctional)
{
    // The memory split adds two hops to every home-DRAM access, so
    // ticks differ from the unsplit machine by design — but the
    // workload must still complete correctly, identically at any
    // thread count, with or without adaptive epochs on top.
    platform::EnzianMachine::Config mc;
    mc.split.mem = true;
    mc.split.bmc = true;
    mc.split.net = true;
    mc.adaptive_epochs = true;
    const auto r1 = machineWorkload(mc, 1);
    const auto r4 = machineWorkload(mc, 4);
    ASSERT_EQ(r1.cpu.size(), 24u);
    ASSERT_EQ(r1.fpga.size(), 48u);
    EXPECT_TRUE(r1.sameSimulation(r4));
    EXPECT_EQ(r1.registryJson, r4.registryJson);

    // And the hop really is in the path: later than the unsplit run.
    platform::EnzianMachine::Config plain;
    const auto r0 = machineWorkload(plain, 1);
    EXPECT_GT(r1.cpu.front(), r0.cpu.front());
}

/** Rack KV workload (mirrors test_cluster_parallel) with adaptive. */
std::pair<std::vector<Tick>, std::string>
rackKvWorkload(std::uint32_t threads)
{
    constexpr std::uint32_t kNodes = 4;
    constexpr std::uint32_t kValueBytes = 128;
    cluster::EnzianCluster::Config cfg;
    cfg.nodes = kNodes;
    cfg.threads = threads;
    cfg.adaptive_epochs = true;
    cluster::EnzianCluster rack(cfg);

    cluster::ReplicatedKv::Config kcfg;
    kcfg.primary = 0;
    kcfg.replicas = {1, 2};
    kcfg.value_bytes = kValueBytes;
    cluster::ReplicatedKv kv("adaptkv", rack, kcfg);

    std::vector<std::vector<Tick>> trace(kNodes);
    std::vector<std::uint8_t> val(kValueBytes, 0x77);
    for (std::uint32_t n = 0; n < kNodes; ++n) {
        for (std::uint64_t k = 0; k < 4; ++k) {
            kv.put(n, n * 8 + k, val.data(),
                   [&trace, n](Tick t) { trace[n].push_back(t); });
        }
    }
    rack.run();

    const Tick phase2 = units::us(1000.0);
    std::vector<std::vector<std::uint8_t>> got(
        kNodes, std::vector<std::uint8_t>(kValueBytes));
    for (std::uint32_t n = 0; n < kNodes; ++n) {
        rack.node(n).fpgaEventq().schedule(phase2, [&, n]() {
            kv.get(n, ((n + 1) % kNodes) * 8, got[n].data(),
                   [&trace, n](Tick t) { trace[n].push_back(t); });
        });
    }
    rack.run();

    std::vector<Tick> ticks;
    for (const auto &t : trace)
        ticks.insert(ticks.end(), t.begin(), t.end());
    for (const auto &v : got)
        EXPECT_EQ(v, val);
    std::ostringstream os;
    obs::Registry::global().exportJson(os);
    return {ticks, os.str()};
}

TEST(AdaptiveCluster, RegistryByteIdenticalAcrossThreadCounts)
{
    const auto r1 = rackKvWorkload(1);
    const auto r2 = rackKvWorkload(2);
    const auto r4 = rackKvWorkload(4);
    const auto r8 = rackKvWorkload(8);
    ASSERT_EQ(r1.first.size(), 4u * 5u);
    EXPECT_EQ(r1.first, r2.first);
    EXPECT_EQ(r1.first, r4.first);
    EXPECT_EQ(r1.first, r8.first);
    EXPECT_FALSE(r1.second.empty());
    EXPECT_EQ(r1.second, r2.second);
    EXPECT_EQ(r1.second, r4.second);
    EXPECT_EQ(r1.second, r8.second);
}

} // namespace
} // namespace enzian
