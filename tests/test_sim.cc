/**
 * @file
 * Unit tests for the event kernel and clock domains.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "base/rng.hh"
#include "sim/clock_domain.hh"
#include "sim/event_queue.hh"
#include "sim/sim_object.hh"

namespace enzian {
namespace {

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(300, [&]() { order.push_back(3); });
    eq.schedule(100, [&]() { order.push_back(1); });
    eq.schedule(200, [&]() { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 300u);
}

TEST(EventQueue, SameTickFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(50, [&order, i]() { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelSuppressesEvent)
{
    EventQueue eq;
    bool ran = false;
    const EventId id = eq.schedule(10, [&]() { ran = true; });
    eq.cancel(id);
    eq.run();
    EXPECT_FALSE(ran);
}

TEST(EventQueue, RunUntilAdvancesTime)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(100, [&]() { ++count; });
    eq.schedule(500, [&]() { ++count; });
    EXPECT_EQ(eq.runUntil(200), 1u);
    EXPECT_EQ(eq.now(), 200u);
    EXPECT_EQ(count, 1);
    eq.run();
    EXPECT_EQ(count, 2);
}

TEST(EventQueue, EventsScheduleMoreEvents)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&]() {
        if (++depth < 5)
            eq.scheduleDelta(10, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(eq.now(), 40u);
}

TEST(EventQueue, DeltaSchedulesRelativeToNow)
{
    EventQueue eq;
    Tick fired_at = 0;
    eq.schedule(100, [&]() {
        eq.scheduleDelta(25, [&]() { fired_at = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(fired_at, 125u);
}

TEST(EventQueueDeathTest, SchedulingInPastPanics)
{
    EventQueue eq;
    eq.schedule(100, []() {});
    eq.run();
    EXPECT_DEATH(eq.schedule(50, []() {}), "in the past");
}

TEST(EventQueue, CountsSchedulingActivity)
{
    EventQueue eq;
    eq.schedule(1, []() {});
    eq.schedule(2, []() {});
    eq.run();
    EXPECT_EQ(eq.eventsScheduled(), 2u);
    EXPECT_EQ(eq.eventsExecuted(), 2u);
}

// Regression: cancelling an id that already ran (or was never
// issued) used to leak into the lazy-cancellation set forever. A
// stale cancel must be an exact no-op: no accounting drift, no
// retained memory, and the queue stays fully usable.
TEST(EventQueue, StaleCancelIsExactNoOp)
{
    EventQueue eq;
    const EventId id = eq.schedule(10, []() {});
    eq.run();
    EXPECT_TRUE(eq.empty());

    for (int i = 0; i < 1000; ++i)
        eq.cancel(id); // already executed
    eq.cancel(0);      // never a valid id
    eq.cancel(~EventId{0}); // never issued

    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.pendingCount(), 0u);
    EXPECT_EQ(eq.heapSize(), 0u);
    EXPECT_EQ(eq.slotPoolSize(), 1u); // slot recycled, not duplicated

    // Double-cancel of a live event: second one is stale.
    bool ran = false;
    const EventId live = eq.schedule(20, [&]() { ran = true; });
    eq.cancel(live);
    eq.cancel(live);
    EXPECT_TRUE(eq.empty());
    eq.run();
    EXPECT_FALSE(ran);
    EXPECT_EQ(eq.slotPoolSize(), 1u);
}

// Regression: with the old design, stale cancelled ids could make
// queue_.size() == cancelled_.size() coincide while a live event was
// still pending, so empty() reported true and run loops stopped
// early. empty() must track the live count exactly.
TEST(EventQueue, StaleCancelCannotFakeEmpty)
{
    EventQueue eq;
    const EventId a = eq.schedule(10, []() {});
    eq.run();
    eq.cancel(a); // stale: on the old kernel this lingered forever

    bool ran = false;
    eq.schedule(20, [&]() { ran = true; });
    // Old kernel: one heap entry + one stale cancelled id -> "empty".
    EXPECT_FALSE(eq.empty());
    EXPECT_EQ(eq.pendingCount(), 1u);
    EXPECT_EQ(eq.run(), 1u);
    EXPECT_TRUE(ran);
    EXPECT_TRUE(eq.empty());
}

// Cancel-mostly loads must not grow the heap without bound: stale
// nodes are compacted away once they dominate, and slots recycle
// through the free list.
TEST(EventQueue, CancelHeavySteadyStateMemory)
{
    EventQueue eq;
    std::vector<EventId> ids;
    for (int round = 0; round < 50; ++round) {
        ids.clear();
        for (int i = 0; i < 1000; ++i)
            ids.push_back(eq.schedule(1000 + i, []() {}));
        for (const EventId id : ids)
            eq.cancel(id);
        EXPECT_TRUE(eq.empty());
        EXPECT_EQ(eq.pendingCount(), 0u);
        // Compaction keeps cancelled residue bounded even though
        // nothing was ever popped.
        EXPECT_LE(eq.heapSize(), 128u);
    }
    // Slots are free-listed: 50k schedules reuse the same 1000 slots.
    EXPECT_LE(eq.slotPoolSize(), 1000u);
    EXPECT_EQ(eq.run(), 0u);
}

// Same-tick events run in schedule order, including when neighbors
// at the same tick are cancelled from outside or from a same-tick
// callback that runs earlier.
TEST(EventQueue, SameTickCancelNeighbors)
{
    EventQueue eq;
    std::vector<int> order;
    std::vector<EventId> ids(8);
    for (int i = 0; i < 8; ++i) {
        ids[static_cast<std::size_t>(i)] =
            eq.schedule(100, [&, i]() {
                order.push_back(i);
                if (i == 1)
                    eq.cancel(ids[2]); // same-tick later neighbor
            });
    }
    eq.cancel(ids[3]);
    eq.cancel(ids[6]);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 4, 5, 7}));
    EXPECT_EQ(eq.now(), 100u);
}

// Closures bigger than the inline buffer take the heap fallback but
// behave identically.
TEST(EventQueue, LargeClosureFallsBackToHeap)
{
    EventQueue eq;
    std::array<std::uint64_t, 16> payload{};
    payload[15] = 42;
    std::uint64_t seen = 0;
    eq.schedule(1, [payload, &seen]() { seen = payload[15]; });
    eq.run();
    EXPECT_EQ(seen, 42u);
}

TEST(EventQueue, ReusableEventSelfReschedulesOnOneSlot)
{
    EventQueue eq;
    int fired = 0;
    Event ev;
    ev.init(eq, [&]() {
        if (++fired < 100)
            ev.scheduleDelta(10);
    }, "tick");
    ev.schedule(0);
    EXPECT_TRUE(ev.scheduled());
    eq.run();
    EXPECT_EQ(fired, 100);
    EXPECT_FALSE(ev.scheduled());
    // The whole periodic train used exactly one slot and the heap
    // never held more than that one occurrence.
    EXPECT_EQ(eq.slotPoolSize(), 1u);
    EXPECT_EQ(eq.now(), 990u);
    EXPECT_EQ(eq.eventsExecuted(), 100u);
}

TEST(EventQueue, ReusableEventRescheduleAndCancel)
{
    EventQueue eq;
    int fired = 0;
    Event ev(eq, [&]() { ++fired; }, "t");
    ev.schedule(100);
    ev.reschedule(200); // move, not duplicate
    EXPECT_EQ(eq.pendingCount(), 1u);
    eq.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 200u);

    ev.scheduleDelta(50);
    ev.cancel();
    ev.cancel(); // idle cancel is a no-op
    EXPECT_FALSE(ev.scheduled());
    EXPECT_TRUE(eq.empty());
    eq.run();
    EXPECT_EQ(fired, 1);

    ev.reschedule(300); // reschedule from idle just arms
    eq.run();
    EXPECT_EQ(fired, 2);
}

// The callback may destroy the owning Event (and with it the slot);
// release is deferred until the callback returns.
TEST(EventQueue, EventOwnerDestroyedDuringDispatch)
{
    EventQueue eq;
    auto ev = std::make_unique<Event>();
    bool ran = false;
    ev->init(eq, [&]() {
        ran = true;
        ev.reset();
    }, "suicide");
    ev->schedule(10);
    eq.run();
    EXPECT_TRUE(ran);
    EXPECT_FALSE(ev);
    // The slot was recycled after dispatch: a fresh one-shot reuses
    // it instead of growing the pool.
    eq.schedule(20, []() {});
    eq.run();
    EXPECT_EQ(eq.slotPoolSize(), 1u);
}

/**
 * Naive reference kernel for the fuzz test below: an ordered map
 * keyed by (tick, insertion sequence). Trivially correct, trivially
 * deterministic — the real kernel must match it event for event.
 */
class RefKernel
{
  public:
    Tick now() const { return now_; }

    void
    schedule(Tick when, std::uint64_t token)
    {
        pending_.emplace(std::make_pair(when, seq_++), token);
    }

    /** Cancel by token; stale cancels are naturally no-ops. */
    void
    cancel(std::uint64_t token)
    {
        for (auto it = pending_.begin(); it != pending_.end(); ++it) {
            if (it->second == token) {
                pending_.erase(it);
                return;
            }
        }
    }

    bool
    runOne(std::vector<std::uint64_t> &out)
    {
        if (pending_.empty())
            return false;
        auto it = pending_.begin();
        now_ = it->first.first;
        out.push_back(it->second);
        pending_.erase(it);
        return true;
    }

    std::uint64_t
    runUntil(Tick limit, std::vector<std::uint64_t> &out)
    {
        std::uint64_t n = 0;
        while (!pending_.empty() &&
               pending_.begin()->first.first <= limit) {
            runOne(out);
            ++n;
        }
        now_ = limit;
        return n;
    }

  private:
    Tick now_ = 0;
    std::uint64_t seq_ = 0;
    std::map<std::pair<Tick, std::uint64_t>, std::uint64_t> pending_;
};

// Seeded fuzz: a random mix of schedule / cancel (live and stale) /
// runOne / runUntil must execute the exact same event order on the
// real kernel as on the naive reference model, with time in
// lockstep throughout.
TEST(EventQueue, FuzzMatchesNaiveReference)
{
    Rng rng(0xE21A0306);
    EventQueue eq;
    RefKernel ref;
    std::vector<std::uint64_t> got, want;
    std::vector<std::pair<std::uint64_t, EventId>> issued;
    std::uint64_t nextToken = 1;

    for (int step = 0; step < 20000; ++step) {
        const std::uint64_t pick = rng.below(100);
        if (pick < 55) {
            // Small deltas so same-tick ties are common.
            const Tick delta = rng.below(40);
            const std::uint64_t tok = nextToken++;
            const EventId id = eq.scheduleDelta(
                delta, [tok, &got]() { got.push_back(tok); });
            ref.schedule(ref.now() + delta, tok);
            issued.emplace_back(tok, id);
        } else if (pick < 70 && !issued.empty()) {
            // Cancel a random issued event: may be live, may be long
            // executed (stale) — both must agree across kernels.
            const auto &[tok, id] =
                issued[rng.below(issued.size())];
            eq.cancel(id);
            ref.cancel(tok);
        } else if (pick < 85) {
            const std::size_t mark = want.size();
            const bool a = eq.runOne();
            const bool b = ref.runOne(want);
            ASSERT_EQ(a, b);
            if (a) {
                ASSERT_EQ(got.back(), want[mark]);
            }
        } else {
            const Tick limit = eq.now() + rng.below(60);
            const std::uint64_t a = eq.runUntil(limit);
            const std::uint64_t b = ref.runUntil(limit, want);
            ASSERT_EQ(a, b);
            ASSERT_EQ(eq.now(), ref.now());
        }
    }

    // Drain both and compare the full execution history.
    eq.run();
    while (ref.runOne(want)) {
    }
    EXPECT_EQ(got, want);
    EXPECT_TRUE(eq.empty());
}

// Determinism across runs: the same seed must produce bitwise the
// same execution order twice — the kernel introduces no
// address-dependent or container-order-dependent tie-breaks.
TEST(EventQueue, FuzzIsReproducible)
{
    auto runOnce = [](std::uint64_t seed) {
        Rng rng(seed);
        EventQueue eq;
        std::vector<std::uint64_t> order;
        std::vector<EventId> ids;
        std::uint64_t tok = 0;
        for (int step = 0; step < 5000; ++step) {
            const std::uint64_t pick = rng.below(10);
            if (pick < 6) {
                const std::uint64_t t = tok++;
                ids.push_back(eq.scheduleDelta(
                    rng.below(25),
                    [t, &order]() { order.push_back(t); }));
            } else if (pick < 8 && !ids.empty()) {
                eq.cancel(ids[rng.below(ids.size())]);
            } else {
                eq.runOne();
            }
        }
        eq.run();
        return order;
    };
    EXPECT_EQ(runOnce(7), runOnce(7));
    EXPECT_NE(runOnce(7), runOnce(8)); // and the seed matters
}

TEST(ClockDomain, PeriodAndConversions)
{
    ClockDomain clk("t", 1e9); // 1 GHz -> 1000 ps
    EXPECT_EQ(clk.period(), 1000u);
    EXPECT_EQ(clk.cyclesToTicks(5), 5000u);
    EXPECT_EQ(clk.ticksToCycles(5000), 5u);
    EXPECT_EQ(clk.ticksToCycles(5001), 6u); // rounds up
}

TEST(ClockDomain, FrequencyChange)
{
    ClockDomain clk("fpga", 200e6);
    EXPECT_EQ(clk.period(), 5000u);
    clk.setFrequencyHz(300e6);
    EXPECT_NEAR(static_cast<double>(clk.period()), 3333.0, 1.0);
}

TEST(ClockDomainDeathTest, ZeroFrequencyFatal)
{
    EXPECT_EXIT(ClockDomain("bad", 0.0),
                ::testing::ExitedWithCode(1), "frequency");
}

TEST(SimObject, NameAndStats)
{
    EventQueue eq;
    SimObject obj("a.b.c", eq);
    EXPECT_EQ(obj.name(), "a.b.c");
    EXPECT_EQ(obj.stats().name(), "a.b.c");
    EXPECT_EQ(obj.now(), 0u);
}

} // namespace
} // namespace enzian
