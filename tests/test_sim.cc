/**
 * @file
 * Unit tests for the event kernel and clock domains.
 */

#include <gtest/gtest.h>

#include "sim/clock_domain.hh"
#include "sim/event_queue.hh"
#include "sim/sim_object.hh"

namespace enzian {
namespace {

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(300, [&]() { order.push_back(3); });
    eq.schedule(100, [&]() { order.push_back(1); });
    eq.schedule(200, [&]() { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 300u);
}

TEST(EventQueue, SameTickFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(50, [&order, i]() { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelSuppressesEvent)
{
    EventQueue eq;
    bool ran = false;
    const EventId id = eq.schedule(10, [&]() { ran = true; });
    eq.cancel(id);
    eq.run();
    EXPECT_FALSE(ran);
}

TEST(EventQueue, RunUntilAdvancesTime)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(100, [&]() { ++count; });
    eq.schedule(500, [&]() { ++count; });
    EXPECT_EQ(eq.runUntil(200), 1u);
    EXPECT_EQ(eq.now(), 200u);
    EXPECT_EQ(count, 1);
    eq.run();
    EXPECT_EQ(count, 2);
}

TEST(EventQueue, EventsScheduleMoreEvents)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&]() {
        if (++depth < 5)
            eq.scheduleDelta(10, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(eq.now(), 40u);
}

TEST(EventQueue, DeltaSchedulesRelativeToNow)
{
    EventQueue eq;
    Tick fired_at = 0;
    eq.schedule(100, [&]() {
        eq.scheduleDelta(25, [&]() { fired_at = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(fired_at, 125u);
}

TEST(EventQueueDeathTest, SchedulingInPastPanics)
{
    EventQueue eq;
    eq.schedule(100, []() {});
    eq.run();
    EXPECT_DEATH(eq.schedule(50, []() {}), "in the past");
}

TEST(EventQueue, CountsSchedulingActivity)
{
    EventQueue eq;
    eq.schedule(1, []() {});
    eq.schedule(2, []() {});
    eq.run();
    EXPECT_EQ(eq.eventsScheduled(), 2u);
    EXPECT_EQ(eq.eventsExecuted(), 2u);
}

TEST(ClockDomain, PeriodAndConversions)
{
    ClockDomain clk("t", 1e9); // 1 GHz -> 1000 ps
    EXPECT_EQ(clk.period(), 1000u);
    EXPECT_EQ(clk.cyclesToTicks(5), 5000u);
    EXPECT_EQ(clk.ticksToCycles(5000), 5u);
    EXPECT_EQ(clk.ticksToCycles(5001), 6u); // rounds up
}

TEST(ClockDomain, FrequencyChange)
{
    ClockDomain clk("fpga", 200e6);
    EXPECT_EQ(clk.period(), 5000u);
    clk.setFrequencyHz(300e6);
    EXPECT_NEAR(static_cast<double>(clk.period()), 3333.0, 1.0);
}

TEST(ClockDomainDeathTest, ZeroFrequencyFatal)
{
    EXPECT_EXIT(ClockDomain("bad", 0.0),
                ::testing::ExitedWithCode(1), "frequency");
}

TEST(SimObject, NameAndStats)
{
    EventQueue eq;
    SimObject obj("a.b.c", eq);
    EXPECT_EQ(obj.name(), "a.b.c");
    EXPECT_EQ(obj.stats().name(), "a.b.c");
    EXPECT_EQ(obj.now(), 0u);
}

} // namespace
} // namespace enzian
