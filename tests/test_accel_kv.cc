/**
 * @file
 * Tests for the FPGA-resident key-value store (the section 5.2
 * KV-Direct use-case): functional hash-table behaviour, tombstones,
 * collision chains, and the network front-end.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "accel/kv_store.hh"
#include "platform/enzian_machine.hh"
#include "platform/platform_factory.hh"

namespace enzian::accel {
namespace {

class KvFixture : public ::testing::Test
{
  protected:
    KvFixture()
    {
        auto mcfg = platform::enzianDefaultConfig();
        mcfg.cpu_dram_bytes = 64ull << 20;
        mcfg.fpga_dram_bytes = 256ull << 20;
        machine = std::make_unique<platform::EnzianMachine>(mcfg);
        net::Switch::Config scfg;
        scfg.port = platform::params::eth100Config();
        sw = std::make_unique<net::Switch>("sw", machine->eventq(), 2,
                                           scfg);
        KvStoreServer::Config kcfg;
        kcfg.port = 0;
        kcfg.slots = 1 << 16;
        server = std::make_unique<KvStoreServer>(
            "kv", machine->eventq(), *sw, machine->fpgaMem(), kcfg);
        client = std::make_unique<KvClient>("cli", machine->eventq(),
                                            *sw, 1, 0);
    }

    std::vector<std::uint8_t>
    val(const std::string &s)
    {
        return {s.begin(), s.end()};
    }

    std::unique_ptr<platform::EnzianMachine> machine;
    std::unique_ptr<net::Switch> sw;
    std::unique_ptr<KvStoreServer> server;
    std::unique_ptr<KvClient> client;
};

TEST_F(KvFixture, PutGetRoundTrip)
{
    auto v = val("enzian");
    EXPECT_TRUE(server->put(42, v.data(),
                            static_cast<std::uint32_t>(v.size())));
    auto got = server->get(42);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, v);
    EXPECT_EQ(server->occupied(), 1u);
}

TEST_F(KvFixture, MissReturnsNullopt)
{
    EXPECT_FALSE(server->get(123).has_value());
    EXPECT_EQ(server->misses(), 1u);
}

TEST_F(KvFixture, UpdateInPlace)
{
    auto v1 = val("one");
    auto v2 = val("twotwo");
    server->put(7, v1.data(), 3);
    server->put(7, v2.data(), 6);
    EXPECT_EQ(server->occupied(), 1u);
    auto got = server->get(7);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, v2);
}

TEST_F(KvFixture, DeleteLeavesTombstoneChainIntact)
{
    // Force a collision chain by filling many keys, then delete one
    // in the middle; later keys in the chain must stay reachable.
    std::vector<std::uint8_t> v{1, 2, 3};
    for (std::uint64_t k = 0; k < 2000; ++k)
        ASSERT_TRUE(server->put(k, v.data(), 3));
    EXPECT_TRUE(server->erase(1000));
    EXPECT_FALSE(server->get(1000).has_value());
    for (std::uint64_t k = 0; k < 2000; ++k) {
        if (k == 1000)
            continue;
        EXPECT_TRUE(server->get(k).has_value()) << k;
    }
    EXPECT_EQ(server->occupied(), 1999u);
    // A new insert reuses the tombstone eventually.
    EXPECT_TRUE(server->put(1000, v.data(), 3));
    EXPECT_TRUE(server->get(1000).has_value());
}

TEST_F(KvFixture, ModelCheckAgainstStdMap)
{
    // Randomized operation sequence mirrored against std::map.
    Rng rng(77);
    std::map<std::uint64_t, std::vector<std::uint8_t>> ref;
    for (int i = 0; i < 5000; ++i) {
        const std::uint64_t key = rng.below(600);
        switch (rng.below(3)) {
          case 0: {
            std::vector<std::uint8_t> v(rng.below(kvMaxValueBytes) + 1);
            for (auto &b : v)
                b = static_cast<std::uint8_t>(rng.next());
            ASSERT_TRUE(server->put(
                key, v.data(), static_cast<std::uint32_t>(v.size())));
            ref[key] = v;
            break;
          }
          case 1: {
            auto got = server->get(key);
            auto it = ref.find(key);
            ASSERT_EQ(got.has_value(), it != ref.end()) << key;
            if (got) {
                EXPECT_EQ(*got, it->second);
            }
            break;
          }
          case 2:
            EXPECT_EQ(server->erase(key), ref.erase(key) > 0) << key;
            break;
        }
    }
    EXPECT_EQ(server->occupied(), ref.size());
}

TEST_F(KvFixture, NetworkGetPutDelete)
{
    auto v = val("over-the-wire");
    bool put_ok = false;
    client->put(9, v.data(), static_cast<std::uint32_t>(v.size()),
                [&](Tick, bool ok) { put_ok = ok; });
    machine->eventq().run();
    ASSERT_TRUE(put_ok);

    bool found = false;
    std::vector<std::uint8_t> got;
    Tick latency = 0;
    const Tick t0 = machine->eventq().now();
    client->get(9, [&](Tick t, bool ok, std::vector<std::uint8_t> g) {
        found = ok;
        got = std::move(g);
        latency = t - t0;
    });
    machine->eventq().run();
    ASSERT_TRUE(found);
    EXPECT_EQ(got, v);
    // Round trip: network + fabric + one DRAM probe; single-digit us.
    EXPECT_GT(units::toMicros(latency), 1.0);
    EXPECT_LT(units::toMicros(latency), 10.0);

    bool del_ok = false;
    client->erase(9, [&](Tick, bool ok) { del_ok = ok; });
    machine->eventq().run();
    EXPECT_TRUE(del_ok);
    bool found2 = true;
    client->get(9, [&](Tick, bool ok, std::vector<std::uint8_t>) {
        found2 = ok;
    });
    machine->eventq().run();
    EXPECT_FALSE(found2);
}

TEST_F(KvFixture, ThroughputManyPipelinedGets)
{
    std::vector<std::uint8_t> v{0xab};
    for (std::uint64_t k = 0; k < 1000; ++k)
        server->put(k, v.data(), 1);
    std::uint32_t done = 0;
    Tick last = 0;
    const Tick t0 = machine->eventq().now();
    for (std::uint64_t k = 0; k < 1000; ++k) {
        client->get(k, [&](Tick t, bool ok,
                           std::vector<std::uint8_t>) {
            EXPECT_TRUE(ok);
            ++done;
            last = std::max(last, t);
        });
    }
    machine->eventq().run();
    ASSERT_EQ(done, 1000u);
    const double mops =
        1000.0 / units::toSeconds(last - t0) / 1e6;
    // The KV-Direct use-case: millions of ops/s from the fabric.
    EXPECT_GT(mops, 1.0);
}

TEST_F(KvFixture, RejectsOversizedValue)
{
    std::vector<std::uint8_t> big(kvMaxValueBytes + 1, 0);
    EXPECT_DEATH(server->put(1, big.data(),
                             static_cast<std::uint32_t>(big.size())),
                 "value of");
}

TEST(KvConfig, BadSlotCountFatal)
{
    auto mcfg = platform::enzianDefaultConfig();
    mcfg.cpu_dram_bytes = 64ull << 20;
    mcfg.fpga_dram_bytes = 64ull << 20;
    platform::EnzianMachine m(mcfg);
    net::Switch::Config scfg;
    scfg.port = platform::params::eth100Config();
    net::Switch sw("sw", m.eventq(), 2, scfg);
    KvStoreServer::Config kcfg;
    kcfg.slots = 1000; // not a power of two
    EXPECT_EXIT(KvStoreServer("kv", m.eventq(), sw, m.fpgaMem(), kcfg),
                ::testing::ExitedWithCode(1), "power of two");
}

} // namespace
} // namespace enzian::accel
