/**
 * @file
 * Tests for trace capture, the decoder, and the protocol checker.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "platform/enzian_machine.hh"
#include "platform/platform_factory.hh"
#include "trace/checker.hh"
#include "trace/decoder.hh"
#include "trace/eci_pcap.hh"

namespace enzian::trace {
namespace {

eci::EciMsg
msg(eci::Opcode op, std::uint32_t tid, Addr addr,
    mem::NodeId src = mem::NodeId::Cpu)
{
    eci::EciMsg m;
    m.op = op;
    m.src = src;
    m.dst = src == mem::NodeId::Cpu ? mem::NodeId::Fpga
                                    : mem::NodeId::Cpu;
    m.tid = tid;
    m.addr = addr;
    return m;
}

TEST(EciTrace, RoundTripThroughBytes)
{
    EciTrace t;
    t.record(100, msg(eci::Opcode::RLDD, 1, 0x1000));
    t.record(200, msg(eci::Opcode::PEMD, 1, 0x1000, mem::NodeId::Fpga));
    auto bytes = t.toBytes();

    EciTrace back;
    ASSERT_TRUE(back.fromBytes(bytes));
    ASSERT_EQ(back.size(), 2u);
    EXPECT_EQ(back.records()[0].when, 100u);
    EXPECT_EQ(back.records()[0].msg.op, eci::Opcode::RLDD);
    EXPECT_EQ(back.records()[1].msg.op, eci::Opcode::PEMD);
}

TEST(EciTrace, RejectsCorruptBuffer)
{
    EciTrace t;
    t.record(1, msg(eci::Opcode::RLDD, 1, 0));
    auto bytes = t.toBytes();
    bytes[0] ^= 0xff; // magic
    EciTrace back;
    EXPECT_FALSE(back.fromBytes(bytes));
    auto bytes2 = t.toBytes();
    bytes2.pop_back(); // truncated record
    EXPECT_FALSE(back.fromBytes(bytes2));
}

TEST(EciTrace, SaveLoadFile)
{
    EciTrace t;
    t.record(42, msg(eci::Opcode::RWBD, 9, 0x4000));
    const std::string path = "/tmp/enzian_trace_test.ecit";
    t.save(path);
    EciTrace back;
    back.load(path);
    std::remove(path.c_str());
    ASSERT_EQ(back.size(), 1u);
    EXPECT_EQ(back.records()[0].when, 42u);
}

TEST(Decoder, LineContainsKeyFields)
{
    const auto line =
        decodeLine({1500000, msg(eci::Opcode::RLDX, 77, 0xabc00)});
    EXPECT_NE(line.find("RLDX"), std::string::npos);
    EXPECT_NE(line.find("cpu->fpga"), std::string::npos);
    EXPECT_NE(line.find("tid=77"), std::string::npos);
    EXPECT_NE(line.find("abc00"), std::string::npos);
}

TEST(Decoder, SummaryCountsByOpcode)
{
    EciTrace t;
    t.record(0, msg(eci::Opcode::RLDD, 1, 0));
    t.record(10, msg(eci::Opcode::RLDD, 2, 128));
    t.record(20, msg(eci::Opcode::PEMD, 1, 0, mem::NodeId::Fpga));
    const auto s = summarize(t);
    EXPECT_EQ(s.messages, 3u);
    EXPECT_EQ(s.byOpcode.at("RLDD"), 2u);
    EXPECT_EQ(s.byOpcode.at("PEMD"), 1u);
    EXPECT_EQ(s.lastTick, 20u);
    std::ostringstream os;
    dumpSummary(s, os);
    EXPECT_NE(os.str().find("RLDD: 2"), std::string::npos);
}

TEST(Checker, CleanTraceFromRealMachine)
{
    platform::EnzianMachine::Config cfg =
        platform::enzianDefaultConfig();
    cfg.cpu_dram_bytes = 64ull << 20;
    cfg.fpga_dram_bytes = 64ull << 20;
    platform::EnzianMachine m(cfg);
    EciTrace trace;
    trace.attach(m.fabric());

    // Generate a mixed workload.
    std::uint32_t done = 0;
    for (int i = 0; i < 32; ++i) {
        const Addr fl = mem::AddressMap::fpgaDramBase +
                        static_cast<Addr>(i) * 128;
        std::vector<std::uint8_t> d(cache::lineSize,
                                    static_cast<std::uint8_t>(i));
        m.cpuRemote().writeLine(fl, d.data(), [&](Tick) { ++done; });
        m.fpgaRemote().readLineUncached(
            static_cast<Addr>(i) * 128, nullptr,
            [&](Tick) { ++done; });
    }
    bool flushed = false;
    m.eventq().run();
    m.cpuRemote().flushAll([&](Tick) { flushed = true; });
    m.eventq().run();
    ASSERT_TRUE(flushed);
    ASSERT_EQ(done, 64u);
    ASSERT_GT(trace.size(), 100u);

    ProtocolChecker checker;
    checker.check(trace);
    checker.finalize();
    EXPECT_TRUE(checker.clean())
        << "first violation: "
        << (checker.violations().empty() ? ""
                                         : checker.violations()[0]);
}

TEST(Checker, FlagsResponseWithoutRequest)
{
    EciTrace t;
    t.record(0, msg(eci::Opcode::PEMD, 5, 0, mem::NodeId::Fpga));
    ProtocolChecker c;
    c.check(t);
    EXPECT_FALSE(c.clean());
}

TEST(Checker, FlagsUnansweredRequestAtFinalize)
{
    EciTrace t;
    t.record(0, msg(eci::Opcode::RLDD, 5, 0));
    ProtocolChecker c;
    c.check(t);
    EXPECT_TRUE(c.clean());
    c.finalize();
    EXPECT_FALSE(c.clean());
}

TEST(Checker, FlagsIncompatibleStates)
{
    // Two exclusive grants for the same line without an intervening
    // invalidation.
    EciTrace t;
    t.record(0, msg(eci::Opcode::RLDD, 1, 0));
    auto grant = msg(eci::Opcode::PEMD, 1, 0, mem::NodeId::Fpga);
    grant.grant = eci::Grant::Shared;
    t.record(10, grant);
    // Home then claims it holds Modified (simulated by a bogus
    // writeback *from* the home side with no ownership).
    t.record(20, msg(eci::Opcode::RWBD, 9, 0, mem::NodeId::Fpga));
    ProtocolChecker c;
    c.check(t);
    EXPECT_FALSE(c.clean());
}

TEST(Checker, FlagsTidReuse)
{
    EciTrace t;
    t.record(0, msg(eci::Opcode::RLDD, 3, 0));
    t.record(5, msg(eci::Opcode::RLDD, 3, 256));
    ProtocolChecker c;
    c.check(t);
    EXPECT_FALSE(c.clean());
}

TEST(Checker, TracksInferredStates)
{
    EciTrace t;
    t.record(0, msg(eci::Opcode::RLDX, 1, 0x80));
    auto grant = msg(eci::Opcode::PEMD, 1, 0x80, mem::NodeId::Fpga);
    grant.grant = eci::Grant::Exclusive;
    t.record(10, grant);
    ProtocolChecker c;
    c.check(t);
    EXPECT_EQ(c.inferredState(mem::NodeId::Cpu, 0x80),
              cache::MoesiState::Exclusive);
    EXPECT_EQ(c.inferredState(mem::NodeId::Fpga, 0x80),
              cache::MoesiState::Invalid);
}

} // namespace
} // namespace enzian::trace
