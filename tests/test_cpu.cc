/**
 * @file
 * Tests for the core/cluster timing model and PMU.
 */

#include <gtest/gtest.h>

#include "cpu/core.hh"
#include "cpu/core_cluster.hh"

namespace enzian::cpu {
namespace {

StreamKernel
simpleKernel()
{
    StreamKernel k;
    k.compute_cycles_per_item = 50.0;
    k.instructions_per_item = 40.0;
    k.items_per_line = 32.0;
    k.refill_latency_ns = 100.0; // 200 cycles at 2 GHz
    k.prefetch_coverage = 0.5;   // 100 exposed cycles per refill
    k.interconnect_bytes_per_item = 4.0;
    return k;
}

TEST(Pmu, DerivedRatios)
{
    PmuSample s;
    s.cycles = 1000;
    s.instructions = 500;
    s.memStallCycles = 25;
    s.l1Refills = 10;
    EXPECT_DOUBLE_EQ(s.memStallsPerCycle(), 0.025);
    EXPECT_DOUBLE_EQ(s.cyclesPerL1Refill(), 100.0);
    EXPECT_DOUBLE_EQ(s.ipc(), 0.5);
}

TEST(Pmu, AggregationAcrossCores)
{
    PmuSample a, b;
    a.cycles = b.cycles = 100;
    a.l1Refills = 3;
    b.l1Refills = 4;
    a += b;
    EXPECT_EQ(a.cycles, 200u);
    EXPECT_EQ(a.l1Refills, 7u);
}

TEST(Core, CyclesPerItemDecomposition)
{
    EventQueue eq;
    Core core("c", eq);
    const auto r = core.run(simpleKernel(), 32000);
    // exposed stall = (1-0.5)*200/32 = 3.125 cyc/item; total 53.125.
    EXPECT_NEAR(static_cast<double>(r.pmu.cycles), 53.125 * 32000,
                100.0);
    EXPECT_NEAR(static_cast<double>(r.pmu.memStallCycles),
                3.125 * 32000, 10.0);
    EXPECT_EQ(r.pmu.l1Refills, 1000u);
    EXPECT_NEAR(r.itemRate, 2e9 / 53.125, 1e5);
}

TEST(Core, PerfectPrefetchEliminatesStalls)
{
    EventQueue eq;
    Core core("c", eq);
    StreamKernel k = simpleKernel();
    k.prefetch_coverage = 1.0;
    const auto r = core.run(k, 1000);
    EXPECT_EQ(r.pmu.memStallCycles, 0u);
    EXPECT_NEAR(r.itemRate, 2e9 / 50.0, 1e5);
}

TEST(Core, InterconnectRateFollowsItemRate)
{
    EventQueue eq;
    Core core("c", eq);
    const auto r = core.run(simpleKernel(), 1000);
    EXPECT_NEAR(r.interconnectRate, r.itemRate * 4.0, 1.0);
}

TEST(Cluster, LinearScalingWithoutCeiling)
{
    EventQueue eq;
    CoreCluster cluster("cl", eq, 48);
    const auto k = simpleKernel();
    const auto r1 = cluster.runParallel(k, 1, 48000, 0);
    const auto r48 = cluster.runParallel(k, 48, 48000, 0);
    EXPECT_NEAR(r48.itemRate / r1.itemRate, 48.0, 0.5);
    EXPECT_FALSE(r48.bandwidthBound);
}

TEST(Cluster, BandwidthCeilingCapsThroughput)
{
    EventQueue eq;
    CoreCluster cluster("cl", eq, 48);
    const auto k = simpleKernel();
    const auto free_run = cluster.runParallel(k, 48, 480000, 0);
    const double ceiling = free_run.interconnectRate / 2.0;
    const auto capped = cluster.runParallel(k, 48, 480000, ceiling);
    EXPECT_TRUE(capped.bandwidthBound);
    EXPECT_NEAR(capped.interconnectRate, ceiling, ceiling * 0.02);
    EXPECT_NEAR(capped.itemRate, free_run.itemRate / 2.0,
                free_run.itemRate * 0.02);
    // Waiting shows up as extra stall cycles.
    EXPECT_GT(capped.pmu.memStallCycles, free_run.pmu.memStallCycles);
}

TEST(Cluster, UnevenItemSplitStillCountsAll)
{
    EventQueue eq;
    CoreCluster cluster("cl", eq, 7);
    const auto r = cluster.runParallel(simpleKernel(), 7, 100, 0);
    // 100 items over 7 cores; all items accounted in the PMU refills.
    EXPECT_NEAR(static_cast<double>(r.pmu.instructions), 4000.0, 50.0);
}

TEST(ClusterDeathTest, BadActiveCountPanics)
{
    EventQueue eq;
    CoreCluster cluster("cl", eq, 4);
    EXPECT_DEATH(cluster.runParallel(simpleKernel(), 5, 10, 0),
                 "active core count");
}

} // namespace
} // namespace enzian::cpu
