/**
 * @file
 * Tests for GBDT ensembles and the inference engine (Figure 9
 * workload).
 */

#include <gtest/gtest.h>

#include <set>

#include "accel/gbdt.hh"
#include "accel/gbdt_engine.hh"
#include "platform/platform_factory.hh"

namespace enzian::accel {
namespace {

TEST(DecisionTree, HandBuiltTreeScores)
{
    // x[0] < 0 ? 1.0 : (x[1] < 0.5 ? 2.0 : 3.0)
    std::vector<TreeNode> nodes(5);
    nodes[0] = {0, 0.0f, 0.0f, false, 1, 2};
    nodes[1].isLeaf = true;
    nodes[1].value = 1.0f;
    nodes[2] = {1, 0.5f, 0.0f, false, 3, 4};
    nodes[3].isLeaf = true;
    nodes[3].value = 2.0f;
    nodes[4].isLeaf = true;
    nodes[4].value = 3.0f;
    DecisionTree t(std::move(nodes));
    const float a[2] = {-1.0f, 0.0f};
    const float b[2] = {1.0f, 0.0f};
    const float c[2] = {1.0f, 1.0f};
    EXPECT_FLOAT_EQ(t.score(a), 1.0f);
    EXPECT_FLOAT_EQ(t.score(b), 2.0f);
    EXPECT_FLOAT_EQ(t.score(c), 3.0f);
    EXPECT_EQ(t.depth(), 3u);
}

TEST(GbdtEnsemble, PredictionIsSumOfTrees)
{
    auto leaf = [](float v) {
        std::vector<TreeNode> n(1);
        n[0].isLeaf = true;
        n[0].value = v;
        return DecisionTree(std::move(n));
    };
    std::vector<DecisionTree> trees;
    trees.push_back(leaf(0.5f));
    trees.push_back(leaf(1.5f));
    GbdtEnsemble e(std::move(trees));
    const float x[1] = {0.0f};
    EXPECT_FLOAT_EQ(e.predict(x), 2.0f);
}

TEST(GbdtEnsemble, SyntheticGenerationShape)
{
    auto e = makeEnsemble(1, 32, 5, 8);
    EXPECT_EQ(e.treeCount(), 32u);
    EXPECT_EQ(e.totalNodes(), 32u * 31u); // complete depth-5 trees
}

TEST(GbdtEnsemble, DeterministicAcrossBuilds)
{
    auto e1 = makeEnsemble(7, 8, 4, 8);
    auto e2 = makeEnsemble(7, 8, 4, 8);
    auto tuples = makeTuples(3, 100, 8);
    for (std::size_t i = 0; i < 100; ++i) {
        EXPECT_FLOAT_EQ(e1.predict(&tuples[i * 8]),
                        e2.predict(&tuples[i * 8]));
    }
}

TEST(GbdtEnsemble, PredictionsVaryAcrossTuples)
{
    auto e = makeEnsemble(11, 16, 5, 8);
    auto tuples = makeTuples(5, 50, 8);
    std::set<float> distinct;
    for (std::size_t i = 0; i < 50; ++i)
        distinct.insert(e.predict(&tuples[i * 8]));
    EXPECT_GT(distinct.size(), 10u);
}

class GbdtEngineTest : public ::testing::Test
{
  protected:
    GbdtEngineTest() : ensemble(makeEnsemble(1, 32, 5, 8)) {}

    EventQueue eq;
    GbdtEnsemble ensemble;
};

TEST_F(GbdtEngineTest, ScoresMatchReference)
{
    auto cfg = platform::gbdtPlatformConfig("Enzian", 1);
    GbdtEngine engine("e", eq, ensemble, cfg);
    auto tuples = makeTuples(2, 1000, cfg.features);
    auto r = engine.infer(tuples.data(), 1000);
    ASSERT_EQ(r.scores.size(), 1000u);
    for (std::size_t i = 0; i < 1000; ++i) {
        EXPECT_FLOAT_EQ(r.scores[i],
                        ensemble.predict(&tuples[i * cfg.features]));
    }
}

/** Figure 9 calibration: platform x engines -> Mtuples/s. */
struct Fig9Case
{
    const char *platform;
    std::uint32_t engines;
    double expect_mtps;
};

class Fig9Calibration : public ::testing::TestWithParam<Fig9Case>
{
};

TEST_P(Fig9Calibration, ThroughputMatchesPaper)
{
    const auto p = GetParam();
    EventQueue eq;
    auto ensemble = makeEnsemble(1, 32, 5, 8);
    GbdtEngine engine(
        "e", eq, ensemble,
        platform::gbdtPlatformConfig(p.platform, p.engines));
    auto tuples = makeTuples(2, 4096, 8);
    auto r = engine.infer(tuples.data(), 4096);
    EXPECT_NEAR(r.tuplesPerSecond / 1e6, p.expect_mtps,
                p.expect_mtps * 0.05)
        << p.platform << " x" << p.engines;
}

INSTANTIATE_TEST_SUITE_P(
    PaperNumbers, Fig9Calibration,
    ::testing::Values(Fig9Case{"Harp-v2", 1, 33.0},
                      Fig9Case{"Amazon-F1", 1, 24.0},
                      Fig9Case{"VCU118", 1, 41.0},
                      Fig9Case{"Enzian", 1, 48.0},
                      Fig9Case{"Harp-v2", 2, 66.0},
                      Fig9Case{"Amazon-F1", 2, 48.0},
                      Fig9Case{"VCU118", 2, 81.0},
                      Fig9Case{"Enzian", 2, 96.0}));

TEST_F(GbdtEngineTest, TransferBoundWhenHostLinkSlow)
{
    auto cfg = platform::gbdtPlatformConfig("Enzian", 2);
    cfg.host_bw = 1e9; // strangle the link
    GbdtEngine engine("e", eq, ensemble, cfg);
    auto tuples = makeTuples(2, 100, cfg.features);
    auto r = engine.infer(tuples.data(), 100);
    EXPECT_TRUE(r.transferBound);
    EXPECT_LT(r.tuplesPerSecond, 96e6);
}

TEST_F(GbdtEngineTest, WorkloadStaysUnderPaperHostBandwidth)
{
    // Paper: the workload "uses no more than 4 GB/s" to host memory.
    auto cfg = platform::gbdtPlatformConfig("Enzian", 2);
    GbdtEngine engine("e", eq, ensemble, cfg);
    auto tuples = makeTuples(2, 100, cfg.features);
    auto r = engine.infer(tuples.data(), 100);
    const double bytes_per_tuple = engine.tupleBytes() + sizeof(float);
    EXPECT_LT(r.tuplesPerSecond * bytes_per_tuple, 4e9);
}

TEST(GbdtEngineDeathTest, BadConfigFatal)
{
    EventQueue eq;
    auto ensemble = makeEnsemble(1, 2, 2, 2);
    GbdtEngine::Config cfg;
    cfg.engines = 0;
    EXPECT_EXIT(GbdtEngine("bad", eq, ensemble, cfg),
                ::testing::ExitedWithCode(1), "bad configuration");
}

} // namespace
} // namespace enzian::accel
