/**
 * @file
 * Coverage for the wire-format corners: the uncached I/O space, the
 * ECI serialization format under truncation at every byte boundary,
 * and the trace capture/decoder error paths.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "eci/eci_serialize.hh"
#include "eci/io_space.hh"
#include "trace/decoder.hh"
#include "trace/eci_pcap.hh"

namespace enzian {
namespace {

// ----------------------------------------------------------- IoSpace

TEST(IoSpace, RoutesReadsAndWritesToTheOwningWindow)
{
    eci::IoSpace io;
    std::uint64_t reg = 0x1122334455667788ull;
    Addr last_off = ~0ull;
    std::uint32_t last_len = 0;
    eci::IoDevice dev;
    dev.read = [&](Addr off, std::uint32_t len) {
        last_off = off;
        last_len = len;
        return reg;
    };
    dev.write = [&](Addr off, std::uint64_t data, std::uint32_t len) {
        last_off = off;
        last_len = len;
        reg = data;
    };
    io.map("csr", 0x1000, 0x100, dev);

    EXPECT_EQ(io.read(0x1010, 8), reg);
    // The handler sees window-relative offsets.
    EXPECT_EQ(last_off, 0x10u);
    EXPECT_EQ(last_len, 8u);

    io.write(0x10f8, 0xdeadbeef, 4);
    EXPECT_EQ(last_off, 0xf8u);
    EXPECT_EQ(reg, 0xdeadbeefu);
}

TEST(IoSpace, UnmappedAccessesAreInert)
{
    eci::IoSpace io;
    bool touched = false;
    eci::IoDevice dev;
    dev.read = [&](Addr, std::uint32_t) {
        touched = true;
        return std::uint64_t(7);
    };
    dev.write = [&](Addr, std::uint64_t, std::uint32_t) {
        touched = true;
    };
    io.map("csr", 0x1000, 0x100, dev);

    EXPECT_EQ(io.read(0x0, 8), 0u);     // below the window
    EXPECT_EQ(io.read(0x1100, 8), 0u);  // first byte past the end
    EXPECT_EQ(io.read(0x20000, 4), 0u); // far away
    io.write(0xfff, 0xff, 1);           // one byte below
    io.write(0x1100, 0xff, 1);
    EXPECT_FALSE(touched);
}

TEST(IoSpace, MappedCoversExactWindowBounds)
{
    eci::IoSpace io;
    io.map("a", 0x1000, 0x40, eci::IoDevice{});
    io.map("b", 0x2000, 0x8, eci::IoDevice{});
    EXPECT_FALSE(io.mapped(0xfff));
    EXPECT_TRUE(io.mapped(0x1000));
    EXPECT_TRUE(io.mapped(0x103f));
    EXPECT_FALSE(io.mapped(0x1040));
    EXPECT_TRUE(io.mapped(0x2007));
    EXPECT_FALSE(io.mapped(0x2008));
}

TEST(IoSpace, MultipleWindowsStayIndependent)
{
    eci::IoSpace io;
    std::uint64_t a = 0, b = 0;
    eci::IoDevice da;
    da.write = [&](Addr, std::uint64_t d, std::uint32_t) { a = d; };
    da.read = [&](Addr, std::uint32_t) { return a; };
    eci::IoDevice db;
    db.write = [&](Addr, std::uint64_t d, std::uint32_t) { b = d; };
    db.read = [&](Addr, std::uint32_t) { return b; };
    io.map("a", 0x0, 0x100, da);
    io.map("b", 0x100, 0x100, db);
    io.write(0x10, 1, 8);
    io.write(0x110, 2, 8);
    EXPECT_EQ(io.read(0x10, 8), 1u);
    EXPECT_EQ(io.read(0x110, 8), 2u);
}

// ------------------------------------------------------ eci_serialize

eci::EciMsg
sampleMsg(eci::Opcode op)
{
    eci::EciMsg m;
    m.op = op;
    m.src = mem::NodeId::Cpu;
    m.dst = mem::NodeId::Fpga;
    m.tid = 0xabcd;
    m.addr = 0x12340080;
    if (op == eci::Opcode::IOBLD || op == eci::Opcode::IOBST)
        m.ioLen = 8;
    if (eci::carriesLine(op)) {
        for (std::size_t i = 0; i < m.line.size(); ++i)
            m.line[i] = static_cast<std::uint8_t>(i ^ 0x5a);
    }
    return m;
}

TEST(WireFormats, TruncationRejectedAtEveryLengthWithLinePayload)
{
    const auto bytes = eci::serialize(sampleMsg(eci::Opcode::RSTT));
    ASSERT_EQ(bytes.size(), eci::headerBytes + cache::lineSize);
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        std::size_t consumed = 0;
        EXPECT_FALSE(
            eci::deserialize(bytes.data(), len, consumed).has_value())
            << "accepted a frame truncated to " << len << " bytes";
    }
    std::size_t consumed = 0;
    const auto full =
        eci::deserialize(bytes.data(), bytes.size(), consumed);
    ASSERT_TRUE(full.has_value());
    EXPECT_EQ(consumed, bytes.size());
    EXPECT_EQ(full->line, sampleMsg(eci::Opcode::RSTT).line);
}

TEST(WireFormats, TruncationRejectedAtEveryLengthHeaderOnly)
{
    const auto bytes = eci::serialize(sampleMsg(eci::Opcode::IOBLD));
    ASSERT_EQ(bytes.size(), eci::headerBytes);
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        std::size_t consumed = 0;
        EXPECT_FALSE(
            eci::deserialize(bytes.data(), len, consumed).has_value())
            << "accepted a header truncated to " << len << " bytes";
    }
    std::size_t consumed = 0;
    EXPECT_TRUE(eci::deserialize(bytes.data(), bytes.size(), consumed)
                    .has_value());
}

TEST(WireFormats, EveryMagicByteIsChecked)
{
    const auto good = eci::serialize(sampleMsg(eci::Opcode::RLDD));
    for (std::size_t i = 0; i < 4; ++i) {
        auto bad = good;
        bad[i] ^= 0x80;
        std::size_t consumed = 0;
        EXPECT_FALSE(
            eci::deserialize(bad.data(), bad.size(), consumed)
                .has_value())
            << "magic byte " << i << " not validated";
    }
}

// ----------------------------------------------------- trace decoder

trace::EciTrace
sampleTrace()
{
    trace::EciTrace t;
    t.record(units::us(1.0), sampleMsg(eci::Opcode::RLDD));
    t.record(units::us(2.0), sampleMsg(eci::Opcode::PEMD));
    t.record(units::us(3.0), sampleMsg(eci::Opcode::IOBST));
    return t;
}

TEST(WireFormats, TraceRejectsShortAndCorruptHeaders)
{
    trace::EciTrace t;
    EXPECT_FALSE(t.fromBytes({}));
    EXPECT_FALSE(t.fromBytes({0x45, 0x43, 0x49})); // < header
    auto bytes = sampleTrace().toBytes();
    bytes[0] ^= 0xff; // magic
    EXPECT_FALSE(t.fromBytes(bytes));
    bytes[0] ^= 0xff;
    bytes[4] = 0x7f; // unsupported version
    EXPECT_FALSE(t.fromBytes(bytes));
}

TEST(WireFormats, TraceTruncationKeepsThePrefix)
{
    const auto bytes = sampleTrace().toBytes();
    trace::EciTrace t;
    // Chop mid-way through the last record: parse fails but the
    // records decoded before the cut survive for inspection.
    std::vector<std::uint8_t> cut(bytes.begin(), bytes.end() - 7);
    EXPECT_FALSE(t.fromBytes(cut));
    EXPECT_EQ(t.size(), 2u);
    // A record whose length field overruns the buffer also fails.
    auto overrun = bytes;
    overrun[8 + 8] = 0xff; // first record's length, low byte
    EXPECT_FALSE(t.fromBytes(overrun));
}

TEST(WireFormats, TraceRejectsEmbeddedGarbageMessage)
{
    auto bytes = sampleTrace().toBytes();
    // Corrupt the first record's message magic (record header is
    // tick u64 + length u32, so the body starts at 8 + 12).
    bytes[8 + 12] ^= 0xff;
    trace::EciTrace t;
    EXPECT_FALSE(t.fromBytes(bytes));
}

TEST(WireFormats, DecoderSummarizesAndDumpsErrorFreeTraces)
{
    const trace::EciTrace t = sampleTrace();
    const trace::TraceSummary s = trace::summarize(t);
    EXPECT_EQ(s.messages, 3u);
    EXPECT_EQ(s.byOpcode.at("RLDD"), 1u);
    EXPECT_EQ(s.firstTick, units::us(1.0));
    EXPECT_EQ(s.lastTick, units::us(3.0));
    std::ostringstream os;
    trace::dumpText(t, os);
    EXPECT_NE(os.str().find("RLDD"), std::string::npos);
    EXPECT_NE(os.str().find("IOBST"), std::string::npos);
}

TEST(WireFormats, DecoderHandlesEmptyTrace)
{
    const trace::EciTrace t;
    const trace::TraceSummary s = trace::summarize(t);
    EXPECT_EQ(s.messages, 0u);
    EXPECT_EQ(s.bytes, 0u);
    std::ostringstream os;
    trace::dumpText(t, os);
    trace::dumpSummary(s, os); // must not crash on zero messages
}

} // namespace
} // namespace enzian
