/**
 * @file
 * Unit tests for base: rng, stats, units, logging.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "base/rng.hh"
#include "base/stats.hh"
#include "base/units.hh"

namespace enzian {
namespace {

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInBound)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const auto v = r.range(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        saw_lo |= v == 3;
        saw_hi |= v == 6;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng r(11);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += r.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, GaussianMoments)
{
    Rng r(13);
    double sum = 0, sq = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double v = r.gaussian(5.0, 2.0);
        sum += v;
        sq += v * v;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 5.0, 0.05);
    EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng a(21);
    Rng child(a.fork());
    Rng childCopy(Rng(21).fork());
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(child.next(), childCopy.next());
}

TEST(Stats, CounterBasics)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, AccumulatorMoments)
{
    Accumulator a;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        a.sample(v);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.5);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
    EXPECT_DOUBLE_EQ(a.max(), 4.0);
    EXPECT_NEAR(a.variance(), 1.25, 1e-12);
}

TEST(Stats, AccumulatorMergeMatchesSequentialSampling)
{
    // Parallel Welford combine: folding per-domain accumulators must
    // reproduce the single-stream moments exactly enough that the
    // exported stats do not depend on how samples were partitioned.
    Accumulator whole, partA, partB;
    for (int i = 0; i < 100; ++i) {
        const double v = 0.37 * i - 11.0;
        whole.sample(v);
        (i % 3 == 0 ? partA : partB).sample(v);
    }
    partA.merge(partB);
    EXPECT_EQ(partA.count(), whole.count());
    EXPECT_DOUBLE_EQ(partA.sum(), whole.sum());
    EXPECT_DOUBLE_EQ(partA.min(), whole.min());
    EXPECT_DOUBLE_EQ(partA.max(), whole.max());
    EXPECT_NEAR(partA.mean(), whole.mean(), 1e-12);
    EXPECT_NEAR(partA.variance(), whole.variance(), 1e-9);
}

TEST(Stats, AccumulatorMergeEmptySides)
{
    Accumulator a, b, empty;
    a.sample(3.0);
    a.sample(5.0);
    // Merging an empty accumulator is a no-op...
    Accumulator acopy = a;
    acopy.merge(empty);
    EXPECT_EQ(acopy.count(), 2u);
    EXPECT_DOUBLE_EQ(acopy.mean(), 4.0);
    // ...and merging into an empty one adopts the other side whole.
    b.merge(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 4.0);
    EXPECT_DOUBLE_EQ(b.min(), 3.0);
    EXPECT_DOUBLE_EQ(b.max(), 5.0);
}

TEST(Stats, HistogramMergeAddsBuckets)
{
    Histogram a(0.0, 100.0, 10), b(0.0, 100.0, 10);
    for (int i = 0; i < 50; ++i)
        a.sample(i + 0.5);
    for (int i = 50; i < 100; ++i)
        b.sample(i + 0.5);
    b.sample(-1.0);
    b.sample(200.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 102u);
    for (std::size_t i = 0; i < a.buckets(); ++i)
        EXPECT_EQ(a.bucketCount(i), 10u);
    EXPECT_EQ(a.underflow(), 1u);
    EXPECT_EQ(a.overflow(), 1u);
}

TEST(Stats, HistogramMergeShapeMismatchDies)
{
    Histogram a(0.0, 100.0, 10), b(0.0, 50.0, 10);
    EXPECT_DEATH(a.merge(b), "mismatched shape");
}

TEST(Stats, HistogramBucketsAndQuantiles)
{
    Histogram h(0.0, 100.0, 10);
    for (int i = 0; i < 100; ++i)
        h.sample(i + 0.5);
    EXPECT_EQ(h.count(), 100u);
    for (std::size_t b = 0; b < h.buckets(); ++b)
        EXPECT_EQ(h.bucketCount(b), 10u);
    EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
    EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
}

TEST(Stats, HistogramOverUnderflow)
{
    Histogram h(0.0, 10.0, 5);
    h.sample(-1);
    h.sample(11);
    h.sample(5);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.count(), 3u);
}

// Regression: on sparse histograms the old interpolation could
// return a value below the lower edge of the bucket that actually
// contains the quantile sample — underflow (or earlier buckets)
// pushed the running total past the fractional target, e.g. p50 of
// {5x underflow, 5x bucket-9} came back as lo_. Every quantile must
// land inside its containing bucket.
TEST(Stats, HistogramSparseQuantileStaysInContainingBucket)
{
    Histogram h(0.0, 100.0, 10);
    for (int i = 0; i < 5; ++i)
        h.sample(-1.0); // underflow
    for (int i = 0; i < 5; ++i)
        h.sample(95.0); // bucket 9: [90, 100)
    // Ranks 6..10 are the bucket-9 samples; p50 (rank 6) onward must
    // report within [90, 100], not lo_.
    EXPECT_GE(h.quantile(0.5), 90.0);
    EXPECT_LE(h.quantile(0.5), 100.0);
    EXPECT_GE(h.quantile(0.9), 90.0);
    EXPECT_LE(h.quantile(0.9), 100.0);
    EXPECT_GE(h.quantile(0.99), 90.0);
    EXPECT_LE(h.quantile(0.99), 100.0);
    // p25 (rank 3) is an underflow sample: pinned to the low edge.
    EXPECT_DOUBLE_EQ(h.quantile(0.25), 0.0);
}

TEST(Stats, HistogramSparseQuantileEmptyBucketGap)
{
    // Two samples with eight empty buckets between them. The median
    // sample (nearest rank 2 of 2) lives in bucket 9; the old code
    // reported bucket 0's upper edge instead.
    Histogram h(0.0, 100.0, 10);
    h.sample(5.0);
    h.sample(95.0);
    EXPECT_GE(h.quantile(0.5), 90.0);
    EXPECT_LE(h.quantile(0.5), 100.0);
    EXPECT_GE(h.quantile(0.99), 90.0);
    // p10 (rank 1) is the bucket-0 sample.
    EXPECT_GE(h.quantile(0.1), 0.0);
    EXPECT_LE(h.quantile(0.1), 10.0);
}

TEST(Stats, HistogramSingleSampleQuantiles)
{
    Histogram h(0.0, 100.0, 10);
    h.sample(95.0);
    for (double q : {0.0, 0.5, 0.9, 0.99, 1.0}) {
        EXPECT_GE(h.quantile(q), 90.0) << "q=" << q;
        EXPECT_LE(h.quantile(q), 100.0) << "q=" << q;
    }
}

TEST(Stats, HistogramQuantileMonotoneAndOverflowPinned)
{
    Histogram h(0.0, 100.0, 10);
    for (int i = 0; i < 10; ++i)
        h.sample(15.0);
    h.sample(95.0);
    h.sample(1000.0); // overflow
    double prev = h.quantile(0.0);
    for (double q = 0.05; q <= 1.0; q += 0.05) {
        const double cur = h.quantile(q);
        EXPECT_GE(cur, prev) << "quantile not monotone at q=" << q;
        prev = cur;
    }
    // The overflow sample is the max rank: reported as hi_.
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);
}

TEST(Stats, StatGroupDump)
{
    Counter c;
    c.inc(7);
    StatGroup g("grp");
    g.addCounter("events", &c);
    std::ostringstream os;
    g.dump(os);
    EXPECT_EQ(os.str(), "grp.events 7\n");
}

TEST(Units, TimeConversions)
{
    EXPECT_EQ(units::ns(1), 1000u);
    EXPECT_EQ(units::us(1), 1000000u);
    EXPECT_EQ(units::sec(1), 1000000000000ull);
    EXPECT_DOUBLE_EQ(units::toMicros(units::us(3)), 3.0);
}

TEST(Units, TransferTicks)
{
    // 1 GiB/s moving 1 GiB takes 1 second.
    EXPECT_EQ(units::transferTicks(units::GiB, units::giBps(1.0)),
              units::psPerSec);
    // Tiny transfers still take at least one tick.
    EXPECT_GE(units::transferTicks(1, 1e15), 1u);
    EXPECT_EQ(units::transferTicks(0, 1e9), 0u);
}

TEST(Units, RateConversions)
{
    EXPECT_DOUBLE_EQ(units::gbps(8.0), 1e9);
    EXPECT_NEAR(units::toGbps(units::gbps(100.0)), 100.0, 1e-9);
    EXPECT_NEAR(units::toGiBps(units::giBps(12.0)), 12.0, 1e-9);
}

TEST(Logging, FormatBasics)
{
    EXPECT_EQ(format("x=%d s=%s", 3, "hi"), "x=3 s=hi");
    EXPECT_EQ(format("%llu", 18446744073709551615ull),
              "18446744073709551615");
}

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH(panic("boom %d", 1), "boom 1");
}

TEST(LoggingDeathTest, FatalExits)
{
    EXPECT_EXIT(fatal("bad config"), ::testing::ExitedWithCode(1),
                "bad config");
}

TEST(LoggingDeathTest, AssertMacro)
{
    EXPECT_DEATH(ENZIAN_ASSERT(1 == 2, "math broke %d", 5),
                 "math broke 5");
}

} // namespace
} // namespace enzian
