/**
 * @file
 * Observability layer tests: JSON writer/parser, registry
 * registration and teardown, snapshot/diff, exports, interval
 * sampler, span tracer (including Chrome-trace JSON parsed back), and
 * the whole-machine demo scenario the acceptance criteria name.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "obs/json.hh"
#include "obs/registry.hh"
#include "obs/sampler.hh"
#include "obs/span_tracer.hh"
#include "platform/obs_demo.hh"
#include "platform/platform_factory.hh"
#include "sim/sim_object.hh"

namespace enzian::obs {
namespace {

// ---------------------------------------------------------------- JSON

TEST(Json, EscapeCoversQuotesBackslashesAndControls)
{
    EXPECT_EQ(json::escape("plain"), "plain");
    EXPECT_EQ(json::escape("a\"b"), "a\\\"b");
    EXPECT_EQ(json::escape("a\\b"), "a\\\\b");
    EXPECT_EQ(json::escape("a\nb\tc"), "a\\nb\\tc");
    EXPECT_EQ(json::escape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(Json, NumberRendersFinitelyAndNullsNonFinite)
{
    EXPECT_EQ(json::number(0.0), "0");
    EXPECT_EQ(json::number(NAN), "null");
    EXPECT_EQ(json::number(INFINITY), "null");
    // Round-trip precision.
    json::Value v;
    ASSERT_TRUE(json::parse(json::number(0.1), v));
    EXPECT_DOUBLE_EQ(v.num, 0.1);
}

TEST(Json, ParserRoundTripsEscapedStrings)
{
    const std::string nasty = "he said \"hi\\there\"\n\x02";
    json::Value v;
    ASSERT_TRUE(json::parse("{\"k\": " + json::quote(nasty) + "}", v));
    ASSERT_TRUE(v.isObject());
    ASSERT_NE(v.find("k"), nullptr);
    EXPECT_EQ(v.find("k")->str, nasty);
}

TEST(Json, ParserRejectsTrailingGarbage)
{
    json::Value v;
    std::string err;
    EXPECT_FALSE(json::parse("{\"a\":1} extra", v, &err));
    EXPECT_FALSE(err.empty());
}

// ------------------------------------------------------------ Registry

TEST(Registry, AddRemoveAndSortedGroups)
{
    Registry reg;
    Counter c1, c2;
    StatGroup g1("zeta"), g2("alpha");
    g1.addCounter("events", &c1);
    g2.addCounter("events", &c2);
    reg.add(&g1);
    reg.add(&g2);
    EXPECT_EQ(reg.groupCount(), 2u);
    auto groups = reg.groups();
    ASSERT_EQ(groups.size(), 2u);
    EXPECT_EQ(groups[0]->name(), "alpha"); // sorted by name
    EXPECT_EQ(groups[1]->name(), "zeta");
    reg.remove(&g1);
    EXPECT_EQ(reg.groupCount(), 1u);
    reg.remove(&g1); // no-op
    EXPECT_EQ(reg.groupCount(), 1u);
}

TEST(Registry, SimObjectAutoRegistersForItsLifetime)
{
    Registry &reg = Registry::global();
    const std::size_t before = reg.groupCount();
    {
        EventQueue eq;
        SimObject obj("test.autoreg.obj", eq);
        Counter hits;
        obj.stats().addCounter("hits", &hits);
        hits.inc(3);
        EXPECT_EQ(reg.groupCount(), before + 1);
        Snapshot snap = reg.snapshot();
        ASSERT_TRUE(snap.count("test.autoreg.obj.hits"));
        EXPECT_DOUBLE_EQ(snap["test.autoreg.obj.hits"], 3.0);
    }
    // Destruction deregisters; a stale pointer here would crash the
    // next snapshot.
    EXPECT_EQ(reg.groupCount(), before);
    Snapshot snap = reg.snapshot();
    EXPECT_FALSE(snap.count("test.autoreg.obj.hits"));
}

TEST(Registry, SnapshotFlattensEveryStatKind)
{
    Registry reg;
    Counter c;
    Gauge g;
    Accumulator a;
    Histogram h(0.0, 100.0, 10);
    StatGroup grp("comp");
    grp.addCounter("ops", &c);
    grp.addGauge("level", &g);
    grp.addAccumulator("lat", &a);
    grp.addHistogram("dist", &h);
    reg.add(&grp);
    c.inc(7);
    g.set(-2.5);
    a.sample(10.0);
    a.sample(30.0);
    h.sample(55.0);

    Snapshot s = reg.snapshot();
    EXPECT_DOUBLE_EQ(s["comp.ops"], 7.0);
    EXPECT_DOUBLE_EQ(s["comp.level"], -2.5);
    EXPECT_DOUBLE_EQ(s["comp.lat.count"], 2.0);
    EXPECT_DOUBLE_EQ(s["comp.lat.mean"], 20.0);
    EXPECT_DOUBLE_EQ(s["comp.lat.min"], 10.0);
    EXPECT_DOUBLE_EQ(s["comp.lat.max"], 30.0);
    EXPECT_DOUBLE_EQ(s["comp.dist.count"], 1.0);
    EXPECT_NEAR(s["comp.dist.p50"], 55.0, 10.0);
}

TEST(Registry, DiffKeepsNewKeysAndDropsGoneOnes)
{
    Snapshot older{{"a", 10.0}, {"gone", 5.0}};
    Snapshot newer{{"a", 25.0}, {"fresh", 3.0}};
    Snapshot d = diff(newer, older);
    EXPECT_DOUBLE_EQ(d["a"], 15.0);
    EXPECT_DOUBLE_EQ(d["fresh"], 3.0);
    EXPECT_FALSE(d.count("gone"));
}

TEST(Registry, ResetAllZeroesEveryGroup)
{
    Registry reg;
    Counter c;
    Accumulator a;
    StatGroup grp("comp");
    grp.addCounter("ops", &c);
    grp.addAccumulator("lat", &a);
    reg.add(&grp);
    c.inc(9);
    a.sample(4.0);
    reg.resetAll();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(a.count(), 0u);
}

TEST(Registry, JsonExportNestsOnDotsAndParsesBack)
{
    Registry reg;
    Counter c;
    StatGroup grp("node.eci.link0");
    grp.addCounter("messages", &c);
    reg.add(&grp);
    c.inc(42);

    std::ostringstream os;
    reg.exportJson(os);
    json::Value v;
    std::string err;
    ASSERT_TRUE(json::parse(os.str(), v, &err)) << err;
    const json::Value *node = v.find("node");
    ASSERT_NE(node, nullptr);
    const json::Value *eci = node->find("eci");
    ASSERT_NE(eci, nullptr);
    const json::Value *link = eci->find("link0");
    ASSERT_NE(link, nullptr);
    const json::Value *msgs = link->find("messages");
    ASSERT_NE(msgs, nullptr);
    EXPECT_DOUBLE_EQ(msgs->num, 42.0);
}

TEST(Registry, JsonExportEscapesHostileNames)
{
    Registry reg;
    Counter c;
    StatGroup grp("weird\"name\\x");
    grp.addCounter("a\nb", &c);
    reg.add(&grp);

    std::ostringstream os;
    reg.exportJson(os);
    json::Value v;
    std::string err;
    ASSERT_TRUE(json::parse(os.str(), v, &err)) << err;
    ASSERT_NE(v.find("weird\"name\\x"), nullptr);
    EXPECT_NE(v.find("weird\"name\\x")->find("a\nb"), nullptr);
}

TEST(Registry, PrometheusNameSanitizesAndExportHasTypes)
{
    EXPECT_EQ(Registry::prometheusName("a.b-c.d ns"),
              "enzian_a_b_c_d_ns");

    Registry reg;
    Counter c;
    Gauge g;
    StatGroup grp("node.link");
    grp.addCounter("messages", &c);
    grp.addGauge("depth", &g);
    reg.add(&grp);
    c.inc(5);
    g.set(2.0);

    std::ostringstream os;
    reg.exportPrometheus(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("# TYPE enzian_node_link_messages counter"),
              std::string::npos);
    EXPECT_NE(text.find("enzian_node_link_messages 5"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE enzian_node_link_depth gauge"),
              std::string::npos);
}

// ------------------------------------------------------------- Sampler

TEST(Sampler, ExpectedSamplesMath)
{
    EXPECT_EQ(Sampler::expectedSamples(0, 1000, 100), 10u);
    EXPECT_EQ(Sampler::expectedSamples(0, 1050, 100), 10u);
    EXPECT_EQ(Sampler::expectedSamples(0, 99, 100), 0u);
    EXPECT_EQ(Sampler::expectedSamples(500, 500, 100), 0u);
    EXPECT_EQ(Sampler::expectedSamples(500, 400, 100), 0u);
    EXPECT_EQ(Sampler::expectedSamples(250, 1000, 250), 3u);
}

TEST(Sampler, SamplesAtExactIntervalsAndCsvHasDeltas)
{
    Registry reg;
    Counter work;
    StatGroup grp("w");
    grp.addCounter("done", &work);
    reg.add(&grp);

    EventQueue eq;
    // Workload: one unit of work every 10 ns for 100 ns.
    for (int i = 1; i <= 10; ++i)
        eq.schedule(units::ns(10.0 * i), [&]() { work.inc(); });

    Sampler sampler(reg, eq, units::ns(25.0));
    sampler.run(units::ns(100.0));
    eq.run();

    ASSERT_EQ(sampler.samplesTaken(), 4u);
    EXPECT_EQ(sampler.points()[0].at, units::ns(25.0));
    EXPECT_EQ(sampler.points()[3].at, units::ns(100.0));
    // Totals are cumulative at each boundary...
    EXPECT_DOUBLE_EQ(sampler.points()[0].total.at("w.done"), 2.0);
    EXPECT_DOUBLE_EQ(sampler.points()[3].total.at("w.done"), 10.0);

    // ...and the CSV rows carry per-interval deltas.
    std::ostringstream os;
    sampler.writeCsv(os);
    std::istringstream is(os.str());
    std::string line;
    std::getline(is, line);
    EXPECT_EQ(line, "tick_ps,w.done");
    std::getline(is, line);
    EXPECT_EQ(line, std::to_string(units::ns(25.0)) + ",2");
    std::getline(is, line); // 50 ns: +3 (30,40,50)
    EXPECT_EQ(line, std::to_string(units::ns(50.0)) + ",3");
}

TEST(Sampler, JsonSeriesParsesBack)
{
    Registry reg;
    Counter c;
    StatGroup grp("w");
    grp.addCounter("n", &c);
    reg.add(&grp);
    EventQueue eq;
    eq.schedule(units::ns(10.0), [&]() { c.inc(4); });
    Sampler sampler(reg, eq, units::ns(20.0));
    sampler.run(units::ns(40.0));
    eq.run();

    std::ostringstream os;
    sampler.writeJson(os);
    json::Value v;
    std::string err;
    ASSERT_TRUE(json::parse(os.str(), v, &err)) << err;
    const json::Value *points = v.find("points");
    ASSERT_NE(points, nullptr);
    ASSERT_EQ(points->arr.size(), 2u);
    const json::Value *total = points->arr[0].find("total");
    ASSERT_NE(total, nullptr);
    EXPECT_DOUBLE_EQ(total->find("w")->find("n")->num, 4.0);
}

// ---------------------------------------------------------- SpanTracer

/** Parse tracer output and return tid -> thread name. */
std::map<double, std::string>
trackNames(const json::Value &doc)
{
    std::map<double, std::string> names;
    const json::Value *events = doc.find("traceEvents");
    EXPECT_NE(events, nullptr);
    for (const json::Value &e : events->arr) {
        const json::Value *ph = e.find("ph");
        if (ph && ph->str == "M") {
            const json::Value *args = e.find("args");
            EXPECT_NE(args, nullptr) << "metadata without args";
            if (args)
                names[e.find("tid")->num] = args->find("name")->str;
        }
    }
    return names;
}

TEST(SpanTracer, DisabledByDefaultAndMacroRespectsIt)
{
    SpanTracer tracer;
    EXPECT_FALSE(tracer.enabled());
    // Direct calls record unconditionally (used by converters)...
    tracer.complete("t", "op", units::ns(1.0), units::ns(2.0));
    EXPECT_EQ(tracer.eventCount(), 1u);
    // ...while the macro path checks the global tracer's flag.
    SpanTracer &g = SpanTracer::global();
    g.clear();
    g.setEnabled(false);
    const std::size_t before = g.eventCount();
    ENZIAN_SPAN("t", "op", units::ns(1.0), units::ns(2.0));
    EXPECT_EQ(g.eventCount(), before);
}

TEST(SpanTracer, ChromeJsonParsesBackWithAllPhases)
{
    SpanTracer tracer;
    tracer.complete("comp.a", "read", units::us(1.0), units::us(3.0));
    tracer.instant("comp.b", "irq", units::us(2.0));
    tracer.counter("comp.c", "depth", units::us(2.5), 7.0);

    std::ostringstream os;
    tracer.writeChromeJson(os);
    json::Value doc;
    std::string err;
    ASSERT_TRUE(json::parse(os.str(), doc, &err)) << err;

    auto names = trackNames(doc);
    EXPECT_EQ(names.size(), 3u);

    const json::Value *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    bool saw_x = false, saw_i = false, saw_c = false;
    for (const json::Value &e : events->arr) {
        const std::string &ph = e.find("ph")->str;
        if (ph == "X") {
            saw_x = true;
            EXPECT_DOUBLE_EQ(e.find("ts")->num, 1.0); // microseconds
            EXPECT_DOUBLE_EQ(e.find("dur")->num, 2.0);
            EXPECT_EQ(e.find("name")->str, "read");
        } else if (ph == "i") {
            saw_i = true;
            EXPECT_DOUBLE_EQ(e.find("ts")->num, 2.0);
        } else if (ph == "C") {
            saw_c = true;
            EXPECT_EQ(e.find("name")->str, "depth");
            EXPECT_DOUBLE_EQ(e.find("args")->find("value")->num, 7.0);
        }
    }
    EXPECT_TRUE(saw_x);
    EXPECT_TRUE(saw_i);
    EXPECT_TRUE(saw_c);
}

TEST(SpanTracer, EventLimitDropsInsteadOfGrowing)
{
    SpanTracer tracer;
    tracer.setEventLimit(2);
    for (int i = 0; i < 5; ++i)
        tracer.instant("t", "e", units::ns(1.0 * i));
    EXPECT_EQ(tracer.eventCount(), 2u);
    EXPECT_EQ(tracer.droppedEvents(), 3u);
    tracer.clear();
    EXPECT_EQ(tracer.eventCount(), 0u);
    EXPECT_EQ(tracer.trackCount(), 0u);
}

TEST(SpanTracer, EscapesHostileTrackAndEventNames)
{
    SpanTracer tracer;
    tracer.instant("trk\"x\\y", "ev\nz", units::ns(5.0));
    std::ostringstream os;
    tracer.writeChromeJson(os);
    json::Value doc;
    std::string err;
    ASSERT_TRUE(json::parse(os.str(), doc, &err)) << err;
    auto names = trackNames(doc);
    ASSERT_EQ(names.size(), 1u);
    EXPECT_EQ(names.begin()->second, "trk\"x\\y");
}

// -------------------------------------------- whole-machine scenario

/** Subsystem classes covered by a snapshot's dotted names. */
std::set<std::string>
subsystemsOf(const Snapshot &snap)
{
    static const char *const classes[] = {".eci.", ".mem.", ".net.",
                                          ".fpga.", ".cpu.", ".bmc."};
    std::set<std::string> seen;
    for (const auto &[key, value] : snap)
        for (const char *cls : classes)
            if (key.find(cls) != std::string::npos)
                seen.insert(cls);
    return seen;
}

TEST(ObsDemo, TraceCoversComponentsAndSnapshotCoversSubsystems)
{
    SpanTracer &tracer = SpanTracer::global();
    tracer.clear();
    tracer.setEnabled(true);

    auto cfg = platform::enzianDefaultConfig();
    cfg.cpu_dram_bytes = 128ull << 20;
    cfg.fpga_dram_bytes = 128ull << 20;
    cfg.bitstream = "coyote-shell";
    platform::EnzianMachine m(cfg);
    platform::ObsDemo demo(m);
    demo.run();
    tracer.setEnabled(false);

    EXPECT_GT(demo.eciLines(), 0u);
    EXPECT_GT(demo.tcpBytes(), 0u);
    EXPECT_GT(demo.fpgaJobs(), 0u);

    // The Chrome trace parses back and covers >= 4 distinct component
    // classes: ECI links, DRAM channels, the network, and the FPGA
    // scheduler slots.
    std::ostringstream os;
    tracer.writeChromeJson(os);
    json::Value doc;
    std::string err;
    ASSERT_TRUE(json::parse(os.str(), doc, &err)) << err;
    std::set<std::string> component_classes;
    for (const auto &[tid, track] : trackNames(doc)) {
        if (track.find(".eci.") != std::string::npos)
            component_classes.insert("eci");
        if (track.find(".mem.") != std::string::npos)
            component_classes.insert("mem");
        if (track.find(".net.") != std::string::npos)
            component_classes.insert("net");
        if (track.find(".fpga.") != std::string::npos)
            component_classes.insert("fpga");
    }
    EXPECT_GE(trackNames(doc).size(), 4u);
    EXPECT_EQ(component_classes.size(), 4u)
        << "trace must cover ECI, mem, net, and FPGA tracks";

    // The registry snapshot spans >= 6 subsystems with live values.
    Snapshot snap = Registry::global().snapshot();
    EXPECT_GE(subsystemsOf(snap).size(), 6u);
    EXPECT_GT(snap.at(m.config().name + ".eci.link0.messages"), 0.0);
    EXPECT_GT(snap.at(m.config().name + ".net.tcp0.bytes_tx"), 0.0);
    EXPECT_GT(snap.at(m.config().name + ".fpga.sched.jobs_completed"),
              0.0);
    EXPECT_GT(
        snap.at(m.config().name + ".cpu.remote.rtt_ns.count"), 0.0);

    tracer.clear();
}

TEST(ObsDemo, SamplerProducesTimeSeriesOverTheScenario)
{
    auto cfg = platform::enzianDefaultConfig();
    cfg.cpu_dram_bytes = 128ull << 20;
    cfg.fpga_dram_bytes = 128ull << 20;
    cfg.bitstream = "coyote-shell";
    platform::EnzianMachine m(cfg);
    platform::ObsDemo demo(m);

    Sampler sampler(Registry::global(), m.eventq(), units::ms(100.0));
    sampler.run(m.now() + units::ms(2000.0));
    demo.run();

    EXPECT_GE(sampler.samplesTaken(), 10u);
    // Activity shows up in the series: the last sample's cumulative
    // ECI message count is positive.
    const auto &last = sampler.points().back().total;
    EXPECT_GT(last.at(m.config().name + ".eci.link0.messages"), 0.0);
}

} // namespace
} // namespace enzian::obs
