/**
 * @file
 * Observability layer tests: JSON writer/parser, registry
 * registration and teardown, snapshot/diff, exports, interval
 * sampler, span tracer (including Chrome-trace JSON parsed back), and
 * the whole-machine demo scenario the acceptance criteria name.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "obs/json.hh"
#include "obs/registry.hh"
#include "obs/request_context.hh"
#include "obs/sampler.hh"
#include "obs/slo.hh"
#include "obs/span_tracer.hh"
#include "platform/obs_demo.hh"
#include "platform/platform_factory.hh"
#include "sim/sim_object.hh"

namespace enzian::obs {
namespace {

// ---------------------------------------------------------------- JSON

TEST(Json, EscapeCoversQuotesBackslashesAndControls)
{
    EXPECT_EQ(json::escape("plain"), "plain");
    EXPECT_EQ(json::escape("a\"b"), "a\\\"b");
    EXPECT_EQ(json::escape("a\\b"), "a\\\\b");
    EXPECT_EQ(json::escape("a\nb\tc"), "a\\nb\\tc");
    EXPECT_EQ(json::escape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(Json, NumberRendersFinitelyAndNullsNonFinite)
{
    EXPECT_EQ(json::number(0.0), "0");
    EXPECT_EQ(json::number(NAN), "null");
    EXPECT_EQ(json::number(INFINITY), "null");
    // Round-trip precision.
    json::Value v;
    ASSERT_TRUE(json::parse(json::number(0.1), v));
    EXPECT_DOUBLE_EQ(v.num, 0.1);
}

TEST(Json, ParserRoundTripsEscapedStrings)
{
    const std::string nasty = "he said \"hi\\there\"\n\x02";
    json::Value v;
    ASSERT_TRUE(json::parse("{\"k\": " + json::quote(nasty) + "}", v));
    ASSERT_TRUE(v.isObject());
    ASSERT_NE(v.find("k"), nullptr);
    EXPECT_EQ(v.find("k")->str, nasty);
}

TEST(Json, ParserRejectsTrailingGarbage)
{
    json::Value v;
    std::string err;
    EXPECT_FALSE(json::parse("{\"a\":1} extra", v, &err));
    EXPECT_FALSE(err.empty());
}

// ------------------------------------------------------------ Registry

TEST(Registry, AddRemoveAndSortedGroups)
{
    Registry reg;
    Counter c1, c2;
    StatGroup g1("zeta"), g2("alpha");
    g1.addCounter("events", &c1);
    g2.addCounter("events", &c2);
    reg.add(&g1);
    reg.add(&g2);
    EXPECT_EQ(reg.groupCount(), 2u);
    auto groups = reg.groups();
    ASSERT_EQ(groups.size(), 2u);
    EXPECT_EQ(groups[0]->name(), "alpha"); // sorted by name
    EXPECT_EQ(groups[1]->name(), "zeta");
    reg.remove(&g1);
    EXPECT_EQ(reg.groupCount(), 1u);
    reg.remove(&g1); // no-op
    EXPECT_EQ(reg.groupCount(), 1u);
}

TEST(Registry, SimObjectAutoRegistersForItsLifetime)
{
    Registry &reg = Registry::global();
    const std::size_t before = reg.groupCount();
    {
        EventQueue eq;
        SimObject obj("test.autoreg.obj", eq);
        Counter hits;
        obj.stats().addCounter("hits", &hits);
        hits.inc(3);
        EXPECT_EQ(reg.groupCount(), before + 1);
        Snapshot snap = reg.snapshot();
        ASSERT_TRUE(snap.count("test.autoreg.obj.hits"));
        EXPECT_DOUBLE_EQ(snap["test.autoreg.obj.hits"], 3.0);
    }
    // Destruction deregisters; a stale pointer here would crash the
    // next snapshot.
    EXPECT_EQ(reg.groupCount(), before);
    Snapshot snap = reg.snapshot();
    EXPECT_FALSE(snap.count("test.autoreg.obj.hits"));
}

TEST(Registry, SnapshotFlattensEveryStatKind)
{
    Registry reg;
    Counter c;
    Gauge g;
    Accumulator a;
    Histogram h(0.0, 100.0, 10);
    StatGroup grp("comp");
    grp.addCounter("ops", &c);
    grp.addGauge("level", &g);
    grp.addAccumulator("lat", &a);
    grp.addHistogram("dist", &h);
    reg.add(&grp);
    c.inc(7);
    g.set(-2.5);
    a.sample(10.0);
    a.sample(30.0);
    h.sample(55.0);

    Snapshot s = reg.snapshot();
    EXPECT_DOUBLE_EQ(s["comp.ops"], 7.0);
    EXPECT_DOUBLE_EQ(s["comp.level"], -2.5);
    EXPECT_DOUBLE_EQ(s["comp.lat.count"], 2.0);
    EXPECT_DOUBLE_EQ(s["comp.lat.mean"], 20.0);
    EXPECT_DOUBLE_EQ(s["comp.lat.min"], 10.0);
    EXPECT_DOUBLE_EQ(s["comp.lat.max"], 30.0);
    EXPECT_DOUBLE_EQ(s["comp.dist.count"], 1.0);
    EXPECT_NEAR(s["comp.dist.p50"], 55.0, 10.0);
}

TEST(Registry, DiffKeepsNewKeysAndDropsGoneOnes)
{
    Snapshot older{{"a", 10.0}, {"gone", 5.0}};
    Snapshot newer{{"a", 25.0}, {"fresh", 3.0}};
    Snapshot d = diff(newer, older);
    EXPECT_DOUBLE_EQ(d["a"], 15.0);
    EXPECT_DOUBLE_EQ(d["fresh"], 3.0);
    EXPECT_FALSE(d.count("gone"));
}

TEST(Registry, ResetAllZeroesEveryGroup)
{
    Registry reg;
    Counter c;
    Accumulator a;
    StatGroup grp("comp");
    grp.addCounter("ops", &c);
    grp.addAccumulator("lat", &a);
    reg.add(&grp);
    c.inc(9);
    a.sample(4.0);
    reg.resetAll();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(a.count(), 0u);
}

TEST(Registry, JsonExportNestsOnDotsAndParsesBack)
{
    Registry reg;
    Counter c;
    StatGroup grp("node.eci.link0");
    grp.addCounter("messages", &c);
    reg.add(&grp);
    c.inc(42);

    std::ostringstream os;
    reg.exportJson(os);
    json::Value v;
    std::string err;
    ASSERT_TRUE(json::parse(os.str(), v, &err)) << err;
    const json::Value *node = v.find("node");
    ASSERT_NE(node, nullptr);
    const json::Value *eci = node->find("eci");
    ASSERT_NE(eci, nullptr);
    const json::Value *link = eci->find("link0");
    ASSERT_NE(link, nullptr);
    const json::Value *msgs = link->find("messages");
    ASSERT_NE(msgs, nullptr);
    EXPECT_DOUBLE_EQ(msgs->num, 42.0);
}

TEST(Registry, JsonExportEscapesHostileNames)
{
    Registry reg;
    Counter c;
    StatGroup grp("weird\"name\\x");
    grp.addCounter("a\nb", &c);
    reg.add(&grp);

    std::ostringstream os;
    reg.exportJson(os);
    json::Value v;
    std::string err;
    ASSERT_TRUE(json::parse(os.str(), v, &err)) << err;
    ASSERT_NE(v.find("weird\"name\\x"), nullptr);
    EXPECT_NE(v.find("weird\"name\\x")->find("a\nb"), nullptr);
}

TEST(Registry, PrometheusNameSanitizesAndExportHasTypes)
{
    EXPECT_EQ(Registry::prometheusName("a.b-c.d ns"),
              "enzian_a_b_c_d_ns");

    Registry reg;
    Counter c;
    Gauge g;
    StatGroup grp("node.link");
    grp.addCounter("messages", &c);
    grp.addGauge("depth", &g);
    reg.add(&grp);
    c.inc(5);
    g.set(2.0);

    std::ostringstream os;
    reg.exportPrometheus(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("# TYPE enzian_node_link_messages counter"),
              std::string::npos);
    EXPECT_NE(text.find("enzian_node_link_messages 5"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE enzian_node_link_depth gauge"),
              std::string::npos);
}

// ------------------------------------------------------------- Sampler

TEST(Sampler, ExpectedSamplesMath)
{
    EXPECT_EQ(Sampler::expectedSamples(0, 1000, 100), 10u);
    EXPECT_EQ(Sampler::expectedSamples(0, 1050, 100), 10u);
    EXPECT_EQ(Sampler::expectedSamples(0, 99, 100), 0u);
    EXPECT_EQ(Sampler::expectedSamples(500, 500, 100), 0u);
    EXPECT_EQ(Sampler::expectedSamples(500, 400, 100), 0u);
    EXPECT_EQ(Sampler::expectedSamples(250, 1000, 250), 3u);
}

TEST(Sampler, SamplesAtExactIntervalsAndCsvHasDeltas)
{
    Registry reg;
    Counter work;
    StatGroup grp("w");
    grp.addCounter("done", &work);
    reg.add(&grp);

    EventQueue eq;
    // Workload: one unit of work every 10 ns for 100 ns.
    for (int i = 1; i <= 10; ++i)
        eq.schedule(units::ns(10.0 * i), [&]() { work.inc(); });

    Sampler sampler(reg, eq, units::ns(25.0));
    sampler.run(units::ns(100.0));
    eq.run();

    ASSERT_EQ(sampler.samplesTaken(), 4u);
    EXPECT_EQ(sampler.points()[0].at, units::ns(25.0));
    EXPECT_EQ(sampler.points()[3].at, units::ns(100.0));
    // Totals are cumulative at each boundary...
    EXPECT_DOUBLE_EQ(sampler.points()[0].total.at("w.done"), 2.0);
    EXPECT_DOUBLE_EQ(sampler.points()[3].total.at("w.done"), 10.0);

    // ...and the CSV rows carry per-interval deltas.
    std::ostringstream os;
    sampler.writeCsv(os);
    std::istringstream is(os.str());
    std::string line;
    std::getline(is, line);
    EXPECT_EQ(line, "tick_ps,w.done");
    std::getline(is, line);
    EXPECT_EQ(line, std::to_string(units::ns(25.0)) + ",2");
    std::getline(is, line); // 50 ns: +3 (30,40,50)
    EXPECT_EQ(line, std::to_string(units::ns(50.0)) + ",3");
}

TEST(Sampler, JsonSeriesParsesBack)
{
    Registry reg;
    Counter c;
    StatGroup grp("w");
    grp.addCounter("n", &c);
    reg.add(&grp);
    EventQueue eq;
    eq.schedule(units::ns(10.0), [&]() { c.inc(4); });
    Sampler sampler(reg, eq, units::ns(20.0));
    sampler.run(units::ns(40.0));
    eq.run();

    std::ostringstream os;
    sampler.writeJson(os);
    json::Value v;
    std::string err;
    ASSERT_TRUE(json::parse(os.str(), v, &err)) << err;
    const json::Value *points = v.find("points");
    ASSERT_NE(points, nullptr);
    ASSERT_EQ(points->arr.size(), 2u);
    const json::Value *total = points->arr[0].find("total");
    ASSERT_NE(total, nullptr);
    EXPECT_DOUBLE_EQ(total->find("w")->find("n")->num, 4.0);
}

// ---------------------------------------------------------- SpanTracer

/** Parse tracer output and return tid -> thread name. */
std::map<double, std::string>
trackNames(const json::Value &doc)
{
    std::map<double, std::string> names;
    const json::Value *events = doc.find("traceEvents");
    EXPECT_NE(events, nullptr);
    for (const json::Value &e : events->arr) {
        const json::Value *ph = e.find("ph");
        if (ph && ph->str == "M") {
            const json::Value *args = e.find("args");
            EXPECT_NE(args, nullptr) << "metadata without args";
            if (args)
                names[e.find("tid")->num] = args->find("name")->str;
        }
    }
    return names;
}

TEST(SpanTracer, DisabledByDefaultAndMacroRespectsIt)
{
    SpanTracer tracer;
    EXPECT_FALSE(tracer.enabled());
    // Direct calls record unconditionally (used by converters)...
    tracer.complete("t", "op", units::ns(1.0), units::ns(2.0));
    EXPECT_EQ(tracer.eventCount(), 1u);
    // ...while the macro path checks the global tracer's flag.
    SpanTracer &g = SpanTracer::global();
    g.clear();
    g.setEnabled(false);
    const std::size_t before = g.eventCount();
    ENZIAN_SPAN("t", "op", units::ns(1.0), units::ns(2.0));
    EXPECT_EQ(g.eventCount(), before);
}

TEST(SpanTracer, ChromeJsonParsesBackWithAllPhases)
{
    SpanTracer tracer;
    tracer.complete("comp.a", "read", units::us(1.0), units::us(3.0));
    tracer.instant("comp.b", "irq", units::us(2.0));
    tracer.counter("comp.c", "depth", units::us(2.5), 7.0);

    std::ostringstream os;
    tracer.writeChromeJson(os);
    json::Value doc;
    std::string err;
    ASSERT_TRUE(json::parse(os.str(), doc, &err)) << err;

    auto names = trackNames(doc);
    EXPECT_EQ(names.size(), 3u);

    const json::Value *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    bool saw_x = false, saw_i = false, saw_c = false;
    for (const json::Value &e : events->arr) {
        const std::string &ph = e.find("ph")->str;
        if (ph == "X") {
            saw_x = true;
            EXPECT_DOUBLE_EQ(e.find("ts")->num, 1.0); // microseconds
            EXPECT_DOUBLE_EQ(e.find("dur")->num, 2.0);
            EXPECT_EQ(e.find("name")->str, "read");
        } else if (ph == "i") {
            saw_i = true;
            EXPECT_DOUBLE_EQ(e.find("ts")->num, 2.0);
        } else if (ph == "C") {
            saw_c = true;
            EXPECT_EQ(e.find("name")->str, "depth");
            EXPECT_DOUBLE_EQ(e.find("args")->find("value")->num, 7.0);
        }
    }
    EXPECT_TRUE(saw_x);
    EXPECT_TRUE(saw_i);
    EXPECT_TRUE(saw_c);
}

TEST(SpanTracer, EventLimitDropsInsteadOfGrowing)
{
    SpanTracer tracer;
    tracer.setEventLimit(2);
    for (int i = 0; i < 5; ++i)
        tracer.instant("t", "e", units::ns(1.0 * i));
    EXPECT_EQ(tracer.eventCount(), 2u);
    EXPECT_EQ(tracer.droppedEvents(), 3u);
    tracer.clear();
    EXPECT_EQ(tracer.eventCount(), 0u);
    EXPECT_EQ(tracer.trackCount(), 0u);
}

TEST(SpanTracer, EscapesHostileTrackAndEventNames)
{
    SpanTracer tracer;
    tracer.instant("trk\"x\\y", "ev\nz", units::ns(5.0));
    std::ostringstream os;
    tracer.writeChromeJson(os);
    json::Value doc;
    std::string err;
    ASSERT_TRUE(json::parse(os.str(), doc, &err)) << err;
    auto names = trackNames(doc);
    ASSERT_EQ(names.size(), 1u);
    EXPECT_EQ(names.begin()->second, "trk\"x\\y");
}

// -------------------------------------------- whole-machine scenario

/** Subsystem classes covered by a snapshot's dotted names. */
std::set<std::string>
subsystemsOf(const Snapshot &snap)
{
    static const char *const classes[] = {".eci.", ".mem.", ".net.",
                                          ".fpga.", ".cpu.", ".bmc."};
    std::set<std::string> seen;
    for (const auto &[key, value] : snap)
        for (const char *cls : classes)
            if (key.find(cls) != std::string::npos)
                seen.insert(cls);
    return seen;
}

TEST(ObsDemo, TraceCoversComponentsAndSnapshotCoversSubsystems)
{
    SpanTracer &tracer = SpanTracer::global();
    tracer.clear();
    tracer.setEnabled(true);

    auto cfg = platform::enzianDefaultConfig();
    cfg.cpu_dram_bytes = 128ull << 20;
    cfg.fpga_dram_bytes = 128ull << 20;
    cfg.bitstream = "coyote-shell";
    platform::EnzianMachine m(cfg);
    platform::ObsDemo demo(m);
    demo.run();
    tracer.setEnabled(false);

    EXPECT_GT(demo.eciLines(), 0u);
    EXPECT_GT(demo.tcpBytes(), 0u);
    EXPECT_GT(demo.fpgaJobs(), 0u);

    // The Chrome trace parses back and covers >= 4 distinct component
    // classes: ECI links, DRAM channels, the network, and the FPGA
    // scheduler slots.
    std::ostringstream os;
    tracer.writeChromeJson(os);
    json::Value doc;
    std::string err;
    ASSERT_TRUE(json::parse(os.str(), doc, &err)) << err;
    std::set<std::string> component_classes;
    for (const auto &[tid, track] : trackNames(doc)) {
        if (track.find(".eci.") != std::string::npos)
            component_classes.insert("eci");
        if (track.find(".mem.") != std::string::npos)
            component_classes.insert("mem");
        if (track.find(".net.") != std::string::npos)
            component_classes.insert("net");
        if (track.find(".fpga.") != std::string::npos)
            component_classes.insert("fpga");
    }
    EXPECT_GE(trackNames(doc).size(), 4u);
    EXPECT_EQ(component_classes.size(), 4u)
        << "trace must cover ECI, mem, net, and FPGA tracks";

    // The registry snapshot spans >= 6 subsystems with live values.
    Snapshot snap = Registry::global().snapshot();
    EXPECT_GE(subsystemsOf(snap).size(), 6u);
    EXPECT_GT(snap.at(m.config().name + ".eci.link0.messages"), 0.0);
    EXPECT_GT(snap.at(m.config().name + ".net.tcp0.bytes_tx"), 0.0);
    EXPECT_GT(snap.at(m.config().name + ".fpga.sched.jobs_completed"),
              0.0);
    EXPECT_GT(
        snap.at(m.config().name + ".cpu.remote.rtt_ns.count"), 0.0);

    tracer.clear();
}

TEST(ObsDemo, SamplerProducesTimeSeriesOverTheScenario)
{
    auto cfg = platform::enzianDefaultConfig();
    cfg.cpu_dram_bytes = 128ull << 20;
    cfg.fpga_dram_bytes = 128ull << 20;
    cfg.bitstream = "coyote-shell";
    platform::EnzianMachine m(cfg);
    platform::ObsDemo demo(m);

    Sampler sampler(Registry::global(), m.eventq(), units::ms(100.0));
    sampler.run(m.now() + units::ms(2000.0));
    demo.run();

    EXPECT_GE(sampler.samplesTaken(), 10u);
    // Activity shows up in the series: the last sample's cumulative
    // ECI message count is positive.
    const auto &last = sampler.points().back().total;
    EXPECT_GT(last.at(m.config().name + ".eci.link0.messages"), 0.0);
}

// ------------------------------------------------------- LogHistogram

TEST(LogHistogram, IndexIsMonotoneAndBucketBoundsContainValues)
{
    // Exact below one octave's worth of sub-buckets...
    for (Tick v = 0; v < LogHistogram::kSubBuckets; ++v)
        EXPECT_EQ(LogHistogram::index(v), static_cast<std::size_t>(v));
    // ...log-bucketed above, with every value inside its bucket.
    std::size_t prev = 0;
    for (Tick v = 1; v < (Tick{1} << 40); v = v * 3 + 1) {
        const std::size_t i = LogHistogram::index(v);
        EXPECT_GE(i, prev);
        prev = i;
        EXPECT_GE(v, LogHistogram::bucketLow(i));
        EXPECT_LT(v,
                  LogHistogram::bucketLow(i) +
                      LogHistogram::bucketWidth(i));
    }
    EXPECT_LT(LogHistogram::index(~Tick{0}), LogHistogram::kBuckets);
}

TEST(LogHistogram, QuantileErrorIsBoundedByBucketWidth)
{
    LogHistogram h;
    // 1..10000 us uniformly: quantile(q) should land within one
    // sub-bucket (~3.2% relative) of the exact answer.
    for (int i = 1; i <= 10000; ++i)
        h.record(units::us(static_cast<double>(i)));
    for (double q : {0.5, 0.9, 0.99, 0.999}) {
        const double exact = 10000.0 * q;
        const double got = units::toMicros(h.quantile(q));
        EXPECT_NEAR(got, exact, exact * 0.04) << "q=" << q;
    }
    // Max is exact, not bucket-quantized.
    EXPECT_EQ(h.maxValue(), units::us(10000.0));
    EXPECT_EQ(h.quantile(1.0), units::us(10000.0));
    EXPECT_NEAR(h.meanTicks(), units::us(5000.5), units::us(0.5));
}

TEST(LogHistogram, MergeMatchesCombinedRecording)
{
    LogHistogram a, b, both;
    for (int i = 1; i <= 500; ++i) {
        const Tick v = units::us(static_cast<double>(i * i % 997));
        ((i % 2) ? a : b).record(v);
        both.record(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), both.count());
    EXPECT_EQ(a.maxValue(), both.maxValue());
    for (double q : {0.25, 0.5, 0.99})
        EXPECT_EQ(a.quantile(q), both.quantile(q));
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(a.quantile(0.5), 0u);
}

// -------------------------------------------------------- SloRecorder

TEST(SloRecorder, WindowsTumbleOnAbsoluteBoundaries)
{
    SloRecorder::Config cfg;
    cfg.window = units::ms(1.0);
    cfg.slo_latency_us = 100.0;
    SloRecorder rec(cfg);

    // Two completions in window [1ms, 2ms), one in [3ms, 4ms); the
    // empty [2ms, 3ms) window must not appear.
    rec.record(units::ms(1.1), units::ms(1.2)); // 100 us: meets
    rec.record(units::ms(1.2), units::ms(1.5)); // 300 us: violates
    rec.record(units::ms(3.0), units::ms(3.05));
    rec.rollTo(units::ms(4.0));

    ASSERT_EQ(rec.windows().size(), 2u);
    const auto &w0 = rec.windows()[0];
    EXPECT_EQ(w0.start, units::ms(1.0));
    EXPECT_EQ(w0.end, units::ms(2.0));
    EXPECT_EQ(w0.count, 2u);
    EXPECT_EQ(w0.violations, 1u);
    // Burn rate: 50% of requests violated / 1% budget = 50x.
    EXPECT_NEAR(w0.burn_rate, 50.0, 1e-9);
    EXPECT_EQ(rec.windows()[1].start, units::ms(3.0));
    EXPECT_EQ(rec.totalCount(), 3u);
    EXPECT_EQ(rec.totalViolations(), 1u);
}

TEST(SloRecorder, SloMetTracksTheConfiguredQuantile)
{
    SloRecorder::Config cfg;
    cfg.slo_latency_us = 100.0;
    cfg.slo_quantile = 0.90;
    SloRecorder rec(cfg);
    // 95 fast, 5 slow: p90 is fast, so the SLO holds even though the
    // slow tail violates.
    for (int i = 0; i < 95; ++i)
        rec.record(0, units::us(10.0));
    for (int i = 0; i < 5; ++i)
        rec.record(0, units::us(500.0));
    rec.rollTo(units::ms(100.0));
    EXPECT_TRUE(rec.sloMet());
    EXPECT_EQ(rec.totalViolations(), 5u);
    // 5% violated / 10% budget = 0.5.
    EXPECT_NEAR(rec.burnRate(), 0.5, 1e-9);
    EXPECT_GT(rec.p999Us(), rec.p50Us());
}

TEST(SloRecorder, RegistersStatsForItsLifetimeAndWritesCsv)
{
    const auto count_groups = [] {
        std::size_t n = 0;
        for (const StatGroup *g : Registry::global().groups())
            if (g->name().rfind("load.slo.", 0) == 0)
                ++n;
        return n;
    };
    const std::size_t before = count_groups();
    std::ostringstream os;
    {
        SloRecorder::Config cfg;
        cfg.name = "csvtest";
        cfg.window = units::ms(1.0);
        SloRecorder rec(cfg);
        EXPECT_EQ(count_groups(), before + 1);
        rec.record(units::ms(1.0), units::ms(1.1));
        rec.rollTo(units::ms(2.0));
        rec.writeCsv(os);
    }
    EXPECT_EQ(count_groups(), before);

    std::istringstream in(os.str());
    std::string header, row;
    ASSERT_TRUE(std::getline(in, header));
    EXPECT_EQ(header.substr(0, 30), "window_start_us,window_end_us,");
    ASSERT_TRUE(std::getline(in, row));
    EXPECT_NE(row.find("1000.000,2000.000,1,"), std::string::npos);
}

// ------------------------------------------------- request flow tracing

TEST(FlowScope, PublishesAndRestoresTheAmbientId)
{
    EXPECT_EQ(currentFlowId(), 0u);
    {
        FlowScope outer(7);
        EXPECT_EQ(currentFlowId(), 7u);
        {
            FlowScope inner(9);
            EXPECT_EQ(currentFlowId(), 9u);
        }
        EXPECT_EQ(currentFlowId(), 7u);
    }
    EXPECT_EQ(currentFlowId(), 0u);
}

TEST(SpanTracer, FlowEventsShareAnIdAndParseBack)
{
    SpanTracer tracer;
    tracer.flowBegin("req/1", "request", units::us(1.0), 0xabcd);
    tracer.flowStep("serving.gbdt", "serve", units::us(2.0), 0xabcd);
    tracer.flowEnd("req/1", "request", units::us(3.0), 0xabcd);

    std::ostringstream os;
    tracer.writeChromeJson(os);
    json::Value doc;
    std::string err;
    ASSERT_TRUE(json::parse(os.str(), doc, &err)) << err;

    const json::Value *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    std::string phases;
    for (const json::Value &e : events->arr) {
        const std::string &ph = e.find("ph")->str;
        if (ph != "s" && ph != "t" && ph != "f")
            continue;
        phases += ph;
        EXPECT_EQ(e.find("cat")->str, "flow");
        EXPECT_EQ(e.find("id")->str, "0xabcd");
        if (ph == "f")
            EXPECT_EQ(e.find("bp")->str, "e");
    }
    EXPECT_EQ(phases, "stf");
}

TEST(SpanTracer, FlowMacrosDropIdZero)
{
    SpanTracer &g = SpanTracer::global();
    g.clear();
    g.setEnabled(true);
    ENZIAN_FLOW_BEGIN("t", "r", units::us(1.0), 0u);
    EXPECT_EQ(g.eventCount(), 0u);
    ENZIAN_FLOW_BEGIN("t", "r", units::us(1.0), 5u);
    EXPECT_EQ(g.eventCount(), 1u);
    g.setEnabled(false);
    g.clear();
}

} // namespace
} // namespace enzian::obs
