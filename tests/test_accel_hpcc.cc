/**
 * @file
 * Tests for the HPCC accelerator suite: reference-model verification
 * of the FFT / LU / transpose kernels, the accel::Pipeline base, the
 * multi-tenant scheduler path, and the fault paths (correctable DRAM
 * ECC and ECI message loss under a running job, reconfiguration of a
 * pinned slot).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstring>
#include <sstream>
#include <vector>

#include "accel/hpcc/fft.hh"
#include "accel/hpcc/lu.hh"
#include "accel/hpcc/transpose.hh"
#include "accel/pipeline.hh"
#include "base/rng.hh"
#include "fault/fault_injector.hh"
#include "fault/fault_plan.hh"
#include "fpga/bitstream.hh"
#include "fpga/scheduler.hh"
#include "obs/request_context.hh"
#include "platform/enzian_machine.hh"
#include "platform/platform_factory.hh"

namespace enzian::accel::hpcc {
namespace {

platform::EnzianMachine::Config
smallConfig()
{
    auto cfg = platform::enzianDefaultConfig();
    cfg.cpu_dram_bytes = 64ull << 20;
    cfg.fpga_dram_bytes = 64ull << 20;
    return cfg;
}

Pipeline::Config
fpgaPipeConfig(platform::EnzianMachine &m)
{
    Pipeline::Config cfg;
    cfg.mc = &m.fpgaMem();
    cfg.map = &m.map();
    cfg.clock = &m.fpga().clock();
    cfg.remote = &m.fpgaRemote();
    return cfg;
}

std::vector<std::complex<float>>
randomSignal(std::uint32_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::complex<float>> sig(n);
    for (auto &s : sig)
        s = {static_cast<float>(rng.uniform(-1.0, 1.0)),
             static_cast<float>(rng.uniform(-1.0, 1.0))};
    return sig;
}

std::vector<float>
randomMatrix(std::uint32_t rows, std::uint32_t cols,
             std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> a(static_cast<std::size_t>(rows) * cols);
    for (auto &v : a)
        v = static_cast<float>(rng.uniform(-1.0, 1.0));
    return a;
}

/** Run one local-DRAM job synchronously and return the done tick. */
Tick
runLocal(Pipeline &pipe, mem::MemoryController &mc,
         const mem::AddressMap &map, const Pipeline::Job &job,
         const void *input)
{
    mc.store().write(map.offsetInRegion(job.input), input,
                     job.input_bytes);
    Tick end = 0;
    pipe.process(0, job, [&](Tick t) { end = t; });
    return end;
}

// ------------------------------------------------------------- FFT

TEST(FftPipeline, ImpulseGivesFlatSpectrum)
{
    platform::EnzianMachine m(smallConfig());
    FftPipeline::Params p;
    p.n = 64;
    FftPipeline fft("hpcc.fft", m.eventq(), fpgaPipeConfig(m), p);

    std::vector<std::complex<float>> in(p.n, {0.f, 0.f});
    in[0] = {1.f, 0.f};
    const Addr base = mem::AddressMap::fpgaDramBase;
    const auto job = fft.makeJob(base, base + (1ull << 20));
    const Tick end =
        runLocal(fft, m.fpgaMem(), m.map(), job, in.data());
    EXPECT_GT(end, 0u);

    std::vector<std::complex<float>> out(p.n);
    m.fpgaMem().store().read(m.map().offsetInRegion(job.output),
                             out.data(), job.output_bytes);
    for (const auto &v : out) {
        EXPECT_NEAR(v.real(), 1.0f, 1e-6f);
        EXPECT_NEAR(v.imag(), 0.0f, 1e-6f);
    }
}

TEST(FftPipeline, SinusoidPeaksAtItsBin)
{
    platform::EnzianMachine m(smallConfig());
    FftPipeline::Params p;
    p.n = 128;
    FftPipeline fft("hpcc.fft", m.eventq(), fpgaPipeConfig(m), p);

    const std::uint32_t bin = 5;
    std::vector<std::complex<float>> in(p.n);
    for (std::uint32_t j = 0; j < p.n; ++j) {
        const double ang = 2.0 * M_PI * bin * j / p.n;
        in[j] = {static_cast<float>(std::cos(ang)),
                 static_cast<float>(std::sin(ang))};
    }
    const Addr base = mem::AddressMap::fpgaDramBase;
    const auto job = fft.makeJob(base, base + (1ull << 20));
    runLocal(fft, m.fpgaMem(), m.map(), job, in.data());

    std::vector<std::complex<float>> out(p.n);
    m.fpgaMem().store().read(m.map().offsetInRegion(job.output),
                             out.data(), job.output_bytes);
    for (std::uint32_t k = 0; k < p.n; ++k) {
        const float mag = std::abs(out[k]);
        if (k == bin)
            EXPECT_NEAR(mag, static_cast<float>(p.n), 0.01f);
        else
            EXPECT_LT(mag, 0.01f); // float leakage only
    }
}

TEST(FftPipeline, MatchesDftOracleAcrossSizesAndSeeds)
{
    platform::EnzianMachine m(smallConfig());
    const Addr base = mem::AddressMap::fpgaDramBase;
    for (const std::uint32_t n : {64u, 128u, 256u, 512u}) {
        for (const std::uint64_t seed : {7ull, 1234ull}) {
            FftPipeline::Params p;
            p.n = n;
            FftPipeline fft("hpcc.fft" + std::to_string(n) + "_" +
                                std::to_string(seed),
                            m.eventq(), fpgaPipeConfig(m), p);
            const auto in = randomSignal(n, seed);
            const auto job = fft.makeJob(base, base + (4ull << 20));
            runLocal(fft, m.fpgaMem(), m.map(), job, in.data());

            std::vector<std::complex<float>> out(n);
            m.fpgaMem().store().read(
                m.map().offsetInRegion(job.output), out.data(),
                job.output_bytes);
            EXPECT_LT(rmsError(out, dftReference(in)), 1e-6)
                << "n=" << n << " seed=" << seed;
        }
    }
}

TEST(FftPipeline, LinearityHolds)
{
    platform::EnzianMachine m(smallConfig());
    FftPipeline::Params p;
    p.n = 256;
    FftPipeline fft("hpcc.fft", m.eventq(), fpgaPipeConfig(m), p);
    const Addr base = mem::AddressMap::fpgaDramBase;

    const auto x = randomSignal(p.n, 11);
    const auto y = randomSignal(p.n, 22);
    std::vector<std::complex<float>> sum(p.n);
    for (std::uint32_t i = 0; i < p.n; ++i)
        sum[i] = x[i] + y[i];

    auto transform = [&](const std::vector<std::complex<float>> &sig) {
        const auto job = fft.makeJob(base, base + (4ull << 20));
        runLocal(fft, m.fpgaMem(), m.map(), job, sig.data());
        std::vector<std::complex<float>> out(p.n);
        m.fpgaMem().store().read(m.map().offsetInRegion(job.output),
                                 out.data(), job.output_bytes);
        return out;
    };
    const auto fx = transform(x);
    const auto fy = transform(y);
    const auto fsum = transform(sum);
    for (std::uint32_t k = 0; k < p.n; ++k)
        EXPECT_LT(std::abs(fsum[k] - (fx[k] + fy[k])), 5e-3f);
}

TEST(FftPipeline, TimingScalesWithBatchAndLanes)
{
    platform::EnzianMachine m(smallConfig());
    FftPipeline::Params p8;
    p8.n = 1024;
    p8.lanes = 8;
    FftPipeline wide("hpcc.fft8", m.eventq(), fpgaPipeConfig(m), p8);
    FftPipeline::Params p1 = p8;
    p1.lanes = 1;
    FftPipeline narrow("hpcc.fft1", m.eventq(), fpgaPipeConfig(m),
                       p1);
    // More lanes -> fewer steady-state cycles for the same batch.
    EXPECT_LT(wide.serviceCycles(p8.n), narrow.serviceCycles(p8.n));
    // Two batched transforms take more cycles than one.
    EXPECT_GT(wide.serviceCycles(2 * p8.n),
              wide.serviceCycles(p8.n));
    // Flop count convention: 5 n log2 n.
    EXPECT_EQ(FftPipeline::flops(1024), 5ull * 1024 * 10);
}

// -------------------------------------------------------------- LU

TEST(LuPipeline, FactorsAndPivotsMatchUnblockedReference)
{
    platform::EnzianMachine m(smallConfig());
    LuPipeline::Params p;
    p.n = 96;
    p.block = 32;
    LuPipeline lu("hpcc.lu", m.eventq(), fpgaPipeConfig(m), p);

    const auto a = randomMatrix(p.n, p.n, 99);
    const Addr base = mem::AddressMap::fpgaDramBase;
    const auto job = lu.makeJob(base, base + (8ull << 20));
    runLocal(lu, m.fpgaMem(), m.map(), job, a.data());

    std::vector<float> got(static_cast<std::size_t>(p.n) * p.n);
    std::vector<std::int32_t> piv(p.n);
    m.fpgaMem().store().read(m.map().offsetInRegion(job.output),
                             got.data(), got.size() * 4);
    m.fpgaMem().store().read(m.map().offsetInRegion(job.output) +
                                 got.size() * 4,
                             piv.data(), piv.size() * 4);

    auto ref = a;
    std::vector<std::int32_t> refPiv;
    luReference(ref, refPiv, p.n);
    ASSERT_EQ(piv, refPiv);
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_NEAR(got[i], ref[i], 1e-5f) << "element " << i;
}

TEST(LuPipeline, SolveResidualIsSmall)
{
    platform::EnzianMachine m(smallConfig());
    LuPipeline::Params p;
    p.n = 128;
    LuPipeline lu("hpcc.lu", m.eventq(), fpgaPipeConfig(m), p);

    const auto a = randomMatrix(p.n, p.n, 5);
    const auto xTrue = randomMatrix(p.n, 1, 6);
    std::vector<float> b(p.n, 0.f);
    for (std::uint32_t i = 0; i < p.n; ++i)
        for (std::uint32_t j = 0; j < p.n; ++j)
            b[i] += a[i * p.n + j] * xTrue[j];

    const Addr base = mem::AddressMap::fpgaDramBase;
    const auto job = lu.makeJob(base, base + (8ull << 20));
    runLocal(lu, m.fpgaMem(), m.map(), job, a.data());

    std::vector<float> factors(static_cast<std::size_t>(p.n) * p.n);
    std::vector<std::int32_t> piv(p.n);
    m.fpgaMem().store().read(m.map().offsetInRegion(job.output),
                             factors.data(), factors.size() * 4);
    m.fpgaMem().store().read(m.map().offsetInRegion(job.output) +
                                 factors.size() * 4,
                             piv.data(), piv.size() * 4);

    const auto x = luSolve(factors, piv, b, p.n);
    // ||Ax - b||_inf relative to the scale of the problem.
    EXPECT_LT(residualInf(a, x, b, p.n), 1e-3 * p.n);
}

TEST(LuPipeline, PartialPivotingBoundsMultipliers)
{
    platform::EnzianMachine m(smallConfig());
    LuPipeline::Params p;
    p.n = 64;
    p.block = 16;
    LuPipeline lu("hpcc.lu", m.eventq(), fpgaPipeConfig(m), p);

    const auto a = randomMatrix(p.n, p.n, 77);
    const Addr base = mem::AddressMap::fpgaDramBase;
    const auto job = lu.makeJob(base, base + (8ull << 20));
    runLocal(lu, m.fpgaMem(), m.map(), job, a.data());

    std::vector<float> got(static_cast<std::size_t>(p.n) * p.n);
    m.fpgaMem().store().read(m.map().offsetInRegion(job.output),
                             got.data(), got.size() * 4);
    for (std::uint32_t i = 0; i < p.n; ++i)
        for (std::uint32_t j = 0; j < i; ++j)
            EXPECT_LE(std::fabs(got[i * p.n + j]), 1.0f + 1e-6f);
}

TEST(LuPipeline, RandomizedSizesAndBlockWidths)
{
    platform::EnzianMachine m(smallConfig());
    const Addr base = mem::AddressMap::fpgaDramBase;
    Rng rng(2026);
    for (const std::uint32_t n : {32u, 64u, 96u, 160u}) {
        for (const std::uint32_t block : {16u, 32u, 64u}) {
            LuPipeline::Params p;
            p.n = n;
            p.block = block;
            LuPipeline lu("hpcc.lu" + std::to_string(n) + "_" +
                              std::to_string(block),
                          m.eventq(), fpgaPipeConfig(m), p);
            const auto a = randomMatrix(n, n, rng.next());
            const auto job = lu.makeJob(base, base + (8ull << 20));
            runLocal(lu, m.fpgaMem(), m.map(), job, a.data());

            std::vector<float> got(static_cast<std::size_t>(n) * n);
            std::vector<std::int32_t> piv(n);
            m.fpgaMem().store().read(
                m.map().offsetInRegion(job.output), got.data(),
                got.size() * 4);
            m.fpgaMem().store().read(
                m.map().offsetInRegion(job.output) + got.size() * 4,
                piv.data(), piv.size() * 4);

            auto ref = a;
            std::vector<std::int32_t> refPiv;
            luReference(ref, refPiv, n);
            EXPECT_EQ(piv, refPiv)
                << "n=" << n << " block=" << block;
            double worst = 0.0;
            for (std::size_t i = 0; i < got.size(); ++i)
                worst = std::max(
                    worst, std::fabs(static_cast<double>(got[i]) -
                                     ref[i]));
            EXPECT_LT(worst, 1e-4)
                << "n=" << n << " block=" << block;
        }
    }
}

TEST(LuPipeline, SingularMatrixCompletesWithoutCrash)
{
    platform::EnzianMachine m(smallConfig());
    LuPipeline::Params p;
    p.n = 32;
    LuPipeline lu("hpcc.lu", m.eventq(), fpgaPipeConfig(m), p);

    auto a = randomMatrix(p.n, p.n, 3);
    for (std::uint32_t i = 0; i < p.n; ++i)
        a[i * p.n + 4] = 0.0f; // kill one column entirely
    const Addr base = mem::AddressMap::fpgaDramBase;
    const auto job = lu.makeJob(base, base + (8ull << 20));
    const Tick end = runLocal(lu, m.fpgaMem(), m.map(), job, a.data());
    EXPECT_GT(end, 0u);
    EXPECT_EQ(lu.jobsCompleted(), 1u);
}

// -------------------------------------------------------- transpose

TEST(TransposePipeline, BitExactAgainstReference)
{
    platform::EnzianMachine m(smallConfig());
    TransposePipeline::Params p;
    p.rows = 128;
    p.cols = 256;
    p.tile = 64;
    TransposePipeline tr("hpcc.ptrans", m.eventq(),
                         fpgaPipeConfig(m), p);

    const auto a = randomMatrix(p.rows, p.cols, 42);
    const Addr base = mem::AddressMap::fpgaDramBase;
    const auto job = tr.makeJob(base, base + (8ull << 20));
    runLocal(tr, m.fpgaMem(), m.map(), job, a.data());

    std::vector<float> got(a.size());
    m.fpgaMem().store().read(m.map().offsetInRegion(job.output),
                             got.data(), got.size() * 4);
    const auto want = transposeReference(a, p.rows, p.cols);
    EXPECT_EQ(std::memcmp(got.data(), want.data(), got.size() * 4),
              0);
}

TEST(TransposePipeline, DoubleTransposeIsIdentity)
{
    platform::EnzianMachine m(smallConfig());
    TransposePipeline::Params fwd;
    fwd.rows = 64;
    fwd.cols = 128;
    fwd.tile = 32;
    TransposePipeline f("hpcc.ptrans_f", m.eventq(),
                        fpgaPipeConfig(m), fwd);
    TransposePipeline::Params bwd;
    bwd.rows = 128;
    bwd.cols = 64;
    bwd.tile = 32;
    TransposePipeline g("hpcc.ptrans_b", m.eventq(),
                        fpgaPipeConfig(m), bwd);

    const auto a = randomMatrix(fwd.rows, fwd.cols, 17);
    const Addr base = mem::AddressMap::fpgaDramBase;
    const Addr mid = base + (8ull << 20);
    const Addr out = base + (16ull << 20);
    runLocal(f, m.fpgaMem(), m.map(), f.makeJob(base, mid), a.data());
    Tick end = 0;
    g.process(0, g.makeJob(mid, out), [&](Tick t) { end = t; });
    ASSERT_GT(end, 0u);

    std::vector<float> back(a.size());
    m.fpgaMem().store().read(m.map().offsetInRegion(out), back.data(),
                             back.size() * 4);
    EXPECT_EQ(std::memcmp(back.data(), a.data(), back.size() * 4), 0);
}

TEST(TransposePipeline, TileWalkPaysStridedAccesses)
{
    platform::EnzianMachine m(smallConfig());
    TransposePipeline::Params p;
    p.rows = 128;
    p.cols = 128;
    p.tile = 32;
    TransposePipeline tr("hpcc.ptrans", m.eventq(),
                         fpgaPipeConfig(m), p);

    const auto a = randomMatrix(p.rows, p.cols, 1);
    const Addr base = mem::AddressMap::fpgaDramBase;
    const std::uint64_t before = m.fpgaMem().stridedRows();
    runLocal(tr, m.fpgaMem(), m.map(),
             tr.makeJob(base, base + (8ull << 20)), a.data());
    // One strided access of `tile` rows per tile.
    EXPECT_EQ(m.fpgaMem().stridedRows() - before,
              static_cast<std::uint64_t>(p.rows) * p.cols / p.tile);
}

TEST(TransposePipeline, RemoteIngestOverEciIsBitExact)
{
    platform::EnzianMachine m(smallConfig());
    TransposePipeline::Params p;
    p.rows = 64;
    p.cols = 64;
    p.tile = 32;
    TransposePipeline tr("hpcc.ptrans", m.eventq(),
                         fpgaPipeConfig(m), p);

    // Input lives in CPU (host) DRAM; the engine pulls it over ECI.
    const auto a = randomMatrix(p.rows, p.cols, 23);
    const Addr host = 1ull << 20;
    m.cpuMem().store().write(m.map().offsetInRegion(host), a.data(),
                             a.size() * 4);
    auto job = tr.makeJob(host, mem::AddressMap::fpgaDramBase);
    job.input_remote = true;
    Tick end = 0;
    tr.process(0, job, [&](Tick t) { end = t; });
    m.run();
    ASSERT_GT(end, 0u);

    std::vector<float> got(a.size());
    m.fpgaMem().store().read(m.map().offsetInRegion(job.output),
                             got.data(), got.size() * 4);
    const auto want = transposeReference(a, p.rows, p.cols);
    EXPECT_EQ(std::memcmp(got.data(), want.data(), got.size() * 4),
              0);
}

// ---------------------------------------------------- pipeline base

/** Minimal concrete pipeline for base-class behavior tests. */
class AddOnePipeline : public Pipeline
{
  public:
    AddOnePipeline(std::string name, EventQueue &eq,
                   const Config &cfg)
        : Pipeline(std::move(name), eq, cfg)
    {
        addStage("add", 10, 0.5,
                 [](std::vector<std::uint8_t> &buf) {
                     for (auto &b : buf)
                         ++b;
                 });
        addStage("pass", 6, 0.25, [](std::vector<std::uint8_t> &) {});
    }
};

TEST(PipelineBase, ServiceCyclesIsFillPlusSteadyState)
{
    platform::EnzianMachine m(smallConfig());
    AddOnePipeline pipe("hpcc.base", m.eventq(), fpgaPipeConfig(m));
    // sum(fill) = 16; max(ceil(ii * items)) = ceil(0.5 * 100) = 50.
    EXPECT_EQ(pipe.serviceCycles(100), 16u + 50u);
    EXPECT_EQ(pipe.serviceCycles(1), 16u + 1u);
    EXPECT_EQ(pipe.stageCount(), 2u);
    EXPECT_EQ(pipe.stageName(0), "add");
}

TEST(PipelineBase, SerializedJobsCompleteInFifoOrder)
{
    platform::EnzianMachine m(smallConfig());
    AddOnePipeline pipe("hpcc.base", m.eventq(), fpgaPipeConfig(m));
    const Addr base = mem::AddressMap::fpgaDramBase;
    std::vector<std::uint8_t> in(1024, 7);
    m.fpgaMem().store().write(m.map().offsetInRegion(base), in.data(),
                              in.size());

    Pipeline::Job job{};
    job.input = base;
    job.input_bytes = in.size();
    job.output = base + (1ull << 20);
    job.output_bytes = in.size();
    job.items = in.size();

    std::vector<Tick> ends;
    for (int i = 0; i < 3; ++i)
        pipe.process(0, job,
                     [&ends](Tick t) { ends.push_back(t); });
    ASSERT_EQ(ends.size(), 3u);
    EXPECT_LT(ends[0], ends[1]);
    EXPECT_LT(ends[1], ends[2]);
    EXPECT_EQ(pipe.jobsCompleted(), 3u);
    EXPECT_EQ(pipe.backlog(), 0u);

    std::vector<std::uint8_t> out(in.size());
    m.fpgaMem().store().read(m.map().offsetInRegion(job.output),
                             out.data(), out.size());
    EXPECT_EQ(out[0], 8); // 7 + 1
}

TEST(PipelineBase, StatsCountJobsAndBytes)
{
    platform::EnzianMachine m(smallConfig());
    AddOnePipeline pipe("hpcc.base", m.eventq(), fpgaPipeConfig(m));
    const Addr base = mem::AddressMap::fpgaDramBase;
    std::vector<std::uint8_t> in(512, 1);
    m.fpgaMem().store().write(m.map().offsetInRegion(base), in.data(),
                              in.size());
    Pipeline::Job job{};
    job.input = base;
    job.input_bytes = in.size();
    job.output = base + (1ull << 20);
    job.output_bytes = in.size();
    job.items = in.size();
    pipe.process(0, job, {});
    pipe.process(0, job, {});
    EXPECT_EQ(pipe.jobsCompleted(), 2u);
    EXPECT_EQ(pipe.bytesIn(), 1024u);
    EXPECT_EQ(pipe.bytesOut(), 1024u);
    EXPECT_GT(pipe.stageBusy(0).count(), 0u);
    EXPECT_GT(pipe.stageOccupancy(0), 0.0);
    EXPECT_LE(pipe.stageOccupancy(0), 1.0);
}

TEST(PipelineBase, FlowIdAllocatorIsDeterministic)
{
    obs::FlowIdAllocator alloc(100);
    EXPECT_EQ(alloc.next(), 100u);
    EXPECT_EQ(alloc.next(), 101u);
    EXPECT_EQ(alloc.issued(100), 2u);
    obs::FlowIdAllocator dflt;
    EXPECT_EQ(dflt.next(), 1u); // id 0 means "untraced"
}

// --------------------------------------------- multi-tenant sharing

struct SchedResult
{
    std::vector<std::complex<float>> fft;
    std::vector<float> lu;
    std::vector<float> tr;
    std::uint64_t preemptions = 0;
};

SchedResult
runSharedShell(fpga::SchedPolicy policy, Tick quantum)
{
    platform::EnzianMachine m(smallConfig());
    m.loadBitstream("coyote-shell");
    fpga::VfpgaScheduler::Config scfg;
    scfg.policy = policy;
    scfg.quantum = quantum;
    fpga::VfpgaScheduler sched("hpcc.sched", m.eventq(), m.shell(),
                               scfg);

    const Addr base = mem::AddressMap::fpgaDramBase;
    const Addr fftIn = base, fftOut = base + (4ull << 20);
    const Addr luIn = base + (8ull << 20),
               luOut = base + (12ull << 20);
    const Addr trIn = base + (16ull << 20),
               trOut = base + (20ull << 20);

    FftPipeline::Params fp;
    fp.n = 256;
    FftPipeline fft("hpcc.fft", m.eventq(), fpgaPipeConfig(m), fp);
    LuPipeline::Params lp;
    lp.n = 128;
    lp.block = 32;
    LuPipeline lu("hpcc.lu", m.eventq(), fpgaPipeConfig(m), lp);
    TransposePipeline::Params tp;
    tp.rows = 64;
    tp.cols = 64;
    tp.tile = 32;
    TransposePipeline tr("hpcc.ptrans", m.eventq(),
                         fpgaPipeConfig(m), tp);

    const auto sig = randomSignal(fp.n, 1);
    const auto mat = randomMatrix(lp.n, lp.n, 2);
    const auto tmat = randomMatrix(tp.rows, tp.cols, 3);
    auto &store = m.fpgaMem().store();
    const auto &map = m.map();
    store.write(map.offsetInRegion(fftIn), sig.data(),
                sig.size() * 8);
    store.write(map.offsetInRegion(luIn), mat.data(),
                mat.size() * 4);
    store.write(map.offsetInRegion(trIn), tmat.data(),
                tmat.size() * 4);

    // Nine jobs onto four slots: the FFT and transpose jobs finish
    // within one quantum, so extra waves keep the queue populated
    // long enough for a round-robin scheduler to preempt the
    // long-running LU kernels. The duplicate jobs write the same
    // bytes, so results are order-independent.
    int done = 0;
    for (int round = 0; round < 3; ++round) {
        fft.runUnder(sched, fft.makeJob(fftIn, fftOut),
                     [&](Tick) { ++done; });
        lu.runUnder(sched, lu.makeJob(luIn, luOut),
                    [&](Tick) { ++done; });
        tr.runUnder(sched, tr.makeJob(trIn, trOut),
                    [&](Tick) { ++done; });
    }
    m.run();
    EXPECT_EQ(done, 9);
    EXPECT_EQ(sched.jobsCompleted(), 9u);

    SchedResult r;
    r.fft.resize(fp.n);
    r.lu.resize(static_cast<std::size_t>(lp.n) * lp.n);
    r.tr.resize(static_cast<std::size_t>(tp.rows) * tp.cols);
    store.read(map.offsetInRegion(fftOut), r.fft.data(),
               r.fft.size() * 8);
    store.read(map.offsetInRegion(luOut), r.lu.data(),
               r.lu.size() * 4);
    store.read(map.offsetInRegion(trOut), r.tr.data(),
               r.tr.size() * 4);
    r.preemptions = sched.preemptions();
    return r;
}

TEST(HpccMultiTenant, KernelsShareShellUnderFifo)
{
    const auto r =
        runSharedShell(fpga::SchedPolicy::Fifo, units::ms(10));
    EXPECT_EQ(r.preemptions, 0u); // FIFO runs to completion
    const auto sig = randomSignal(256, 1);
    EXPECT_LT(rmsError(r.fft, dftReference(sig)), 1e-6);

    auto mat = randomMatrix(128, 128, 2);
    std::vector<std::int32_t> piv;
    luReference(mat, piv, 128);
    for (std::size_t i = 0; i < r.lu.size(); ++i)
        ASSERT_NEAR(r.lu[i], mat[i], 1e-4f);

    const auto want =
        transposeReference(randomMatrix(64, 64, 3), 64, 64);
    EXPECT_EQ(std::memcmp(r.tr.data(), want.data(),
                          want.size() * 4),
              0);
}

TEST(HpccMultiTenant, KernelsShareShellUnderRoundRobin)
{
    // A tiny quantum forces time slicing; results must not change.
    const auto rr =
        runSharedShell(fpga::SchedPolicy::RoundRobin, units::us(5));
    EXPECT_GT(rr.preemptions, 0u);
    const auto fifo =
        runSharedShell(fpga::SchedPolicy::Fifo, units::ms(10));
    EXPECT_EQ(std::memcmp(rr.fft.data(), fifo.fft.data(),
                          rr.fft.size() * 8),
              0);
    EXPECT_EQ(std::memcmp(rr.lu.data(), fifo.lu.data(),
                          rr.lu.size() * 4),
              0);
    EXPECT_EQ(std::memcmp(rr.tr.data(), fifo.tr.data(),
                          rr.tr.size() * 4),
              0);
}

// -------------------------------------------------------- fault path

TEST(HpccFault, FftSurvivesDramEccAndEciLoss)
{
    std::istringstream planText(
        "seed 9\n"
        "fault kind=dram-ecc-correctable prob=1.0 target=1 at_us=0 "
        "until_us=100000\n"
        "fault kind=eci-msg-drop prob=0.02 at_us=0 "
        "until_us=100000\n");
    std::string err;
    const auto plan = fault::FaultPlan::parse(planText, err);
    ASSERT_TRUE(plan.has_value()) << err;

    platform::EnzianMachine m(smallConfig());
    fault::FaultInjector inj("hpcc.fault", m.eventq(), *plan);
    inj.attachEci(m.fabric(), m.cpuHome(), m.fpgaHome(),
                  m.cpuRemote(), m.fpgaRemote());
    inj.attachDram(m.cpuMem().dram(), m.fpgaMem().dram());
    inj.arm();

    FftPipeline::Params p;
    p.n = 256;
    FftPipeline fft("hpcc.fft", m.eventq(), fpgaPipeConfig(m), p);

    // Input in host DRAM so the ingest actually crosses the lossy
    // ECI links; output lands in FPGA DRAM under ECC scrubbing.
    const auto in = randomSignal(p.n, 31);
    const Addr host = 1ull << 20;
    m.cpuMem().store().write(m.map().offsetInRegion(host), in.data(),
                             in.size() * 8);
    auto job = fft.makeJob(host, mem::AddressMap::fpgaDramBase);
    job.input_remote = true;
    Tick end = 0;
    fft.process(0, job, [&](Tick t) { end = t; });
    m.run();
    ASSERT_GT(end, 0u) << "job did not complete under faults";

    std::vector<std::complex<float>> out(p.n);
    m.fpgaMem().store().read(m.map().offsetInRegion(job.output),
                             out.data(), job.output_bytes);
    EXPECT_LT(rmsError(out, dftReference(in)), 1e-6);
}

TEST(HpccFaultDeathTest, ReconfigOfPinnedSlotIsFatal)
{
    platform::EnzianMachine m(smallConfig());
    m.loadBitstream("coyote-shell");

    FftPipeline::Params p;
    p.n = 128;
    FftPipeline fft("hpcc.fft", m.eventq(), fpgaPipeConfig(m), p);
    fft.bindSlot(&m.shell(), 2);

    // A remote-ingest job stays in flight until the queue drains, so
    // the slot is pinned right now.
    const auto in = randomSignal(p.n, 8);
    const Addr host = 1ull << 20;
    m.cpuMem().store().write(m.map().offsetInRegion(host), in.data(),
                             in.size() * 8);
    auto job = fft.makeJob(host, mem::AddressMap::fpgaDramBase);
    job.input_remote = true;
    fft.process(0, job, {});
    ASSERT_EQ(m.shell().pins(2), 1u);

    EXPECT_EXIT(m.shell().loadApp(2, "intruder"),
                ::testing::ExitedWithCode(1),
                "while a pipeline job is in flight");

    // The simulation itself still drains cleanly.
    m.run();
    EXPECT_EQ(m.shell().pins(2), 0u);
    EXPECT_EQ(fft.jobsCompleted(), 1u);
}

} // namespace
} // namespace enzian::accel::hpcc
