/**
 * @file
 * Additional network-substrate coverage: MSS/window edges, multiple
 * stack pairs sharing a switch, ack accounting, and link edge cases.
 */

#include <gtest/gtest.h>

#include "net/switch.hh"
#include "net/tcp_stack.hh"
#include "platform/params.hh"

namespace enzian::net {
namespace {

Switch::Config
switchConfig()
{
    Switch::Config cfg;
    cfg.port = platform::params::eth100Config();
    return cfg;
}

TEST(TcpEdge, SingleByteStream)
{
    EventQueue eq;
    Switch sw("sw", eq, 2, switchConfig());
    TcpStack a("a", eq, sw, fpgaTcpConfig(0, 250e6));
    TcpStack b("b", eq, sw, fpgaTcpConfig(1, 250e6));
    const auto id = a.connect(b);
    bool done = false;
    a.send(id, 1, [&](Tick) { done = true; });
    eq.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(b.bytesReceived(id), 1u);
}

TEST(TcpEdge, TransferNotMultipleOfMss)
{
    EventQueue eq;
    Switch sw("sw", eq, 2, switchConfig());
    TcpStack a("a", eq, sw, fpgaTcpConfig(0, 250e6));
    TcpStack b("b", eq, sw, fpgaTcpConfig(1, 250e6));
    const auto id = a.connect(b);
    const std::uint64_t n = 3 * a.config().mss + 17;
    bool done = false;
    a.send(id, n, [&](Tick) { done = true; });
    eq.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(b.bytesReceived(id), n);
    EXPECT_EQ(a.segmentsSent(), 4u);
}

TEST(TcpEdge, BackToBackSendsOnOneFlowStayOrdered)
{
    EventQueue eq;
    Switch sw("sw", eq, 2, switchConfig());
    TcpStack a("a", eq, sw, fpgaTcpConfig(0, 250e6));
    TcpStack b("b", eq, sw, fpgaTcpConfig(1, 250e6));
    const auto id = a.connect(b);
    std::vector<Tick> completions;
    for (int i = 0; i < 5; ++i)
        a.send(id, 10000, [&](Tick t) { completions.push_back(t); });
    eq.run();
    ASSERT_EQ(completions.size(), 5u);
    for (std::size_t i = 1; i < completions.size(); ++i)
        EXPECT_GE(completions[i], completions[i - 1]);
    EXPECT_EQ(b.bytesReceived(id), 50000u);
}

TEST(TcpEdge, TwoStackPairsShareOneSwitch)
{
    EventQueue eq;
    Switch sw("sw", eq, 4, switchConfig());
    TcpStack a("a", eq, sw, fpgaTcpConfig(0, 250e6));
    TcpStack b("b", eq, sw, fpgaTcpConfig(1, 250e6));
    TcpStack c("c", eq, sw, hostTcpConfig(2));
    TcpStack d("d", eq, sw, hostTcpConfig(3));
    const auto ab = a.connect(b);
    const auto cd = c.connect(d);
    int done = 0;
    a.send(ab, 1 << 20, [&](Tick) { ++done; });
    c.send(cd, 1 << 20, [&](Tick) { ++done; });
    eq.run();
    EXPECT_EQ(done, 2);
    EXPECT_EQ(b.bytesReceived(ab), 1u << 20);
    EXPECT_EQ(d.bytesReceived(cd), 1u << 20);
}

TEST(TcpEdge, ReceiveCallbackSeesCumulativeBytes)
{
    EventQueue eq;
    Switch sw("sw", eq, 2, switchConfig());
    TcpStack a("a", eq, sw, fpgaTcpConfig(0, 250e6));
    TcpStack b("b", eq, sw, fpgaTcpConfig(1, 250e6));
    const auto id = a.connect(b);
    std::uint64_t delivered = 0;
    b.setReceiveCallback([&](std::uint32_t f, std::uint64_t bytes) {
        delivered += bytes;
        EXPECT_LE(delivered, b.bytesReceived(f) + bytes);
    });
    a.send(id, 100000, [](Tick) {});
    eq.run();
    EXPECT_EQ(delivered, 100000u);
}

TEST(SwitchEdge, ManyPortsAllToAll)
{
    EventQueue eq;
    Switch sw("sw", eq, 6, switchConfig());
    int received[6] = {};
    for (std::uint32_t p = 0; p < 6; ++p) {
        sw.setEndpoint(p, [&received, p](Tick, std::uint64_t,
                                         std::uint64_t) {
            ++received[p];
        });
    }
    for (std::uint32_t s = 0; s < 6; ++s)
        for (std::uint32_t d = 0; d < 6; ++d)
            if (s != d)
                sw.sendFrom(s, 256, Switch::makeTag(d, 0));
    eq.run();
    for (int p = 0; p < 6; ++p)
        EXPECT_EQ(received[p], 5);
}

TEST(SwitchEdgeDeathTest, TooFewPortsFatal)
{
    EventQueue eq;
    EXPECT_EXIT(Switch("bad", eq, 1, switchConfig()),
                ::testing::ExitedWithCode(1), "at least 2");
}

} // namespace
} // namespace enzian::net
