/**
 * @file
 * Unit tests for the memory substrate.
 */

#include <gtest/gtest.h>

#include "mem/address_map.hh"
#include "mem/backing_store.hh"
#include "mem/dram_channel.hh"
#include "mem/memory_controller.hh"

namespace enzian::mem {
namespace {

TEST(BackingStore, ReadsZeroBeforeWrite)
{
    BackingStore s(1 << 20);
    std::uint8_t buf[16];
    s.read(4096, buf, sizeof(buf));
    for (auto b : buf)
        EXPECT_EQ(b, 0);
    EXPECT_EQ(s.pagesAllocated(), 0u);
}

TEST(BackingStore, RoundTripAcrossPageBoundary)
{
    BackingStore s(1 << 20);
    std::vector<std::uint8_t> data(10000);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 7);
    const Addr addr = BackingStore::pageSize - 100;
    s.write(addr, data.data(), data.size());
    std::vector<std::uint8_t> back(data.size());
    s.read(addr, back.data(), back.size());
    EXPECT_EQ(data, back);
    EXPECT_GE(s.pagesAllocated(), 3u);
}

TEST(BackingStore, TypedAccessors)
{
    BackingStore s(1 << 16);
    s.store<std::uint64_t>(8, 0xdeadbeefcafef00dull);
    EXPECT_EQ(s.load<std::uint64_t>(8), 0xdeadbeefcafef00dull);
    EXPECT_EQ(s.load<std::uint32_t>(8), 0xcafef00du);
}

TEST(BackingStore, FillPattern)
{
    BackingStore s(1 << 16);
    s.fill(100, 0xab, 5000);
    EXPECT_EQ(s.load<std::uint8_t>(100), 0xab);
    EXPECT_EQ(s.load<std::uint8_t>(5099), 0xab);
    EXPECT_EQ(s.load<std::uint8_t>(5100), 0x00);
}

TEST(BackingStore, SparseFootprint)
{
    BackingStore s(1ull << 40); // 1 TiB addressable
    s.store<std::uint64_t>(512ull << 30, 1); // touch one page
    EXPECT_EQ(s.pagesAllocated(), 1u);
}

TEST(BackingStoreDeathTest, OutOfRangePanics)
{
    BackingStore s(4096);
    std::uint8_t b = 0;
    EXPECT_DEATH(s.read(4096, &b, 1), "beyond");
    EXPECT_DEATH(s.write(4090, &b, 100), "beyond");
}

TEST(AddressMap, ClassifiesRegions)
{
    AddressMap m(1ull << 30, 1ull << 30);
    EXPECT_EQ(m.classify(0), RegionKind::CpuDram);
    EXPECT_EQ(m.classify((1ull << 30) - 1), RegionKind::CpuDram);
    EXPECT_EQ(m.classify(AddressMap::fpgaDramBase),
              RegionKind::FpgaDram);
    EXPECT_EQ(m.classify(AddressMap::cpuIoBase + 8), RegionKind::CpuIo);
    EXPECT_EQ(m.classify(AddressMap::fpgaIoBase), RegionKind::FpgaIo);
}

TEST(AddressMap, HomeNodes)
{
    AddressMap m(1ull << 30, 1ull << 30);
    EXPECT_EQ(m.homeOf(100), NodeId::Cpu);
    EXPECT_EQ(m.homeOf(AddressMap::fpgaDramBase + 100), NodeId::Fpga);
}

TEST(AddressMap, OffsetsInRegion)
{
    AddressMap m(1ull << 30, 1ull << 30);
    EXPECT_EQ(m.offsetInRegion(1234), 1234u);
    EXPECT_EQ(m.offsetInRegion(AddressMap::fpgaDramBase + 77), 77u);
}

TEST(AddressMap, ContainsRejectsHoles)
{
    AddressMap m(1ull << 20, 1ull << 20);
    EXPECT_TRUE(m.contains(0));
    EXPECT_FALSE(m.contains(1ull << 21)); // between CPU DRAM and FPGA
    EXPECT_FALSE(m.contains((1ull << 40) + (1ull << 21)));
}

TEST(AddressMapDeathTest, UnmappedFatal)
{
    AddressMap m(1ull << 20, 1ull << 20);
    EXPECT_EXIT(m.classify(1ull << 30), ::testing::ExitedWithCode(1),
                "unmapped");
}

TEST(DramChannel, BandwidthSetsStreamTime)
{
    EventQueue eq;
    DramChannel::Config cfg;
    cfg.mega_transfers = 2400;
    cfg.bus_bytes = 8;
    cfg.efficiency = 1.0;
    cfg.access_latency_ns = 0.0;
    DramChannel ch("ch", eq, cfg);
    // 19.2 GB/s; 19200 bytes should take ~1 us.
    const Tick done = ch.access(0, 19200);
    EXPECT_NEAR(units::toMicros(done), 1.0, 0.01);
}

TEST(DramChannel, BackToBackQueues)
{
    EventQueue eq;
    DramChannel::Config cfg;
    cfg.access_latency_ns = 40.0;
    DramChannel ch("ch", eq, cfg);
    const Tick first = ch.access(0, 1 << 20);
    const Tick second = ch.access(0, 1 << 20);
    EXPECT_GT(second, first);
    // Second waits for the first's bus occupancy.
    EXPECT_NEAR(static_cast<double>(second - units::ns(40)),
                2.0 * static_cast<double>(first - units::ns(40)),
                static_cast<double>(first) * 0.01);
}

TEST(DramSystem, StripesLargeAccesses)
{
    EventQueue eq;
    DramChannel::Config cfg;
    cfg.access_latency_ns = 0.0;
    cfg.efficiency = 1.0;
    DramSystem one("m1", eq, 1, cfg);
    DramSystem four("m4", eq, 4, cfg);
    const Tick t1 = one.access(0, 1 << 20);
    const Tick t4 = four.access(0, 1 << 20);
    EXPECT_NEAR(static_cast<double>(t1) / static_cast<double>(t4), 4.0,
                0.1);
}

TEST(DramSystem, AggregateBandwidth)
{
    EventQueue eq;
    DramChannel::Config cfg;
    DramSystem sys("m", eq, 4, cfg);
    EXPECT_NEAR(sys.effectiveBandwidth(),
                4 * sys.channel(0).effectiveBandwidth(), 1.0);
}

TEST(MemoryController, FunctionalAndTimed)
{
    EventQueue eq;
    MemoryController mc("mc", eq, 1 << 20, 2,
                        DramChannel::Config{});
    const char msg[] = "hello enzian";
    const Tick wt = mc.write(0, 256, msg, sizeof(msg)).done;
    EXPECT_GT(wt, 0u);
    char back[sizeof(msg)] = {};
    const Tick rt = mc.read(wt, 256, back, sizeof(back)).done;
    EXPECT_GT(rt, wt);
    EXPECT_STREQ(back, msg);
}

} // namespace
} // namespace enzian::mem
