/**
 * @file
 * Unit tests for the ECI link and fabric timing models.
 */

#include <gtest/gtest.h>

#include "eci/eci_link.hh"
#include "platform/params.hh"

namespace enzian::eci {
namespace {

EciMsg
dataMsg(Addr addr, mem::NodeId src = mem::NodeId::Fpga)
{
    EciMsg m;
    m.op = Opcode::PEMD;
    m.src = src;
    m.dst = src == mem::NodeId::Fpga ? mem::NodeId::Cpu
                                     : mem::NodeId::Fpga;
    m.addr = addr;
    return m;
}

TEST(EciLink, EffectiveBandwidthMatchesConfig)
{
    EventQueue eq;
    EciLink::Config cfg = platform::params::eciLinkConfig();
    EciLink link("l", eq, cfg);
    // 12 lanes x 10 Gb/s x framing efficiency.
    EXPECT_NEAR(link.effectiveBandwidth(),
                12 * 10e9 / 8.0 * cfg.efficiency, 1e7);
}

TEST(EciLink, DeliveryIncludesProcessingAndWire)
{
    EventQueue eq;
    EciLink::Config cfg = platform::params::eciLinkConfig();
    EciLink link("l", eq, cfg);
    bool delivered = false;
    Tick delivery = 0;
    link.setReceiver(mem::NodeId::Cpu, [&](const EciMsg &) {
        delivered = true;
    });
    link.setReceiver(mem::NodeId::Fpga, [&](const EciMsg &) {});
    delivery = link.send(dataMsg(0));
    // fpga_proc + wire + cpu_proc + serialization of 160 bytes.
    const double expect_ns = cfg.fpga_proc_ns + cfg.wire_latency_ns +
                             cfg.cpu_proc_ns +
                             160.0 / link.effectiveBandwidth() * 1e9;
    EXPECT_NEAR(units::toNanos(delivery), expect_ns, 2.0);
    eq.run();
    EXPECT_TRUE(delivered);
}

TEST(EciLink, BackToBackSerializes)
{
    EventQueue eq;
    EciLink link("l", eq, platform::params::eciLinkConfig());
    link.setReceiver(mem::NodeId::Cpu, [](const EciMsg &) {});
    const Tick d1 = link.send(dataMsg(0));
    const Tick d2 = link.send(dataMsg(128));
    const Tick ser = units::transferTicks(160,
                                          link.effectiveBandwidth());
    EXPECT_EQ(d2 - d1, ser);
}

TEST(EciLink, OppositeDirectionsDoNotContend)
{
    EventQueue eq;
    EciLink link("l", eq, platform::params::eciLinkConfig());
    link.setReceiver(mem::NodeId::Cpu, [](const EciMsg &) {});
    link.setReceiver(mem::NodeId::Fpga, [](const EciMsg &) {});
    const Tick up = link.send(dataMsg(0, mem::NodeId::Fpga));
    const Tick down = link.send(dataMsg(0, mem::NodeId::Cpu));
    // The CPU-side engine is faster, so downstream delivery can even
    // be earlier; key property: no serialization coupling (delta is
    // only the processing asymmetry).
    const double asym_ns = 0.0; // both directions pay cpu+fpga proc
    EXPECT_NEAR(units::toNanos(down), units::toNanos(up) + asym_ns,
                1.0);
}

TEST(EciLink, LaneDialDownScalesBandwidth)
{
    EventQueue eq;
    EciLink link("l", eq, platform::params::eciLinkConfig());
    const double full = link.effectiveBandwidth();
    link.setLanes(4); // early ECI bring-up configuration
    EXPECT_NEAR(link.effectiveBandwidth(), full / 3.0, 1e6);
}

TEST(EciLink, CountsTraffic)
{
    EventQueue eq;
    EciLink link("l", eq, platform::params::eciLinkConfig());
    link.setReceiver(mem::NodeId::Cpu, [](const EciMsg &) {});
    link.send(dataMsg(0));
    link.send(dataMsg(128));
    EXPECT_EQ(link.messagesSent(), 2u);
    EXPECT_EQ(link.bytesSent(), 2u * 160u);
}

TEST(EciLink, TapObservesMessages)
{
    EventQueue eq;
    EciLink link("l", eq, platform::params::eciLinkConfig());
    link.setReceiver(mem::NodeId::Cpu, [](const EciMsg &) {});
    int taps = 0;
    link.setTap([&](Tick, const EciMsg &) { ++taps; });
    link.send(dataMsg(0));
    EXPECT_EQ(taps, 1);
}

TEST(EciLink, AddTapChainsObservers)
{
    EventQueue eq;
    EciLink link("l", eq, platform::params::eciLinkConfig());
    link.setReceiver(mem::NodeId::Cpu, [](const EciMsg &) {});
    // Two independent observers, attached in order, both see every
    // message (regression: setTap used to be a single slot, so the
    // second observer silently disconnected the first).
    std::vector<int> order;
    link.addTap([&](Tick, const EciMsg &) { order.push_back(1); });
    link.addTap([&](Tick, const EciMsg &) { order.push_back(2); });
    EXPECT_EQ(link.tapCount(), 2u);
    link.send(dataMsg(0));
    link.send(dataMsg(128));
    EXPECT_EQ(order, (std::vector<int>{1, 2, 1, 2}));

    // setTap still replaces everything; nullptr clears.
    link.setTap([&](Tick, const EciMsg &) { order.push_back(3); });
    EXPECT_EQ(link.tapCount(), 1u);
    link.send(dataMsg(256));
    EXPECT_EQ(order.back(), 3);
    link.setTap(nullptr);
    EXPECT_EQ(link.tapCount(), 0u);
}

TEST(EciFabric, SingleLinkPolicyUsesLinkZero)
{
    EventQueue eq;
    EciFabric fab("f", eq, platform::params::eciLinkConfig(), 2,
                  BalancePolicy::SingleLink);
    fab.setReceiver(mem::NodeId::Cpu, [](const EciMsg &) {});
    for (Addr a = 0; a < 16 * 128; a += 128)
        fab.send(dataMsg(a));
    EXPECT_EQ(fab.link(0).messagesSent(), 16u);
    EXPECT_EQ(fab.link(1).messagesSent(), 0u);
}

TEST(EciFabric, RoundRobinAlternates)
{
    EventQueue eq;
    EciFabric fab("f", eq, platform::params::eciLinkConfig(), 2,
                  BalancePolicy::RoundRobin);
    fab.setReceiver(mem::NodeId::Cpu, [](const EciMsg &) {});
    for (Addr a = 0; a < 10 * 128; a += 128)
        fab.send(dataMsg(a));
    EXPECT_EQ(fab.link(0).messagesSent(), 5u);
    EXPECT_EQ(fab.link(1).messagesSent(), 5u);
}

TEST(EciFabric, AddressHashSpreadsStrides)
{
    EventQueue eq;
    EciFabric fab("f", eq, platform::params::eciLinkConfig(), 2,
                  BalancePolicy::AddressHash);
    fab.setReceiver(mem::NodeId::Cpu, [](const EciMsg &) {});
    const std::uint64_t n = 1000;
    for (Addr a = 0; a < n * 128; a += 128)
        fab.send(dataMsg(a));
    const double frac0 =
        static_cast<double>(fab.link(0).messagesSent()) / n;
    EXPECT_GT(frac0, 0.40);
    EXPECT_LT(frac0, 0.60);
}

TEST(EciFabric, AddressHashIsPerLineStable)
{
    EventQueue eq;
    EciFabric fab("f", eq, platform::params::eciLinkConfig(), 2,
                  BalancePolicy::AddressHash);
    fab.setReceiver(mem::NodeId::Cpu, [](const EciMsg &) {});
    fab.send(dataMsg(0x4000));
    const auto m0 = fab.link(0).messagesSent();
    fab.send(dataMsg(0x4000)); // same line -> same link
    EXPECT_EQ(fab.link(0).messagesSent() % 2, 0u);
    EXPECT_TRUE(fab.link(0).messagesSent() == 2 * m0 ||
                fab.link(1).messagesSent() == 2);
}

TEST(EciFabric, LeastLoadedBalancesBursts)
{
    EventQueue eq;
    EciFabric fab("f", eq, platform::params::eciLinkConfig(), 2,
                  BalancePolicy::LeastLoaded);
    fab.setReceiver(mem::NodeId::Cpu, [](const EciMsg &) {});
    for (int i = 0; i < 100; ++i)
        fab.send(dataMsg(0)); // same address: hash would pin one link
    EXPECT_EQ(fab.link(0).messagesSent(), 50u);
    EXPECT_EQ(fab.link(1).messagesSent(), 50u);
}

TEST(EciFabric, AggregateBandwidth)
{
    EventQueue eq;
    EciFabric fab("f", eq, platform::params::eciLinkConfig(), 2);
    EXPECT_NEAR(fab.effectiveBandwidth(),
                2 * fab.link(0).effectiveBandwidth(), 1.0);
}

} // namespace
} // namespace enzian::eci
