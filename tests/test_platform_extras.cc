/**
 * @file
 * Tests for DeviceTree generation, the BDK ECI bring-up, and the
 * Catapult bump-in-the-wire network element.
 */

#include <gtest/gtest.h>

#include "net/bump_in_wire.hh"
#include "platform/bdk.hh"
#include "platform/device_tree.hh"
#include "platform/platform_factory.hh"

namespace enzian::platform {
namespace {

EnzianMachine::Config
smallConfig()
{
    auto cfg = enzianDefaultConfig();
    cfg.cpu_dram_bytes = 64ull << 20;
    cfg.fpga_dram_bytes = 64ull << 20;
    return cfg;
}

TEST(DeviceTree, GeneratesValidAsymmetricTree)
{
    EnzianMachine m(smallConfig());
    const std::string dts = generateDeviceTree(m);
    std::string err;
    EXPECT_TRUE(validateDeviceTree(dts, m, err)) << err;
    // All CPUs in node 0; no cpu in node 1.
    EXPECT_NE(dts.find("cpu@47"), std::string::npos);
    EXPECT_EQ(dts.find("cpu@48"), std::string::npos);
    // FPGA memory window present as node 1.
    EXPECT_NE(dts.find("numa-node-id = <1>"), std::string::npos);
    EXPECT_NE(dts.find("memory@0x10000000000"), std::string::npos);
}

TEST(DeviceTree, FpgaMemoryCanBeHidden)
{
    // "the other may or may not appear to have memory" (section 4.4).
    EnzianMachine m(smallConfig());
    DeviceTreeOptions opts;
    opts.expose_fpga_memory = false;
    const std::string dts = generateDeviceTree(m, opts);
    EXPECT_EQ(dts.find("numa-node-id = <1>"), std::string::npos);
    std::string err;
    EXPECT_TRUE(validateDeviceTree(dts, m, err)) << err;
}

TEST(DeviceTree, EciNodeReflectsLinkGeometry)
{
    auto cfg = smallConfig();
    cfg.link.lanes = 4;
    EnzianMachine m(cfg);
    const std::string dts = generateDeviceTree(m);
    EXPECT_NE(dts.find("ethz,links = <2>"), std::string::npos);
    EXPECT_NE(dts.find("ethz,lanes-per-link = <4>"),
              std::string::npos);
}

TEST(DeviceTree, ValidatorCatchesCorruption)
{
    EnzianMachine m(smallConfig());
    std::string dts = generateDeviceTree(m);
    std::string err;
    std::string broken = dts;
    broken.erase(broken.rfind('}'), 1);
    EXPECT_FALSE(validateDeviceTree(broken, m, err));
    std::string missing = dts;
    const auto pos = missing.find("cpus {");
    missing.replace(pos, 4, "xpus");
    EXPECT_FALSE(validateDeviceTree(missing, m, err));
}

TEST(Bdk, TrainsAllLanesOnHealthyBoard)
{
    EnzianMachine m(smallConfig());
    BdkEciBringup::Config bcfg;
    bcfg.retrain_chance = 0.0;
    BdkEciBringup bdk("bdk", m.eventq(), m, bcfg);
    Tick done_at = 0;
    bdk.start([&](Tick t) { done_at = t; });
    m.eventq().run();
    ASSERT_TRUE(bdk.complete());
    EXPECT_EQ(bdk.lanesUp(0), 12u);
    EXPECT_EQ(bdk.lanesUp(1), 12u);
    // One training pass per lane: ~350 us.
    EXPECT_NEAR(units::toMicros(done_at), 350.0, 5.0);
    EXPECT_EQ(m.fabric().link(0).lanes(), 12u);
}

TEST(Bdk, DialDownTrainsFourLanes)
{
    EnzianMachine m(smallConfig());
    BdkEciBringup::Config bcfg;
    bcfg.lanes_per_link = 4; // early bring-up configuration
    bcfg.retrain_chance = 0.0;
    BdkEciBringup bdk("bdk", m.eventq(), m, bcfg);
    bool done = false;
    bdk.start([&](Tick) { done = true; });
    m.eventq().run();
    ASSERT_TRUE(done);
    EXPECT_EQ(m.fabric().link(0).lanes(), 4u);
    // Bandwidth reflects the dial-down.
    EXPECT_NEAR(m.fabric().link(0).effectiveBandwidth(),
                4 * 10e9 / 8.0 * 0.92, 1e7);
}

TEST(Bdk, MarginalLanesRetrain)
{
    EnzianMachine m(smallConfig());
    BdkEciBringup::Config bcfg;
    bcfg.retrain_chance = 0.5;
    bcfg.seed = 7;
    BdkEciBringup bdk("bdk", m.eventq(), m, bcfg);
    Tick done_at = 0;
    bdk.start([&](Tick t) { done_at = t; });
    m.eventq().run();
    ASSERT_TRUE(bdk.complete());
    EXPECT_GT(bdk.retrains(), 0u);
    // Retrains stretch the bring-up beyond one pass.
    EXPECT_GT(units::toMicros(done_at), 360.0);
    EXPECT_GT(bdk.lanesUp(0), 0u);
}

TEST(BdkDeathTest, RefusesImageWithoutEci)
{
    auto cfg = smallConfig();
    cfg.bitstream = "power-burn"; // no ECI layers
    EnzianMachine m(cfg);
    BdkEciBringup bdk("bdk", m.eventq(), m, BdkEciBringup::Config{});
    EXPECT_EXIT(bdk.start([](Tick) {}), ::testing::ExitedWithCode(1),
                "no ECI layers");
}

class BumpInWireTest : public ::testing::Test
{
  protected:
    BumpInWireTest()
    {
        net::EthernetLink::Config net_cfg =
            params::eth100Config(); // switch side: 100 G
        net::EthernetLink::Config host_cfg = net_cfg;
        host_cfg.rate_gbps = 40.0; // ThunderX NIC side
        net_link = std::make_unique<net::EthernetLink>("net", eq,
                                                       net_cfg);
        host_link = std::make_unique<net::EthernetLink>("host", eq,
                                                        host_cfg);
        biw = std::make_unique<net::BumpInWire>(
            "biw", eq, *net_link, *host_link,
            net::BumpInWire::Config{});
    }

    EventQueue eq;
    std::unique_ptr<net::EthernetLink> net_link, host_link;
    std::unique_ptr<net::BumpInWire> biw;
};

TEST_F(BumpInWireTest, FramesTraverseBothDirections)
{
    std::uint64_t host_got = 0, net_got = 0;
    host_link->setReceiver(1, [&](Tick, std::uint64_t p,
                                  std::uint64_t) { host_got = p; });
    net_link->setReceiver(0, [&](Tick, std::uint64_t p,
                                 std::uint64_t) { net_got = p; });
    net_link->send(0, 1500, 1); // from the network toward the host
    host_link->send(1, 900, 2); // from the host toward the network
    eq.run();
    EXPECT_EQ(host_got, 1500u);
    EXPECT_EQ(net_got, 900u);
    EXPECT_EQ(biw->framesToHost(), 1u);
    EXPECT_EQ(biw->framesToNet(), 1u);
}

TEST_F(BumpInWireTest, InlineTransformChangesFrames)
{
    // Inline compression: frames toward the host shrink 4x.
    biw->setTransform([](bool to_host, std::uint64_t bytes) {
        return to_host ? bytes / 4 : bytes * 4;
    });
    std::uint64_t host_got = 0;
    host_link->setReceiver(1, [&](Tick, std::uint64_t p,
                                  std::uint64_t) { host_got = p; });
    net_link->send(0, 2000, 1);
    eq.run();
    EXPECT_EQ(host_got, 500u);
    EXPECT_EQ(biw->bytesIn(), 2000u);
    EXPECT_EQ(biw->bytesOut(), 500u);
}

TEST_F(BumpInWireTest, PipelineAddsBoundedLatency)
{
    host_link->setReceiver(1,
                           [](Tick, std::uint64_t, std::uint64_t) {});
    Tick direct = 0, through = 0;
    {
        // Direct 100G link for reference.
        EventQueue q2;
        net::EthernetLink ref("ref", q2, params::eth100Config());
        ref.setReceiver(1, [](Tick, std::uint64_t, std::uint64_t) {});
        direct = ref.send(0, 1500, 0);
    }
    // Through the bump: delivered tick at the host link.
    Tick delivered = 0;
    host_link->setReceiver(1, [&](Tick t, std::uint64_t,
                                  std::uint64_t) { delivered = t; });
    net_link->send(0, 1500, 0);
    eq.run();
    through = delivered;
    // The added latency is the pipeline delay plus the second hop,
    // i.e. microseconds at most - not a store-and-forward stall.
    EXPECT_GT(through, direct);
    EXPECT_LT(units::toMicros(through - direct), 2.0);
}

} // namespace
} // namespace enzian::platform
