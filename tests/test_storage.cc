/**
 * @file
 * Tests for the NVMe device model and the smart storage controller
 * (in-storage scan offload + DRAM block cache).
 */

#include <gtest/gtest.h>

#include <cstring>

#include "platform/params.hh"
#include "storage/smart_storage.hh"

namespace enzian::storage {
namespace {

class StorageFixture : public ::testing::Test
{
  protected:
    StorageFixture()
        : device("ssd", eq, NvmeDevice::Config{}),
          fpga_mem("fpga.mem", eq, 256ull << 20, 4,
                   platform::params::fpgaDramConfig()),
          ctrl("smart", eq, device, fpga_mem,
               SmartStorageController::Config{})
    {
    }

    EventQueue eq;
    NvmeDevice device;
    mem::MemoryController fpga_mem;
    SmartStorageController ctrl;
};

TEST_F(StorageFixture, DeviceReadWriteRoundTrip)
{
    std::vector<std::uint8_t> block(blockBytes);
    for (std::size_t i = 0; i < block.size(); ++i)
        block[i] = static_cast<std::uint8_t>(i * 3);
    bool wrote = false;
    Tick w_at = 0;
    device.write(7, 1, block.data(), [&](Tick t) {
        wrote = true;
        w_at = t;
    });
    eq.run();
    ASSERT_TRUE(wrote);
    // Flash program latency dominates: ~500 us.
    EXPECT_NEAR(units::toMicros(w_at), 500.0, 60.0);

    std::vector<std::uint8_t> back(blockBytes);
    bool read_done = false;
    Tick r_at = 0;
    const Tick t0 = eq.now();
    device.read(7, 1, back.data(), [&](Tick t) {
        read_done = true;
        r_at = t - t0;
    });
    eq.run();
    ASSERT_TRUE(read_done);
    EXPECT_EQ(back, block);
    EXPECT_NEAR(units::toMicros(r_at), 80.0, 20.0);
}

TEST_F(StorageFixture, DeviceChannelsOverlapCommands)
{
    // 8 concurrent 4K reads on 8 channels finish ~together, far
    // faster than 8x serial latency.
    std::vector<std::vector<std::uint8_t>> bufs(
        8, std::vector<std::uint8_t>(blockBytes));
    Tick last = 0;
    int done = 0;
    for (int i = 0; i < 8; ++i) {
        device.read(static_cast<std::uint64_t>(i) * 16, 1,
                    bufs[static_cast<std::size_t>(i)].data(),
                    [&](Tick t) {
                        ++done;
                        last = std::max(last, t);
                    });
    }
    eq.run();
    ASSERT_EQ(done, 8);
    EXPECT_LT(units::toMicros(last), 2.0 * 80.0 + 20.0);
}

TEST_F(StorageFixture, DeviceBoundsChecked)
{
    std::uint8_t b[blockBytes];
    EXPECT_DEATH(device.read(device.blockCount(), 1, b, [](Tick) {}),
                 "past capacity");
}

TEST_F(StorageFixture, DramEmulatedDeviceIsFast)
{
    NvmeDevice nvm("nvm", eq,
                   NvmeDevice::dramEmulated(1ull << 30));
    std::uint8_t b[blockBytes] = {};
    Tick r_at = 0;
    nvm.read(0, 1, b, [&](Tick t) { r_at = t; });
    eq.run();
    EXPECT_LT(units::toMicros(r_at), 5.0);
}

TEST_F(StorageFixture, CacheHitsServeFromDram)
{
    std::vector<std::uint8_t> block(blockBytes, 0x3e);
    device.media().write(42 * blockBytes, block.data(), blockBytes);

    std::vector<std::uint8_t> out(blockBytes);
    Tick miss_t = 0, hit_t = 0;
    bool first = false;
    ctrl.readBlock(42, out.data(), [&](Tick t) {
        miss_t = t;
        first = true;
    });
    eq.run();
    ASSERT_TRUE(first);
    EXPECT_EQ(out[0], 0x3e);
    EXPECT_EQ(ctrl.cacheMisses(), 1u);

    const Tick t0 = eq.now();
    bool second = false;
    ctrl.readBlock(42, out.data(), [&](Tick t) {
        hit_t = t - t0;
        second = true;
    });
    eq.run();
    ASSERT_TRUE(second);
    EXPECT_EQ(ctrl.cacheHits(), 1u);
    // DRAM-class vs flash-class latency.
    EXPECT_LT(units::toMicros(hit_t), 5.0);
    EXPECT_GT(units::toMicros(miss_t), 50.0);
}

TEST_F(StorageFixture, WriteThroughUpdatesCacheAndMedia)
{
    std::vector<std::uint8_t> v1(blockBytes, 0x01);
    std::vector<std::uint8_t> v2(blockBytes, 0x02);
    std::vector<std::uint8_t> out(blockBytes);
    bool done1 = false;
    device.media().write(5 * blockBytes, v1.data(), blockBytes);
    ctrl.readBlock(5, out.data(), [&](Tick) { done1 = true; });
    eq.run();
    ASSERT_TRUE(done1);

    bool wrote = false;
    ctrl.writeBlock(5, v2.data(), [&](Tick) { wrote = true; });
    eq.run();
    ASSERT_TRUE(wrote);
    bool done2 = false;
    ctrl.readBlock(5, out.data(), [&](Tick) { done2 = true; });
    eq.run();
    ASSERT_TRUE(done2);
    EXPECT_EQ(out[0], 0x02); // cache hit sees the new data
    std::uint8_t media_now[blockBytes];
    device.media().read(5 * blockBytes, media_now, blockBytes);
    EXPECT_EQ(media_now[0], 0x02); // media too
}

TEST_F(StorageFixture, CacheEvictsLruWhenFull)
{
    std::vector<std::uint8_t> out(blockBytes);
    const std::uint64_t n = 1024 + 8; // cache_blocks default = 1024
    int done = 0;
    for (std::uint64_t lba = 0; lba < n; ++lba) {
        ctrl.readBlock(lba, out.data(), [&](Tick) { ++done; });
        eq.run();
    }
    EXPECT_EQ(done, static_cast<int>(n));
    // Block 0 was evicted: reading it again misses.
    const auto misses_before = ctrl.cacheMisses();
    ctrl.readBlock(0, out.data(), [](Tick) {});
    eq.run();
    EXPECT_EQ(ctrl.cacheMisses(), misses_before + 1);
}

TEST_F(StorageFixture, InStorageScanFindsRecords)
{
    // 64-byte records; key at offset 0; plant 3 matches.
    constexpr std::uint32_t rec = 64;
    const std::uint64_t blocks = 64; // 256 KiB
    std::vector<std::uint8_t> data(blocks * blockBytes, 0);
    const std::uint64_t records = data.size() / rec;
    for (std::uint64_t r = 0; r < records; ++r) {
        const std::uint64_t k = (r % 1000 == 7) ? 0xfeed : r;
        std::memcpy(&data[r * rec], &k, 8);
    }
    device.media().write(0, data.data(), data.size());

    ScanResult result;
    bool done = false;
    ctrl.scan(0, blocks, rec, 0, 0xfeed, 100,
              [&](Tick, ScanResult r) {
                  result = std::move(r);
                  done = true;
              });
    eq.run();
    ASSERT_TRUE(done);
    EXPECT_EQ(result.records_scanned, records);
    EXPECT_EQ(result.matches, (records + 999 - 7) / 1000);
    EXPECT_EQ(result.rows.size(), result.matches * rec);
    // The offload shipped a tiny fraction of the data.
    EXPECT_LT(result.bytes_to_host, data.size() / 100);
    std::uint64_t k = 0;
    std::memcpy(&k, result.rows.data(), 8);
    EXPECT_EQ(k, 0xfeedu);
}

TEST_F(StorageFixture, ScanBoundsResults)
{
    constexpr std::uint32_t rec = 64;
    std::vector<std::uint8_t> data(4 * blockBytes, 0);
    const std::uint64_t key = 0xaa;
    for (std::uint64_t r = 0; r < data.size() / rec; ++r)
        std::memcpy(&data[r * rec], &key, 8);
    device.media().write(0, data.data(), data.size());

    ScanResult result;
    bool done = false;
    ctrl.scan(0, 4, rec, 0, key, 10, [&](Tick, ScanResult r) {
        result = std::move(r);
        done = true;
    });
    eq.run();
    ASSERT_TRUE(done);
    EXPECT_EQ(result.matches, data.size() / rec);
    EXPECT_EQ(result.rows.size(), 10u * rec); // capped
}

} // namespace
} // namespace enzian::storage
