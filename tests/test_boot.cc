/**
 * @file
 * Tests for the boot sequencer: functional memory tests and the
 * Figure 12 scenario end-to-end.
 */

#include <gtest/gtest.h>

#include "platform/boot_sequencer.hh"
#include "platform/platform_factory.hh"

namespace enzian::platform {
namespace {

TEST(Memtests, AllPassOnHealthyMemory)
{
    mem::BackingStore store(64 << 20);
    EXPECT_TRUE(BootSequencer::dataBusTest(store, 0x1000));
    EXPECT_TRUE(BootSequencer::addressBusTest(store, 0, 16 << 20));
    EXPECT_TRUE(BootSequencer::marchingRowsTest(store, 0x2000,
                                                1 << 20));
    EXPECT_TRUE(
        BootSequencer::randomDataTest(store, 0x2000, 1 << 20, 99));
}

TEST(Memtests, RandomDataDetectsCorruption)
{
    // Write the pattern, corrupt one word, verify with a fresh pass:
    // the test re-generates and re-writes, so emulate a latent fault
    // by checking the verify path directly.
    mem::BackingStore store(1 << 20);
    Rng w(7);
    for (std::uint64_t i = 0; i < (1 << 20) / 8; ++i)
        store.store<std::uint64_t>(i * 8, w.next());
    store.store<std::uint64_t>(4096, 0xdead); // corrupt
    Rng r(7);
    bool ok = true;
    for (std::uint64_t i = 0; i < (1 << 20) / 8; ++i) {
        if (store.load<std::uint64_t>(i * 8) != r.next()) {
            ok = false;
            break;
        }
    }
    EXPECT_FALSE(ok);
}

class BootScenario : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        EnzianMachine::Config cfg = enzianDefaultConfig();
        cfg.cpu_dram_bytes = 2ull << 30;
        cfg.fpga_dram_bytes = 1ull << 30;
        machine = new EnzianMachine(cfg);
        seq = new BootSequencer(*machine);
        seq->runFullSequence();
    }

    static void
    TearDownTestSuite()
    {
        delete seq;
        delete machine;
        seq = nullptr;
        machine = nullptr;
    }

    static EnzianMachine *machine;
    static BootSequencer *seq;
};

EnzianMachine *BootScenario::machine = nullptr;
BootSequencer *BootScenario::seq = nullptr;

TEST_F(BootScenario, AllMemtestsPass)
{
    EXPECT_TRUE(seq->memtests().allPassed());
}

TEST_F(BootScenario, PhasesCoverTheTimeline)
{
    const auto &phases = seq->phases();
    ASSERT_GE(phases.size(), 10u);
    EXPECT_EQ(phases.front().name, "idle");
    // Phase names from Figure 12 all present.
    auto has = [&](const std::string &n) {
        for (const auto &p : phases)
            if (p.name == n)
                return true;
        return false;
    };
    EXPECT_TRUE(has("BDK DRAM check"));
    EXPECT_TRUE(has("Data bus test"));
    EXPECT_TRUE(has("Address bus test"));
    EXPECT_TRUE(has("memtest: marching rows"));
    EXPECT_TRUE(has("memtest: random data"));
    EXPECT_TRUE(has("FPGA power burn"));
}

TEST_F(BootScenario, TelemetryCoversTheRun)
{
    const auto &samples = machine->bmc().telemetry().samples();
    // 4 rails every 20 ms over ~255 s => ~51000 samples.
    EXPECT_GT(samples.size(), 40000u);
    EXPECT_LT(samples.size(), 60000u);
}

double
meanPowerIn(const std::vector<bmc::TelemetrySample> &samples,
            const std::string &rail, double t0, double t1)
{
    double sum = 0;
    int n = 0;
    for (const auto &s : samples) {
        const double t = units::toSeconds(s.when);
        if (s.rail == rail && t >= t0 && t < t1) {
            sum += s.watts;
            ++n;
        }
    }
    return n ? sum / n : 0.0;
}

TEST_F(BootScenario, CpuPowerFollowsThePhases)
{
    const auto &s = machine->bmc().telemetry().samples();
    // Before CPU on: zero. The VDD_CORE rail carries ~72% of package
    // power at 0.98 V.
    EXPECT_NEAR(meanPowerIn(s, "CPU", 10.0, 17.0), 0.0, 0.5);
    const double memtest = meanPowerIn(s, "CPU", 70.0, 100.0);
    const double idle = meanPowerIn(s, "CPU", 162.0, 169.0);
    EXPECT_GT(memtest, 60.0);
    EXPECT_LT(memtest, 110.0);
    EXPECT_LT(idle, memtest - 30.0); // cores idle
    // After power-down: zero again.
    EXPECT_NEAR(meanPowerIn(s, "CPU", 175.0, 177.0), 0.0, 0.5);
}

TEST_F(BootScenario, PowerOnSpikeVisible)
{
    const auto &s = machine->bmc().telemetry().samples();
    const double spike = meanPowerIn(s, "CPU", 18.3, 19.8);
    const double after = meanPowerIn(s, "CPU", 21.0, 23.0);
    EXPECT_GT(spike, after + 30.0);
}

TEST_F(BootScenario, FpgaBurnStaircaseRises)
{
    const auto &s = machine->bmc().telemetry().samples();
    const double idle = meanPowerIn(s, "FPGA", 15.0, 17.0);
    const double early = meanPowerIn(s, "FPGA", 180.0, 190.0);
    const double late = meanPowerIn(s, "FPGA", 230.0, 237.0);
    EXPECT_GT(early, idle);
    EXPECT_GT(late, early + 40.0);
    // Full burn lands near the paper's ~120 W on VCCINT (70% of
    // ~170 W total FPGA power).
    EXPECT_GT(late, 90.0);
    EXPECT_LT(late, 140.0);
    // And back to idle afterwards.
    const double cooled = meanPowerIn(s, "FPGA", 239.0, 245.0);
    EXPECT_LT(cooled, 25.0);
}

TEST_F(BootScenario, DramPowerTracksMemtestActivity)
{
    const auto &s = machine->bmc().telemetry().samples();
    const double before = meanPowerIn(s, "DRAM0", 10.0, 17.0);
    const double during = meanPowerIn(s, "DRAM0", 70.0, 100.0);
    const double after = meanPowerIn(s, "DRAM0", 175.0, 177.0);
    EXPECT_NEAR(before, 0.0, 0.5);
    EXPECT_GT(during, 10.0);
    EXPECT_NEAR(after, 0.0, 0.5);
    // Both groups behave alike.
    EXPECT_NEAR(meanPowerIn(s, "DRAM1", 70.0, 100.0), during, 3.0);
}

} // namespace
} // namespace enzian::platform
