/**
 * @file
 * Tests for the FPGA fabric, bitstream registry, and Coyote shell.
 */

#include <gtest/gtest.h>

#include "fpga/bitstream.hh"
#include "fpga/fabric.hh"
#include "fpga/shell.hh"

namespace enzian::fpga {
namespace {

TEST(Bitstream, RegistryContainsEvaluationImages)
{
    for (const char *name :
         {"eci-bench", "coyote-shell", "tcp-stack", "strom-rdma",
          "gbdt-1engine", "gbdt-2engine", "rgb2y-8bpp", "rgb2y-4bpp",
          "power-burn"}) {
        const Bitstream &b = findBitstream(name);
        EXPECT_EQ(b.name, name);
        EXPECT_GE(b.clock_hz, 200e6);
        EXPECT_LE(b.clock_hz, 300e6);
    }
}

TEST(BitstreamDeathTest, UnknownNameFatal)
{
    EXPECT_EXIT(findBitstream("nope"), ::testing::ExitedWithCode(1),
                "unknown bitstream");
}

TEST(Fabric, LoadSwitchesClock)
{
    EventQueue eq;
    Fabric f("fab", eq, Fabric::Config{});
    f.loadBitstream(findBitstream("eci-bench"));
    EXPECT_NEAR(f.clock().frequencyHz(), 300e6, 1.0);
    EXPECT_TRUE(f.eciReady());
    f.loadBitstream(findBitstream("power-burn"));
    EXPECT_NEAR(f.clock().frequencyHz(), 200e6, 1.0);
    EXPECT_FALSE(f.eciReady()); // burn image has no ECI layers
}

TEST(Fabric, ProgrammingTakesTime)
{
    EventQueue eq;
    Fabric f("fab", eq, Fabric::Config{});
    const Tick done = f.loadBitstream(findBitstream("coyote-shell"));
    EXPECT_NEAR(units::toSeconds(done), 8.0, 0.01);
}

TEST(Fabric, RegionActivityAveraging)
{
    EventQueue eq;
    Fabric f("fab", eq, Fabric::Config{});
    EXPECT_EQ(f.regionCount(), 24u);
    EXPECT_DOUBLE_EQ(f.meanActivity(), 0.0);
    for (std::uint32_t i = 0; i < 12; ++i)
        f.setRegionActivity(i, 1.0);
    EXPECT_NEAR(f.meanActivity(), 0.5, 1e-9);
    f.setAllActivity(0.25);
    EXPECT_NEAR(f.meanActivity(), 0.25, 1e-9);
}

TEST(FabricDeathTest, BadActivityFatal)
{
    EventQueue eq;
    Fabric f("fab", eq, Fabric::Config{});
    EXPECT_EXIT(f.setRegionActivity(0, 2.0),
                ::testing::ExitedWithCode(1), "activity");
}

class ShellTest : public ::testing::Test
{
  protected:
    ShellTest()
        : fabric("fab", eq, Fabric::Config{}),
          shell("shell", eq, fabric, Shell::Config{})
    {
        fabric.loadBitstream(findBitstream("coyote-shell"));
    }

    EventQueue eq;
    Fabric fabric;
    Shell shell;
};

TEST_F(ShellTest, LoadAppOccupiesSlot)
{
    EXPECT_FALSE(shell.occupied(0));
    shell.loadApp(0, "gbdt");
    EXPECT_TRUE(shell.occupied(0));
    EXPECT_EQ(shell.vfpga(0).appName(), "gbdt");
    EXPECT_EQ(shell.reconfigurations(), 1u);
}

TEST_F(ShellTest, PartialReconfigTakesTime)
{
    const Tick done = shell.loadApp(1, "strom");
    EXPECT_GT(done, 0u);
    EXPECT_LT(units::toSeconds(done), 1.0); // much less than full prog
}

TEST_F(ShellTest, VfpgaTranslationAndProtection)
{
    shell.loadApp(0, "app");
    Vfpga &v = shell.vfpga(0);
    v.map(0x1000, 0x40000, 0x2000, /*writable=*/true);
    v.map(0x8000, 0x90000, 0x1000, /*writable=*/false);

    EXPECT_EQ(v.translate(0x1000, false), 0x40000u);
    EXPECT_EQ(v.translate(0x1abc, true), 0x40abcu);
    EXPECT_EQ(v.translate(0x8010, false), 0x90010u);

    Addr p = 0;
    EXPECT_FALSE(v.translateOrFault(0x8010, true, p)); // read-only
    EXPECT_FALSE(v.translateOrFault(0x3000, false, p)); // unmapped
    EXPECT_FALSE(v.translateOrFault(0x8fff + 1, false, p)); // past end
}

TEST_F(ShellTest, MappingOverlapRejected)
{
    shell.loadApp(0, "app");
    Vfpga &v = shell.vfpga(0);
    v.map(0x1000, 0x40000, 0x2000, true);
    EXPECT_EXIT(v.map(0x1800, 0x50000, 0x100, true),
                ::testing::ExitedWithCode(1), "overlaps");
}

TEST_F(ShellTest, UnmapRemovesTranslation)
{
    shell.loadApp(0, "app");
    Vfpga &v = shell.vfpga(0);
    v.map(0x1000, 0x40000, 0x1000, true);
    v.unmap(0x1000);
    Addr p = 0;
    EXPECT_FALSE(v.translateOrFault(0x1000, false, p));
}

TEST_F(ShellTest, IsolationBetweenVfpgas)
{
    shell.loadApp(0, "a");
    shell.loadApp(1, "b");
    shell.vfpga(0).map(0x1000, 0x40000, 0x1000, true);
    Addr p = 0;
    EXPECT_FALSE(shell.vfpga(1).translateOrFault(0x1000, false, p));
}

TEST_F(ShellTest, ServicesRegistry)
{
    int service = 42;
    shell.registerService("tcp", &service);
    EXPECT_EQ(shell.findService("tcp"), &service);
    EXPECT_EQ(shell.findService("rdma"), nullptr);
}

TEST_F(ShellTest, LoadWithoutShellBitstreamFatal)
{
    fabric.loadBitstream(findBitstream("eci-bench")); // not a shell
    EXPECT_EXIT(shell.loadApp(0, "app"), ::testing::ExitedWithCode(1),
                "shell bitstream");
}

} // namespace
} // namespace enzian::fpga

#include "fpga/scheduler.hh"

namespace enzian::fpga {
namespace {

class SchedulerTest : public ::testing::Test
{
  protected:
    SchedulerTest()
        : fabric("fab", eq, Fabric::Config{}),
          shell("shell", eq, fabric, Shell::Config{})
    {
        fabric.loadBitstream(findBitstream("coyote-shell"));
    }

    VfpgaScheduler
    makeSched(SchedPolicy policy, Tick quantum = units::ms(10.0))
    {
        VfpgaScheduler::Config cfg;
        cfg.policy = policy;
        cfg.quantum = quantum;
        return VfpgaScheduler("sched", eq, shell, cfg);
    }

    EventQueue eq;
    Fabric fabric;
    Shell shell;
};

TEST_F(SchedulerTest, SpatialMultiplexingRunsJobsConcurrently)
{
    auto sched = makeSched(SchedPolicy::Fifo);
    Tick t1 = 0, t2 = 0;
    sched.submit("a", units::sec(1.0), [&](Tick t) { t1 = t; });
    sched.submit("b", units::sec(1.0), [&](Tick t) { t2 = t; });
    EXPECT_EQ(sched.running(), 2u); // 4 slots, both placed at once
    eq.run();
    // Concurrent: both finish around 1 s + 0.35 s reconfiguration,
    // not 2.7 s serialized.
    EXPECT_LT(units::toSeconds(t1), 1.5);
    EXPECT_LT(units::toSeconds(t2), 1.5);
    EXPECT_EQ(sched.jobsCompleted(), 2u);
}

TEST_F(SchedulerTest, QueuesBeyondSlotCount)
{
    auto sched = makeSched(SchedPolicy::Fifo);
    int done = 0;
    for (int i = 0; i < 6; ++i) // 4 slots
        sched.submit("app" + std::to_string(i), units::ms(10),
                     [&](Tick) { ++done; });
    EXPECT_EQ(sched.running(), 4u);
    EXPECT_EQ(sched.queued(), 2u);
    eq.run();
    EXPECT_EQ(done, 6);
    EXPECT_EQ(sched.preemptions(), 0u); // FIFO runs to completion
}

TEST_F(SchedulerTest, RoundRobinPreemptsLongJobs)
{
    auto sched = makeSched(SchedPolicy::RoundRobin, units::sec(0.5));
    Tick long_done = 0, short_done = 0;
    // Fill all four slots with long jobs, then submit a short one.
    for (int i = 0; i < 4; ++i)
        sched.submit("long" + std::to_string(i), units::sec(5.0),
                     [&](Tick t) { long_done = std::max(long_done, t); });
    sched.submit("short", units::sec(0.4), [&](Tick t) {
        short_done = t;
    });
    eq.run();
    EXPECT_GT(sched.preemptions(), 0u);
    // The short job did not wait for a 5 s job to finish.
    EXPECT_LT(short_done, long_done);
    EXPECT_LT(units::toSeconds(short_done), 2.5);
    EXPECT_EQ(sched.jobsCompleted(), 5u);
}

TEST_F(SchedulerTest, NoPointlessPreemptionWhenQueueEmpty)
{
    auto sched = makeSched(SchedPolicy::RoundRobin, units::ms(1));
    bool done = false;
    sched.submit("only", units::ms(50), [&](Tick) { done = true; });
    eq.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(sched.preemptions(), 0u);
    // Only the initial placement paid reconfiguration.
    EXPECT_NEAR(units::toSeconds(sched.reconfigTime()), 0.35, 0.01);
}

TEST_F(SchedulerTest, ReconfigurationTaxAccumulates)
{
    auto sched = makeSched(SchedPolicy::RoundRobin, units::sec(0.2));
    int done = 0;
    for (int i = 0; i < 8; ++i)
        sched.submit("j" + std::to_string(i), units::sec(0.5),
                     [&](Tick) { ++done; });
    eq.run();
    EXPECT_EQ(done, 8);
    // Every placement (initial + after preemption) pays 0.35 s.
    const double expected_min =
        0.35 * (8 + sched.preemptions());
    EXPECT_NEAR(units::toSeconds(sched.reconfigTime()), expected_min,
                0.35);
}

} // namespace
} // namespace enzian::fpga
