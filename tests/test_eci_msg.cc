/**
 * @file
 * Unit and property tests for ECI messages and the serialization
 * format.
 */

#include <gtest/gtest.h>

#include "base/rng.hh"
#include "eci/eci_msg.hh"
#include "eci/eci_serialize.hh"

namespace enzian::eci {
namespace {

const Opcode allOpcodes[] = {
    Opcode::RLDD, Opcode::RLDX,  Opcode::RLDI,  Opcode::RSTT,
    Opcode::RUPG, Opcode::RWBD,  Opcode::REVC,  Opcode::PEMD,
    Opcode::PACK, Opcode::PNAK,  Opcode::SINV,  Opcode::SFWD,
    Opcode::SACKI, Opcode::SACKS, Opcode::IOBLD, Opcode::IOBST,
    Opcode::IOBACK, Opcode::IPI,
};

EciMsg
sampleMsg(Opcode op)
{
    EciMsg m;
    m.op = op;
    m.src = mem::NodeId::Fpga;
    m.dst = mem::NodeId::Cpu;
    m.tid = 0xbeef;
    m.addr = 0x123456780;
    m.grant = Grant::Exclusive;
    m.ioLen = 4;
    m.ioData = 0x1122334455667788ull;
    for (std::size_t i = 0; i < m.line.size(); ++i)
        m.line[i] = static_cast<std::uint8_t>(i * 3);
    return m;
}

/** Round-trip every opcode through the wire format. */
class SerializeRoundTrip : public ::testing::TestWithParam<Opcode>
{
};

TEST_P(SerializeRoundTrip, PreservesFields)
{
    const EciMsg m = sampleMsg(GetParam());
    const auto bytes = serialize(m);
    EXPECT_EQ(bytes.size(), m.wireBytes());
    std::size_t consumed = 0;
    auto back = deserialize(bytes.data(), bytes.size(), consumed);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(consumed, bytes.size());
    EXPECT_EQ(back->op, m.op);
    EXPECT_EQ(back->src, m.src);
    EXPECT_EQ(back->dst, m.dst);
    EXPECT_EQ(back->tid, m.tid);
    EXPECT_EQ(back->addr, m.addr);
    if (m.op == Opcode::PEMD) {
        EXPECT_EQ(back->grant, m.grant);
    }
    if (carriesLine(m.op)) {
        EXPECT_EQ(back->line, m.line);
    }
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, SerializeRoundTrip,
                         ::testing::ValuesIn(allOpcodes));

TEST(EciMsg, VcAssignmentsMatchSpec)
{
    EXPECT_EQ(vcOf(Opcode::RLDD), Vc::Request);
    EXPECT_EQ(vcOf(Opcode::RLDX), Vc::Request);
    EXPECT_EQ(vcOf(Opcode::PEMD), Vc::Data);
    EXPECT_EQ(vcOf(Opcode::RWBD), Vc::Data);
    EXPECT_EQ(vcOf(Opcode::RSTT), Vc::Data);
    EXPECT_EQ(vcOf(Opcode::PACK), Vc::Response);
    EXPECT_EQ(vcOf(Opcode::SINV), Vc::Snoop);
    EXPECT_EQ(vcOf(Opcode::SACKI), Vc::SnoopResp);
    EXPECT_EQ(vcOf(Opcode::IOBLD), Vc::Io);
    EXPECT_EQ(vcOf(Opcode::IPI), Vc::Ipi);
}

TEST(EciMsg, WireSizes)
{
    EciMsg req = sampleMsg(Opcode::RLDD);
    EXPECT_EQ(req.wireBytes(), headerBytes);
    EciMsg data = sampleMsg(Opcode::PEMD);
    EXPECT_EQ(data.wireBytes(), headerBytes + cache::lineSize);
}

TEST(EciMsg, ToStringMentionsOpcodeAndNodes)
{
    const std::string s = sampleMsg(Opcode::RLDX).toString();
    EXPECT_NE(s.find("RLDX"), std::string::npos);
    EXPECT_NE(s.find("fpga->cpu"), std::string::npos);
}

TEST(Serialize, RejectsBadMagic)
{
    auto bytes = serialize(sampleMsg(Opcode::RLDD));
    bytes[0] ^= 0xff;
    std::size_t consumed = 0;
    EXPECT_FALSE(
        deserialize(bytes.data(), bytes.size(), consumed).has_value());
}

TEST(Serialize, RejectsTruncatedHeader)
{
    auto bytes = serialize(sampleMsg(Opcode::RLDD));
    std::size_t consumed = 0;
    EXPECT_FALSE(deserialize(bytes.data(), headerBytes - 1, consumed)
                     .has_value());
}

TEST(Serialize, RejectsTruncatedPayload)
{
    auto bytes = serialize(sampleMsg(Opcode::PEMD));
    std::size_t consumed = 0;
    EXPECT_FALSE(deserialize(bytes.data(), bytes.size() - 1, consumed)
                     .has_value());
}

TEST(Serialize, RejectsVcMismatch)
{
    auto bytes = serialize(sampleMsg(Opcode::RLDD));
    bytes[7] = static_cast<std::uint8_t>(Vc::Data); // wrong circuit
    std::size_t consumed = 0;
    EXPECT_FALSE(
        deserialize(bytes.data(), bytes.size(), consumed).has_value());
}

TEST(Serialize, RejectsBadOpcode)
{
    auto bytes = serialize(sampleMsg(Opcode::RLDD));
    bytes[4] = 0xee;
    std::size_t consumed = 0;
    EXPECT_FALSE(
        deserialize(bytes.data(), bytes.size(), consumed).has_value());
}

TEST(Serialize, SnoopResponseDataFlag)
{
    EciMsg m = sampleMsg(Opcode::SACKI);
    m.hasData = false;
    auto bytes = serialize(m);
    std::size_t consumed = 0;
    auto back = deserialize(bytes.data(), bytes.size(), consumed);
    ASSERT_TRUE(back.has_value());
    EXPECT_FALSE(back->hasData);
}

TEST(Serialize, StreamOfMessagesParsesSequentially)
{
    std::vector<std::uint8_t> stream;
    for (Opcode op : {Opcode::RLDD, Opcode::PEMD, Opcode::PACK})
        serializeTo(sampleMsg(op), stream);
    std::size_t off = 0;
    std::vector<Opcode> seen;
    while (off < stream.size()) {
        std::size_t consumed = 0;
        auto m = deserialize(stream.data() + off, stream.size() - off,
                             consumed);
        ASSERT_TRUE(m.has_value());
        seen.push_back(m->op);
        off += consumed;
    }
    EXPECT_EQ(seen, (std::vector<Opcode>{Opcode::RLDD, Opcode::PEMD,
                                         Opcode::PACK}));
}

} // namespace
} // namespace enzian::eci

namespace enzian::eci {
namespace {

/** Property: deserialize never crashes or over-reads on fuzz input. */
TEST(SerializeFuzz, RandomBuffersAreRejectedSafely)
{
    Rng rng(0xf022);
    for (int trial = 0; trial < 2000; ++trial) {
        std::vector<std::uint8_t> buf(rng.below(200) + 1);
        for (auto &b : buf)
            b = static_cast<std::uint8_t>(rng.next());
        std::size_t consumed = 0;
        auto msg = deserialize(buf.data(), buf.size(), consumed);
        if (msg) {
            // Anything accepted must be internally consistent.
            EXPECT_LE(consumed, buf.size());
            EXPECT_EQ(msg->vc(), vcOf(msg->op));
        }
    }
}

/** Property: bit-flipping a valid message never breaks the parser. */
TEST(SerializeFuzz, BitFlippedMessagesParseOrRejectCleanly)
{
    Rng rng(99);
    EciMsg m;
    m.op = Opcode::PEMD;
    m.src = mem::NodeId::Fpga;
    m.dst = mem::NodeId::Cpu;
    m.tid = 5;
    m.addr = 0x1000;
    auto bytes = serialize(m);
    for (int trial = 0; trial < 2000; ++trial) {
        auto mut = bytes;
        mut[rng.below(mut.size())] ^=
            static_cast<std::uint8_t>(1u << rng.below(8));
        std::size_t consumed = 0;
        auto parsed = deserialize(mut.data(), mut.size(), consumed);
        if (parsed) {
            EXPECT_LE(consumed, mut.size());
        }
    }
}

} // namespace
} // namespace enzian::eci
