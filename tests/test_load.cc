/**
 * @file
 * Load-harness tests: arrival process statistics and determinism, the
 * open-loop generator against every service testbed, saturation-sweep
 * knee detection, parallel-machine reproducibility of the SLO series,
 * per-request flow tracing parsed back from Chrome JSON, and SLO
 * degradation under an injected fault plan.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "fault/fault_plan.hh"
#include "load/arrival.hh"
#include "load/load_gen.hh"
#include "load/testbed.hh"
#include "obs/json.hh"
#include "obs/slo.hh"
#include "obs/span_tracer.hh"

namespace enzian::load {
namespace {

// --------------------------------------------------- arrival processes

double
measuredRate(const ArrivalConfig &cfg, double horizon_sec)
{
    auto proc = ArrivalProcess::make(cfg);
    const Tick horizon = units::sec(horizon_sec);
    Tick t = 0;
    std::uint64_t n = 0;
    while (true) {
        t += proc->nextGap();
        if (t > horizon)
            break;
        ++n;
    }
    return static_cast<double>(n) / horizon_sec;
}

TEST(Arrival, PoissonHitsTheConfiguredRate)
{
    ArrivalConfig cfg;
    cfg.rate_rps = 50000.0;
    cfg.seed = 42;
    // 0.2 s => ~10k arrivals; sigma ~1%, so 5% is comfortable.
    EXPECT_NEAR(measuredRate(cfg, 0.2), cfg.rate_rps,
                0.05 * cfg.rate_rps);
}

TEST(Arrival, MmppMeansTheConfiguredRateDespiteBursts)
{
    ArrivalConfig cfg;
    cfg.kind = ArrivalKind::Mmpp;
    cfg.rate_rps = 50000.0;
    cfg.seed = 7;
    cfg.mmpp_burst_ratio = 9.0;
    cfg.mmpp_dwell = units::us(500.0);
    // Many dwell alternations average the two phases out.
    EXPECT_NEAR(measuredRate(cfg, 0.5), cfg.rate_rps,
                0.08 * cfg.rate_rps);
}

TEST(Arrival, DiurnalAveragesOutOverWholePeriods)
{
    ArrivalConfig cfg;
    cfg.kind = ArrivalKind::Diurnal;
    cfg.rate_rps = 50000.0;
    cfg.seed = 3;
    cfg.diurnal_amplitude = 0.8;
    cfg.diurnal_period = units::ms(50.0);
    // 10 whole periods: the sinusoid integrates to zero.
    EXPECT_NEAR(measuredRate(cfg, 0.5), cfg.rate_rps,
                0.05 * cfg.rate_rps);
}

TEST(Arrival, SameSeedSameGapsDifferentSeedDifferent)
{
    for (ArrivalKind kind : {ArrivalKind::Poisson, ArrivalKind::Mmpp,
                             ArrivalKind::Diurnal}) {
        ArrivalConfig cfg;
        cfg.kind = kind;
        cfg.rate_rps = 10000.0;
        cfg.seed = 11;
        auto a = ArrivalProcess::make(cfg);
        auto b = ArrivalProcess::make(cfg);
        cfg.seed = 12;
        auto c = ArrivalProcess::make(cfg);
        bool any_diff = false;
        for (int i = 0; i < 200; ++i) {
            const Tick ga = a->nextGap();
            EXPECT_EQ(ga, b->nextGap()) << toString(kind);
            any_diff |= ga != c->nextGap();
        }
        EXPECT_TRUE(any_diff) << toString(kind);
    }
}

TEST(Arrival, NamesRoundTrip)
{
    for (ArrivalKind kind : {ArrivalKind::Poisson, ArrivalKind::Mmpp,
                             ArrivalKind::Diurnal})
        EXPECT_EQ(arrivalKindFromString(toString(kind)), kind);
}

// --------------------------------------------------- service testbeds

struct RunOutcome
{
    std::uint64_t offered = 0;
    std::uint64_t completed = 0;
    double p99_us = 0.0;
    std::string csv;
};

RunOutcome
runService(TestbedConfig tbc, double rate_rps, double duration_ms,
           const fault::FaultPlan *plan = nullptr,
           std::uint64_t trace_requests = 0)
{
    tbc.plan = plan;
    ServingTestbed bed(tbc);
    obs::SloRecorder::Config sc;
    sc.name = "test";
    sc.window = units::ms(1.0);
    obs::SloRecorder slo(sc);
    LoadGen::Config lc;
    lc.arrival.rate_rps = rate_rps;
    lc.duration = units::ms(duration_ms);
    lc.trace_requests = trace_requests;
    LoadGen gen("test.loadgen", bed.eventq(), bed.driver(), slo, lc);
    gen.start();
    bed.run();
    slo.rollTo(bed.machine().now());

    RunOutcome out;
    out.offered = gen.offeredCount();
    out.completed = gen.completedCount();
    out.p99_us = slo.p99Us();
    std::ostringstream os;
    slo.writeCsv(os);
    out.csv = os.str();
    return out;
}

TEST(ServingTestbed, EveryServiceCompletesAllOfferedRequests)
{
    for (ServiceKind svc : {ServiceKind::Gbdt, ServiceKind::Rdma,
                            ServiceKind::Tcp}) {
        TestbedConfig tbc;
        tbc.service = svc;
        const RunOutcome out = runService(tbc, 20000.0, 5.0);
        EXPECT_GT(out.offered, 50u) << toString(svc);
        EXPECT_EQ(out.completed, out.offered) << toString(svc);
        EXPECT_GT(out.p99_us, 0.0) << toString(svc);
    }
}

TEST(ServingTestbed, EciHostRdmaPathServes)
{
    TestbedConfig tbc;
    tbc.service = ServiceKind::Rdma;
    tbc.rdma_path = "eci-host";
    tbc.rdma_bytes = 4096;
    const RunOutcome out = runService(tbc, 10000.0, 2.0);
    EXPECT_EQ(out.completed, out.offered);
    EXPECT_GT(out.offered, 10u);
}

TEST(ServingTestbed, SloSeriesIsByteIdenticalAcrossThreadCounts)
{
    TestbedConfig tbc;
    tbc.service = ServiceKind::Gbdt;
    const RunOutcome t1 = runService(tbc, 30000.0, 10.0);
    tbc.threads = 4;
    const RunOutcome t4 = runService(tbc, 30000.0, 10.0);
    EXPECT_GT(t1.offered, 100u);
    EXPECT_EQ(t1.offered, t4.offered);
    EXPECT_EQ(t1.completed, t4.completed);
    EXPECT_EQ(t1.csv, t4.csv);
}

// ------------------------------------------------------------- sweeps

TEST(Sweep, GbdtLatencyRisesWithLoadAndKneeIsFound)
{
    SweepConfig cfg;
    cfg.testbed.service = ServiceKind::Gbdt;
    cfg.duration = units::ms(10.0);
    cfg.auto_points = 5;
    const SweepResult r = runSweep(cfg);
    ASSERT_EQ(r.points.size(), 5u);

    // The auto ladder tops out at 150% of capacity, so the last point
    // must overload; the first (10%) must be comfortable.
    EXPECT_TRUE(r.points.front().slo_ok);
    EXPECT_FALSE(r.points.back().slo_ok);
    ASSERT_GE(r.knee, 0);
    EXPECT_LT(r.knee, 4);
    EXPECT_EQ(r.knee_rps, r.points[r.knee].offered_rps);

    // Monotone offered load, and latency that never collapses as the
    // load rises (allowing bucket-resolution jitter).
    for (std::size_t i = 1; i < r.points.size(); ++i) {
        EXPECT_GT(r.points[i].offered_rps,
                  r.points[i - 1].offered_rps);
        EXPECT_GE(r.points[i].p99_us, r.points[i - 1].p99_us * 0.95);
    }
    // Overload shows up as queueing: the top point is far slower.
    EXPECT_GT(r.points.back().p99_us, 5.0 * r.points.front().p99_us);
}

TEST(Sweep, GeometricRatesSpanTheRangeExactly)
{
    const auto rates = geometricRates(10.0, 1000.0, 4);
    ASSERT_EQ(rates.size(), 4u);
    EXPECT_DOUBLE_EQ(rates.front(), 10.0);
    EXPECT_DOUBLE_EQ(rates.back(), 1000.0);
    for (std::size_t i = 1; i < rates.size(); ++i)
        EXPECT_GT(rates[i], rates[i - 1]);
    EXPECT_EQ(geometricRates(5.0, 5.0, 1).size(), 1u);
}

// ------------------------------------------------------ fault overlay

TEST(Sweep, RdmaDropPlanDegradesTailLatencyButNotCompletion)
{
    std::istringstream spec(
        "seed 9\n"
        "fault kind=rdma-drop prob=0.05 at_us=0\n");
    std::string err;
    auto plan = fault::FaultPlan::parse(spec, err);
    ASSERT_TRUE(plan) << err;

    TestbedConfig tbc;
    tbc.service = ServiceKind::Rdma;
    const RunOutcome clean = runService(tbc, 50000.0, 2.0);
    const RunOutcome faulted =
        runService(tbc, 50000.0, 2.0, &*plan);

    EXPECT_EQ(clean.completed, clean.offered);
    EXPECT_EQ(faulted.completed, faulted.offered);
    // A dropped request recovers via the 50 us retry timeout, so the
    // faulted tail sits well above the clean ~5 us read latency.
    EXPECT_GT(faulted.p99_us, 2.0 * clean.p99_us);
}

// ------------------------------------------------- per-request tracing

TEST(Tracing, TracedRequestsEmitFlowChainsOnTheirOwnTrack)
{
    obs::SpanTracer &tracer = obs::SpanTracer::global();
    tracer.clear();
    tracer.setEnabled(true);
    TestbedConfig tbc;
    tbc.service = ServiceKind::Gbdt;
    const RunOutcome out =
        runService(tbc, 20000.0, 2.0, nullptr, /*trace_requests=*/4);
    tracer.setEnabled(false);
    ASSERT_GT(out.offered, 4u);

    std::ostringstream os;
    tracer.writeChromeJson(os);
    tracer.clear();
    obs::json::Value doc;
    std::string err;
    ASSERT_TRUE(obs::json::parse(os.str(), doc, &err)) << err;

    // Track names live in thread metadata events; request tracks are
    // one per traced request.
    const obs::json::Value *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    bool saw_req1_track = false;
    bool saw_begin = false, saw_step = false, saw_end = false;
    bool saw_queue = false, saw_service = false, saw_request = false;
    for (const obs::json::Value &e : events->arr) {
        const obs::json::Value *ph = e.find("ph");
        if (!ph)
            continue;
        if (ph->str == "M") {
            const obs::json::Value *args = e.find("args");
            if (args && args->find("name") &&
                args->find("name")->str == requestTrack(1))
                saw_req1_track = true;
            continue;
        }
        const obs::json::Value *id = e.find("id");
        if (id && id->str == "0x1") {
            saw_begin |= ph->str == "s";
            saw_step |= ph->str == "t";
            saw_end |= ph->str == "f";
        }
        if (ph->str == "X") {
            const std::string &n = e.find("name")->str;
            saw_queue |= n == "queue";
            saw_service |= n == "service";
            saw_request |= n == "request";
        }
    }
    EXPECT_TRUE(saw_req1_track);
    EXPECT_TRUE(saw_begin);
    EXPECT_TRUE(saw_step);
    EXPECT_TRUE(saw_end);
    EXPECT_TRUE(saw_queue);
    EXPECT_TRUE(saw_service);
    EXPECT_TRUE(saw_request);
}

} // namespace
} // namespace enzian::load
