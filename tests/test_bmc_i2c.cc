/**
 * @file
 * Tests for the I2C bus, PMBus encodings, and the regulator model.
 */

#include <gtest/gtest.h>

#include "bmc/i2c_bus.hh"
#include "bmc/pmbus.hh"
#include "bmc/regulator.hh"

namespace enzian::bmc {
namespace {

/** Trivial device: one register file byte-addressed by command. */
class ToyDevice : public I2cDevice
{
  public:
    const std::string &deviceName() const override { return name_; }

    bool
    i2cWrite(const std::vector<std::uint8_t> &data) override
    {
        if (data.empty())
            return false;
        lastCmd_ = data[0];
        if (data.size() > 1)
            regs_[data[0]] = data[1];
        return true;
    }

    std::vector<std::uint8_t>
    i2cRead(std::size_t len) override
    {
        std::vector<std::uint8_t> out;
        for (std::size_t i = 0; i < len; ++i)
            out.push_back(regs_[lastCmd_] + static_cast<std::uint8_t>(i));
        return out;
    }

  private:
    std::string name_ = "toy";
    std::uint8_t lastCmd_ = 0;
    std::map<std::uint8_t, std::uint8_t> regs_;
};

TEST(I2cBus, WriteReadRoundTrip)
{
    EventQueue eq;
    I2cBus bus("i2c", eq, I2cBus::Config{});
    ToyDevice dev;
    bus.attach(0x50, &dev);
    EXPECT_TRUE(bus.transfer(0x50, {0x10, 0x42}, 0).acked);
    auto r = bus.transfer(0x50, {0x10}, 1);
    ASSERT_TRUE(r.acked);
    EXPECT_EQ(r.data[0], 0x42);
}

TEST(I2cBus, MissingDeviceNaks)
{
    EventQueue eq;
    I2cBus bus("i2c", eq, I2cBus::Config{});
    EXPECT_FALSE(bus.transfer(0x33, {0x00}, 1).acked);
    EXPECT_EQ(bus.naks(), 1u);
}

TEST(I2cBus, TransactionTimingMatchesClockAndOverhead)
{
    EventQueue eq;
    I2cBus::Config cfg;
    cfg.clock_hz = 400e3;
    cfg.driver_overhead_us = 100.0;
    I2cBus bus("i2c", eq, cfg);
    // write 3 bytes + read 2: bits = 1+9 + 27 + 1+9+18 + 1 = 66
    const Tick t = bus.transactionTime(3, 2);
    EXPECT_NEAR(units::toMicros(t), 66.0 / 0.4 + 100.0, 1.0);
}

TEST(I2cBus, BackToBackTransactionsSerialize)
{
    EventQueue eq;
    I2cBus bus("i2c", eq, I2cBus::Config{});
    ToyDevice dev;
    bus.attach(0x20, &dev);
    const Tick t1 = bus.transfer(0x20, {0x01}, 1).done;
    const Tick t2 = bus.transfer(0x20, {0x01}, 1).done;
    EXPECT_NEAR(static_cast<double>(t2), 2.0 * static_cast<double>(t1),
                static_cast<double>(t1) * 0.01);
}

TEST(I2cBusDeathTest, DuplicateAddressFatal)
{
    EventQueue eq;
    I2cBus bus("i2c", eq, I2cBus::Config{});
    ToyDevice a, b;
    bus.attach(0x20, &a);
    EXPECT_EXIT(bus.attach(0x20, &b), ::testing::ExitedWithCode(1),
                "already occupied");
}

/** LINEAR11 round-trips across magnitudes. */
class Linear11Test : public ::testing::TestWithParam<double>
{
};

TEST_P(Linear11Test, RoundTripWithinPrecision)
{
    const double v = GetParam();
    const double back = linear11Decode(linear11Encode(v));
    const double tol = std::max(std::abs(v) * 0.002, 1e-4);
    EXPECT_NEAR(back, v, tol);
}

INSTANTIATE_TEST_SUITE_P(Magnitudes, Linear11Test,
                         ::testing::Values(0.0, 0.001, 0.6, 0.98, 1.2,
                                           3.3, 12.0, 55.5, 160.0,
                                           -5.25, 1000.0));

TEST(Linear16, RoundTrip)
{
    for (double v : {0.0, 0.6, 0.85, 0.98, 1.2, 2.5, 3.3, 12.0}) {
        const double back = linear16Decode(
            linear16Encode(v, voutModeExponent), voutModeExponent);
        EXPECT_NEAR(back, v, 0.001);
    }
}

class RegulatorTest : public ::testing::Test
{
  protected:
    RegulatorTest()
        : bus("i2c", eq, I2cBus::Config{}), master(bus),
          reg("vdd", eq, makeConfig())
    {
        bus.attach(0x20, &reg);
        reg.setLoad([this]() { return load; });
    }

    static Regulator::Config
    makeConfig()
    {
        Regulator::Config cfg;
        cfg.address = 0x20;
        cfg.vout_nominal = 0.98;
        cfg.iout_max = 160.0;
        cfg.ramp_ms = 4.0;
        return cfg;
    }

    EventQueue eq;
    I2cBus bus;
    PmbusMaster master;
    Regulator reg;
    double load = 0.0;
};

TEST_F(RegulatorTest, OffByDefault)
{
    EXPECT_FALSE(reg.powerGood());
    EXPECT_DOUBLE_EQ(reg.vout(), 0.0);
    EXPECT_TRUE(reg.faults() & statusOff);
}

TEST_F(RegulatorTest, EnableRampsToNominal)
{
    ASSERT_TRUE(master.writeByte(0x20, PmbusCmd::Operation,
                                 operationOn));
    EXPECT_FALSE(reg.powerGood()); // still ramping
    eq.runUntil(units::ms(2));
    EXPECT_GT(reg.vout(), 0.1);
    EXPECT_LT(reg.vout(), 0.98);
    eq.runUntil(units::ms(5));
    EXPECT_TRUE(reg.powerGood());
    EXPECT_DOUBLE_EQ(reg.vout(), 0.98);
}

TEST_F(RegulatorTest, ReadbackThroughPmbus)
{
    master.writeByte(0x20, PmbusCmd::Operation, operationOn);
    eq.runUntil(units::ms(10));
    load = 100.0;
    auto v = master.readWord(0x20, PmbusCmd::ReadVout);
    auto i = master.readWord(0x20, PmbusCmd::ReadIout);
    auto t = master.readWord(0x20, PmbusCmd::ReadTemperature1);
    ASSERT_TRUE(v && i && t);
    EXPECT_NEAR(linear16Decode(*v, voutModeExponent), 0.98, 0.001);
    EXPECT_NEAR(linear11Decode(*i), 100.0, 0.5);
    EXPECT_GT(linear11Decode(*t), 35.0); // above ambient under load
}

TEST_F(RegulatorTest, OverCurrentFaultsAndLatches)
{
    master.writeByte(0x20, PmbusCmd::Operation, operationOn);
    eq.runUntil(units::ms(10));
    load = 200.0; // above the 160 A limit
    auto i = master.readWord(0x20, PmbusCmd::ReadIout);
    ASSERT_TRUE(i.has_value());
    EXPECT_TRUE(reg.faults() & statusIoutOc);
    EXPECT_FALSE(reg.powerGood());
    EXPECT_DOUBLE_EQ(reg.vout(), 0.0);
    // CLEAR_FAULTS recovers the latch.
    load = 10.0;
    master.sendCommand(0x20, PmbusCmd::ClearFaults);
    master.writeByte(0x20, PmbusCmd::Operation, operationOn);
    eq.runUntil(units::ms(20));
    EXPECT_TRUE(reg.powerGood());
}

TEST_F(RegulatorTest, OverVoltageCommandFaults)
{
    master.writeByte(0x20, PmbusCmd::Operation, operationOn);
    eq.runUntil(units::ms(10));
    // Command 1.5 V on a 0.98 V rail: OVP (limit 1.15x nominal).
    master.writeWord(0x20, PmbusCmd::VoutCommand,
                     linear16Encode(1.5, voutModeExponent));
    EXPECT_TRUE(reg.faults() & statusVoutOv);
    EXPECT_DOUBLE_EQ(reg.vout(), 0.0);
}

TEST_F(RegulatorTest, MarginAdjustWithinLimits)
{
    master.writeByte(0x20, PmbusCmd::Operation, operationOn);
    eq.runUntil(units::ms(10));
    // Undervolting experiments (paper section 4.3): small margins OK.
    master.writeWord(0x20, PmbusCmd::VoutCommand,
                     linear16Encode(0.92, voutModeExponent));
    EXPECT_EQ(reg.faults(), 0u);
    EXPECT_NEAR(reg.vout(), 0.92, 0.001);
}

TEST_F(RegulatorTest, StatusWordReadable)
{
    auto s = master.readWord(0x20, PmbusCmd::StatusWord);
    ASSERT_TRUE(s.has_value());
    EXPECT_TRUE(*s & statusOff);
}

TEST_F(RegulatorTest, InjectedFaultVisible)
{
    master.writeByte(0x20, PmbusCmd::Operation, operationOn);
    eq.runUntil(units::ms(10));
    reg.injectFault(statusTemp);
    EXPECT_FALSE(reg.powerGood());
    auto s = master.readWord(0x20, PmbusCmd::StatusWord);
    ASSERT_TRUE(s.has_value());
    EXPECT_TRUE(*s & statusTemp);
}

} // namespace
} // namespace enzian::bmc
