/**
 * @file
 * Property-based protocol fuzzing.
 *
 * For a sweep of machine configurations (balancing policy x lane
 * count x MSHR depth), drive a randomized mix of cached/uncached
 * reads and writes from both nodes against overlapping lines, then
 * check three properties:
 *
 *  1. liveness: every operation completes;
 *  2. protocol soundness: the full ECI trace replays cleanly through
 *     the assertion checker (no tid reuse, compatible MOESI states,
 *     every request answered);
 *  3. functional correctness: after flushing the caches, memory
 *     matches a sequential reference model that applies the same
 *     writes in completion order.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "platform/enzian_machine.hh"
#include "platform/platform_factory.hh"
#include "trace/checker.hh"

namespace enzian {
namespace {

struct FuzzConfig
{
    eci::BalancePolicy policy;
    std::uint32_t lanes;
    std::uint32_t mshrs;
    std::uint64_t seed;
};

class ProtocolFuzz : public ::testing::TestWithParam<FuzzConfig>
{
};

TEST_P(ProtocolFuzz, RandomWorkloadStaysSoundAndCorrect)
{
    const FuzzConfig fc = GetParam();
    auto cfg = platform::enzianDefaultConfig();
    cfg.cpu_dram_bytes = 32ull << 20;
    cfg.fpga_dram_bytes = 32ull << 20;
    cfg.policy = fc.policy;
    cfg.link.lanes = fc.lanes;
    cfg.remote_agent.max_outstanding = fc.mshrs;
    platform::EnzianMachine m(cfg);

    trace::EciTrace tr;
    tr.attach(m.fabric());

    // Work over a small set of lines so operations genuinely collide.
    constexpr std::uint32_t n_lines = 24;
    constexpr int n_ops = 400;
    Rng rng(fc.seed);

    // Reference model: last committed value per line, maintained in
    // completion order via the callbacks.
    std::map<Addr, std::vector<std::uint8_t>> committed;

    int completed = 0;
    for (int i = 0; i < n_ops; ++i) {
        const bool fpga_homed = rng.chance(0.5);
        const Addr line =
            (fpga_homed ? mem::AddressMap::fpgaDramBase : 0) +
            0x10000 + rng.below(n_lines) * cache::lineSize;
        std::vector<std::uint8_t> data(cache::lineSize);
        for (auto &b : data)
            b = static_cast<std::uint8_t>(rng.next());

        switch (rng.below(4)) {
          case 0: // CPU cached op on FPGA-homed, or local write
            if (fpga_homed) {
                m.cpuRemote().writeLine(line, data.data(),
                                        [&completed, &committed, line,
                                         data](Tick) {
                                            committed[line] = data;
                                            ++completed;
                                        });
            } else {
                // Home-local coherent write through the home agent.
                m.cpuHome().localWrite(line, data.data(),
                                       [&completed, &committed, line,
                                        data](Tick) {
                                           committed[line] = data;
                                           ++completed;
                                       });
            }
            break;
          case 1:
            if (fpga_homed) {
                m.cpuRemote().readLine(line, nullptr,
                                       [&completed](Tick) {
                                           ++completed;
                                       });
            } else {
                m.fpgaRemote().readLineUncached(line, nullptr,
                                                [&completed](Tick) {
                                                    ++completed;
                                                });
            }
            break;
          case 2:
            if (!fpga_homed) {
                m.fpgaRemote().writeLineUncached(
                    line, data.data(),
                    [&completed, &committed, line, data](Tick) {
                        committed[line] = data;
                        ++completed;
                    });
            } else {
                m.fpgaHome().localRead(line, nullptr,
                                       [&completed](Tick) {
                                           ++completed;
                                       });
            }
            break;
          default:
            if (fpga_homed) {
                m.cpuRemote().readLine(line, nullptr,
                                       [&completed](Tick) {
                                           ++completed;
                                       });
            } else {
                m.fpgaRemote().readLineUncached(line, nullptr,
                                                [&completed](Tick) {
                                                    ++completed;
                                                });
            }
            break;
        }
        // Occasionally let the machine drain to vary interleavings.
        if (rng.chance(0.2))
            m.eventq().run();
    }
    m.eventq().run();
    EXPECT_EQ(completed, n_ops) << "liveness violated";

    // Flush all CPU-cached remote lines home.
    bool flushed = false;
    m.cpuRemote().flushAll([&](Tick) { flushed = true; });
    m.eventq().run();
    ASSERT_TRUE(flushed);

    // Protocol soundness over the whole trace.
    trace::ProtocolChecker checker;
    checker.check(tr);
    checker.finalize();
    EXPECT_TRUE(checker.clean())
        << "first violation: "
        << (checker.violations().empty() ? ""
                                         : checker.violations()[0]);

    // Functional: every line whose last write we observed must hold
    // that value in its home memory now (no lost or phantom writes).
    for (const auto &[line, data] : committed) {
        std::uint8_t now_mem[cache::lineSize];
        if (line >= mem::AddressMap::fpgaDramBase) {
            m.fpgaMem().store().read(
                line - mem::AddressMap::fpgaDramBase, now_mem,
                cache::lineSize);
        } else {
            m.cpuMem().store().read(line, now_mem, cache::lineSize);
        }
        EXPECT_EQ(std::memcmp(now_mem, data.data(), cache::lineSize),
                  0)
            << "line " << std::hex << line;
    }
}

std::vector<FuzzConfig>
fuzzMatrix()
{
    std::vector<FuzzConfig> out;
    std::uint64_t seed = 1;
    for (auto policy : {eci::BalancePolicy::SingleLink,
                        eci::BalancePolicy::RoundRobin,
                        eci::BalancePolicy::AddressHash,
                        eci::BalancePolicy::LeastLoaded}) {
        for (std::uint32_t lanes : {4u, 12u}) {
            for (std::uint32_t mshrs : {1u, 8u, 128u}) {
                out.push_back(FuzzConfig{policy, lanes, mshrs, seed});
                seed += 0x9e37;
            }
        }
    }
    return out;
}

std::string
fuzzName(const ::testing::TestParamInfo<FuzzConfig> &info)
{
    std::string policy = toString(info.param.policy);
    for (auto &c : policy)
        if (c == '-')
            c = '_';
    return policy + "_l" + std::to_string(info.param.lanes) + "_m" +
           std::to_string(info.param.mshrs);
}

INSTANTIATE_TEST_SUITE_P(ConfigMatrix, ProtocolFuzz,
                         ::testing::ValuesIn(fuzzMatrix()), fuzzName);

} // namespace
} // namespace enzian
