/**
 * @file
 * Tests for declarative power sequencing and the BMC power domains.
 */

#include <gtest/gtest.h>

#include "bmc/bmc.hh"
#include "bmc/sequence_solver.hh"

namespace enzian::bmc {
namespace {

TEST(SequenceSolver, RespectsDependencies)
{
    SequenceSolver s;
    s.addRail({"A", {}, 2.0, 1.0});
    s.addRail({"B", {"A"}, 2.0, 1.0});
    s.addRail({"C", {"B"}, 2.0, 1.0});
    auto up = s.powerUpSequence();
    ASSERT_EQ(up.size(), 3u);
    EXPECT_EQ(up[0].rail, "A");
    EXPECT_EQ(up[1].rail, "B");
    EXPECT_EQ(up[2].rail, "C");
    EXPECT_DOUBLE_EQ(up[0].at_ms, 0.0);
    EXPECT_DOUBLE_EQ(up[1].at_ms, 3.0); // A's ramp + settle
    EXPECT_DOUBLE_EQ(up[2].at_ms, 6.0);
}

TEST(SequenceSolver, DiamondDependency)
{
    SequenceSolver s;
    s.addRail({"root", {}, 1.0, 1.0});
    s.addRail({"left", {"root"}, 5.0, 1.0});
    s.addRail({"right", {"root"}, 1.0, 1.0});
    s.addRail({"sink", {"left", "right"}, 1.0, 1.0});
    auto up = s.powerUpSequence();
    // sink starts only after the slower branch (left) settles.
    double sink_at = -1, left_at = -1;
    for (const auto &st : up) {
        if (st.rail == "sink")
            sink_at = st.at_ms;
        if (st.rail == "left")
            left_at = st.at_ms;
    }
    EXPECT_GE(sink_at, left_at + 6.0);
}

TEST(SequenceSolver, IndependentRailsStartTogether)
{
    SequenceSolver s;
    s.addRail({"X", {}, 1.0, 1.0});
    s.addRail({"Y", {}, 1.0, 1.0});
    auto up = s.powerUpSequence();
    EXPECT_DOUBLE_EQ(up[0].at_ms, 0.0);
    EXPECT_DOUBLE_EQ(up[1].at_ms, 0.0);
}

TEST(SequenceSolver, ValidatorAcceptsSolvedSchedule)
{
    SequenceSolver s;
    s.addRail({"A", {}, 2.0, 1.0});
    s.addRail({"B", {"A"}, 2.0, 1.0});
    std::string err;
    EXPECT_TRUE(s.validate(s.powerUpSequence(), err)) << err;
}

TEST(SequenceSolver, ValidatorRejectsEarlyStart)
{
    SequenceSolver s;
    s.addRail({"A", {}, 2.0, 1.0});
    s.addRail({"B", {"A"}, 2.0, 1.0});
    std::vector<SequenceStep> bad = {{"A", 0.0}, {"B", 1.0}};
    std::string err;
    EXPECT_FALSE(s.validate(bad, err));
    EXPECT_NE(err.find("before"), std::string::npos);
}

TEST(SequenceSolver, ValidatorRejectsMissingAndDuplicateRails)
{
    SequenceSolver s;
    s.addRail({"A", {}, 1.0, 1.0});
    s.addRail({"B", {}, 1.0, 1.0});
    std::string err;
    EXPECT_FALSE(s.validate({{"A", 0.0}}, err));
    EXPECT_FALSE(s.validate({{"A", 0.0}, {"A", 5.0}}, err));
}

TEST(SequenceSolver, PowerDownReversesOrder)
{
    SequenceSolver s;
    s.addRail({"A", {}, 2.0, 1.0});
    s.addRail({"B", {"A"}, 2.0, 1.0});
    auto down = s.powerDownSequence();
    ASSERT_EQ(down.size(), 2u);
    EXPECT_EQ(down[0].rail, "B");
    EXPECT_EQ(down[1].rail, "A");
    EXPECT_GT(down[1].at_ms, down[0].at_ms);
}

TEST(SequenceSolverDeathTest, CycleIsFatal)
{
    SequenceSolver s;
    s.addRail({"A", {"B"}, 1.0, 1.0});
    s.addRail({"B", {"A"}, 1.0, 1.0});
    EXPECT_EXIT(s.powerUpSequence(), ::testing::ExitedWithCode(1),
                "cycle");
}

TEST(SequenceSolverDeathTest, DanglingDependencyFatal)
{
    SequenceSolver s;
    s.addRail({"A", {"ghost"}, 1.0, 1.0});
    EXPECT_EXIT(s.powerUpSequence(), ::testing::ExitedWithCode(1),
                "undeclared");
}

class BmcTest : public ::testing::Test
{
  protected:
    BmcTest() : bmc("bmc", eq) {}

    EventQueue eq;
    Bmc bmc;
};

TEST_F(BmcTest, HasTwentyFiveRegulators)
{
    EXPECT_EQ(bmc.regulatorCount(), 25u);
    EXPECT_EQ(bmc.solver().railCount(), 25u);
}

TEST_F(BmcTest, CommonPowerUpBringsStandbyRails)
{
    const Tick settled = bmc.commonPowerUp();
    eq.runUntil(settled + units::ms(1));
    EXPECT_TRUE(bmc.domainUp(Domain::Standby));
    EXPECT_TRUE(bmc.regulator("P3V3_STBY").powerGood());
    EXPECT_TRUE(bmc.regulator("P2V5_CLK").powerGood());
    EXPECT_FALSE(bmc.regulator("VDD_CORE").powerGood());
}

TEST_F(BmcTest, CpuDomainSequencedAfterStandby)
{
    eq.runUntil(bmc.commonPowerUp() + units::ms(1));
    const Tick settled = bmc.cpuPowerUp();
    eq.runUntil(settled + units::ms(1));
    EXPECT_TRUE(bmc.domainUp(Domain::Cpu));
    for (const char *rail :
         {"VDD_CORE", "VDD_09", "P1V8_CPU", "VDD_DDR_C01",
          "VTT_DDR_C23"}) {
        EXPECT_TRUE(bmc.regulator(rail).powerGood()) << rail;
    }
}

TEST_F(BmcTest, CpuPowerDownDropsRails)
{
    eq.runUntil(bmc.commonPowerUp() + units::ms(1));
    eq.runUntil(bmc.cpuPowerUp() + units::ms(1));
    const Tick down = bmc.cpuPowerDown();
    eq.runUntil(down + units::ms(60));
    EXPECT_FALSE(bmc.regulator("VDD_CORE").powerGood());
    EXPECT_FALSE(bmc.domainUp(Domain::Cpu));
    // Standby untouched.
    EXPECT_TRUE(bmc.regulator("P3V3_STBY").powerGood());
}

TEST_F(BmcTest, FpgaDomainIndependentOfCpu)
{
    eq.runUntil(bmc.commonPowerUp() + units::ms(1));
    eq.runUntil(bmc.fpgaPowerUp() + units::ms(1));
    EXPECT_TRUE(bmc.regulator("VCCINT").powerGood());
    EXPECT_TRUE(bmc.regulator("MGTAVTT").powerGood());
    EXPECT_FALSE(bmc.regulator("VDD_CORE").powerGood());
}

TEST_F(BmcTest, DomainBeforeStandbyIsFatal)
{
    EXPECT_EXIT(bmc.cpuPowerUp(), ::testing::ExitedWithCode(1),
                "before common_power_up");
}

TEST_F(BmcTest, PrintCurrentAllListsEveryRail)
{
    eq.runUntil(bmc.commonPowerUp() + units::ms(1));
    const std::string table = bmc.printCurrentAll();
    for (const auto &rail : bmc.railNames())
        EXPECT_NE(table.find(rail), std::string::npos) << rail;
}

TEST_F(BmcTest, SolvedFullTreeValidates)
{
    std::string err;
    EXPECT_TRUE(bmc.solver().validate(bmc.solver().powerUpSequence(),
                                      err))
        << err;
}

} // namespace
} // namespace enzian::bmc

namespace enzian::bmc {
namespace {

class BmcCycleTest : public ::testing::Test
{
  protected:
    BmcCycleTest() : bmc("bmc", eq) {}

    EventQueue eq;
    Bmc bmc;
};

TEST_F(BmcCycleTest, FullPowerCycleRestoresAllDomains)
{
    eq.runUntil(bmc.commonPowerUp() + units::ms(1));
    eq.runUntil(bmc.cpuPowerUp() + units::ms(1));
    eq.runUntil(bmc.fpgaPowerUp() + units::ms(1));
    ASSERT_TRUE(bmc.regulator("VDD_CORE").powerGood());
    ASSERT_TRUE(bmc.regulator("VCCINT").powerGood());

    // Drop and restore both compute domains.
    eq.runUntil(bmc.cpuPowerDown() + units::ms(60));
    eq.runUntil(bmc.fpgaPowerDown() + units::ms(60));
    EXPECT_FALSE(bmc.regulator("VDD_CORE").powerGood());
    EXPECT_FALSE(bmc.regulator("VCCINT").powerGood());
    EXPECT_TRUE(bmc.regulator("P3V3_STBY").powerGood());

    eq.runUntil(bmc.cpuPowerUp() + units::ms(1));
    eq.runUntil(bmc.fpgaPowerUp() + units::ms(1));
    EXPECT_TRUE(bmc.regulator("VDD_CORE").powerGood());
    EXPECT_TRUE(bmc.regulator("VCCINT").powerGood());
    EXPECT_TRUE(bmc.domainUp(Domain::Cpu));
    EXPECT_TRUE(bmc.domainUp(Domain::Fpga));
}

TEST_F(BmcCycleTest, FaultedRailIgnoresEnableUntilCleared)
{
    eq.runUntil(bmc.commonPowerUp() + units::ms(1));
    // Inject a latched over-current on VDD_CORE, then attempt the
    // CPU sequence: the faulted regulator must stay down (a short on
    // a >150 A rail is exactly the hazard of section 4.2).
    bmc.regulator("VDD_CORE").injectFault(statusIoutOc);
    eq.runUntil(bmc.cpuPowerUp() + units::ms(1));
    EXPECT_FALSE(bmc.regulator("VDD_CORE").powerGood());
    // Downstream rails sequenced anyway in open-loop firmware - the
    // telemetry is how the operator notices; STATUS_WORD reports it.
    auto status =
        bmc.pmbus().readWord(0x20, PmbusCmd::StatusWord);
    eq.run();
    ASSERT_TRUE(status.has_value());
    EXPECT_TRUE(*status & statusIoutOc);

    // Clear and retry: the rail recovers.
    bmc.pmbus().sendCommand(0x20, PmbusCmd::ClearFaults);
    eq.runUntil(bmc.cpuPowerUp() + units::ms(1));
    EXPECT_TRUE(bmc.regulator("VDD_CORE").powerGood());
}

TEST_F(BmcCycleTest, TelemetrySeesAFaultedRailAsDead)
{
    eq.runUntil(bmc.commonPowerUp() + units::ms(1));
    eq.runUntil(bmc.fpgaPowerUp() + units::ms(1));
    bmc.power().setFpgaOn(true);
    bmc.power().setFpgaConfigured(true);
    bmc.telemetry().watch("FPGA", 0x30);
    bmc.telemetry().start(units::ms(20));
    eq.runUntil(eq.now() + units::ms(100));
    bmc.regulator("VCCINT").injectFault(statusVoutOv);
    eq.runUntil(eq.now() + units::ms(100));
    bmc.telemetry().stop();
    eq.run();
    const auto *last = bmc.telemetry().latest("FPGA");
    ASSERT_NE(last, nullptr);
    EXPECT_DOUBLE_EQ(last->volts, 0.0);
    EXPECT_DOUBLE_EQ(last->watts, 0.0);
    // Earlier samples saw the healthy rail.
    EXPECT_GT(bmc.telemetry().samples().front().volts, 0.8);
}

} // namespace
} // namespace enzian::bmc
