/**
 * @file
 * Tests for the conservative parallel simulation layer: cross-domain
 * channel merge ordering, epoch-boundary delivery, stale cancels
 * across domains, thread-count determinism of the scheduler and of a
 * full machine, and the chaos-scenario registry byte-compare.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "eci/eci_link.hh"
#include "fault/chaos_scenario.hh"
#include "fault/fault_plan.hh"
#include "platform/enzian_machine.hh"
#include "platform/params.hh"
#include "sim/cross_domain_channel.hh"
#include "sim/domain_scheduler.hh"

namespace enzian {
namespace {

constexpr Tick kLookahead = 100;

TEST(CrossDomainChannel, DeterministicSameTickMerge)
{
    // Two source domains deliver into one destination at the same
    // tick; the barrier merge must order them by source domain id no
    // matter in which order the channels were created.
    sim::DomainScheduler sched("t.merge", kLookahead, 1);
    auto &a = sched.addDomain("a");
    auto &b = sched.addDomain("b");
    auto &c = sched.addDomain("c");
    // Deliberately create the higher-id source's channel first.
    auto &fromC = sched.channel(c, a);
    auto &fromB = sched.channel(b, a);

    std::vector<std::string> order;
    b.queue().schedule(10, [&]() {
        fromB.push(10 + kLookahead, [&]() { order.push_back("b"); });
    });
    c.queue().schedule(10, [&]() {
        fromC.push(10 + kLookahead, [&]() { order.push_back("c"); });
    });
    sched.run();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], "b");
    EXPECT_EQ(order[1], "c");
}

TEST(CrossDomainChannel, EpochBoundaryDelivery)
{
    // A message sent at tick t with the minimum legal delivery tick
    // t + L lands exactly one epoch later, at its timestamp.
    sim::DomainScheduler sched("t.boundary", kLookahead, 1);
    auto &a = sched.addDomain("a");
    auto &b = sched.addDomain("b");
    auto &ab = sched.channel(a, b);

    Tick delivered = 0;
    Tick deliveredLate = 0;
    a.queue().schedule(0, [&]() {
        ab.push(kLookahead, [&]() { delivered = b.queue().now(); });
        ab.push(kLookahead + 5,
                [&]() { deliveredLate = b.queue().now(); });
    });
    sched.run();
    EXPECT_EQ(delivered, kLookahead);
    EXPECT_EQ(deliveredLate, kLookahead + 5);
    EXPECT_EQ(ab.messagesForwarded(), 2u);
}

TEST(CrossDomainChannel, StaleCancelAcrossDomainsIsNoOp)
{
    // Domain a asks to cancel an event in domain b that has already
    // run by the time the cancellation crosses the lookahead gap;
    // the cancel must be an exact no-op.
    sim::DomainScheduler sched("t.cancel", kLookahead, 1);
    auto &a = sched.addDomain("a");
    auto &b = sched.addDomain("b");
    auto &ab = sched.channel(a, b);

    bool ran = false;
    const EventId id = b.queue().schedule(50, [&]() { ran = true; });
    a.queue().schedule(0, [&]() {
        // Delivered at >= 100 > 50: the target event already fired.
        ab.push(kLookahead, [&, id]() { b.queue().cancel(id); });
    });
    sched.run();
    EXPECT_TRUE(ran);
    EXPECT_TRUE(b.queue().empty());
    EXPECT_EQ(b.queue().eventsExecuted(), 2u);
}

TEST(CrossDomainChannel, LookaheadViolationDies)
{
    sim::DomainScheduler sched("t.violate", kLookahead, 1);
    auto &a = sched.addDomain("a");
    auto &b = sched.addDomain("b");
    auto &ab = sched.channel(a, b);
    EXPECT_DEATH(ab.push(kLookahead - 1, []() {}), "lookahead");
}

/** Ping-pong across two domains; returns the per-hop tick trace. */
std::vector<Tick>
pingPongTrace(std::uint32_t threads, int rounds)
{
    sim::DomainScheduler sched("t.pp", kLookahead, threads);
    auto &a = sched.addDomain("a");
    auto &b = sched.addDomain("b");
    auto &ab = sched.channel(a, b);
    auto &ba = sched.channel(b, a);

    // Traces are per-domain (no cross-thread sharing) and merged
    // deterministically after the run.
    std::vector<Tick> atrace, btrace;
    std::function<void(int)> hopA = [&](int left) {
        atrace.push_back(a.queue().now());
        if (left > 0) {
            ab.push(a.queue().now() + kLookahead,
                    [&, left]() { /* b side */
                                  btrace.push_back(b.queue().now());
                                  if (left > 1) {
                                      ba.push(b.queue().now() +
                                                  kLookahead,
                                              [&, left]() {
                                                  hopA(left - 2);
                                              });
                                  }
                    });
        }
    };
    a.queue().schedule(7, [&]() { hopA(rounds); });
    sched.run();

    std::vector<Tick> merged = atrace;
    merged.insert(merged.end(), btrace.begin(), btrace.end());
    merged.push_back(sched.eventsExecuted());
    merged.push_back(sched.epochs());
    return merged;
}

TEST(DomainScheduler, ThreadCountDeterminism)
{
    const auto t1 = pingPongTrace(1, 40);
    const auto t2 = pingPongTrace(2, 40);
    const auto t4 = pingPongTrace(4, 40);
    EXPECT_EQ(t1, t2);
    EXPECT_EQ(t1, t4);
    EXPECT_GT(t1.size(), 40u);
}

TEST(DomainScheduler, RunUntilAdvancesAllDomains)
{
    sim::DomainScheduler sched("t.until", kLookahead, 2);
    auto &a = sched.addDomain("a");
    auto &b = sched.addDomain("b");
    int fired = 0;
    a.queue().schedule(30, [&]() { ++fired; });
    b.queue().schedule(500, [&]() { ++fired; });
    sched.runUntil(200);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(a.queue().now(), 200u);
    EXPECT_EQ(b.queue().now(), 200u);
    EXPECT_EQ(sched.now(), 200u);
    sched.run();
    EXPECT_EQ(fired, 2);
}

/** Completion tick traces of a small bidirectional ECI workload. */
struct MachineTrace
{
    std::vector<Tick> cpu, fpga;
    std::uint64_t events = 0;

    bool operator==(const MachineTrace &o) const
    {
        return cpu == o.cpu && fpga == o.fpga && events == o.events;
    }
};

MachineTrace
machineWorkload(std::uint32_t threads)
{
    platform::EnzianMachine::Config mc;
    mc.cpu_dram_bytes = 32ull << 20;
    mc.fpga_dram_bytes = 32ull << 20;
    mc.cores = 2;
    mc.threads = threads;
    mc.name = "tpar";
    platform::EnzianMachine m(mc);

    MachineTrace tr;
    std::vector<std::uint8_t> buf(cache::lineSize, 0x5a);
    for (std::uint32_t i = 0; i < 24; ++i) {
        const Addr fline = mem::AddressMap::fpgaDramBase +
                           static_cast<Addr>(i) * cache::lineSize;
        m.cpuRemote().writeLine(fline, buf.data(), [&tr](Tick t) {
            tr.cpu.push_back(t);
        });
        const Addr cline = static_cast<Addr>(i) * cache::lineSize;
        m.fpgaRemote().readLineUncached(cline, nullptr, [&tr](Tick t) {
            tr.fpga.push_back(t);
        });
    }
    tr.events = m.run();
    // Read-back through the home agent exercises the snoop path.
    // Issued at a fixed absolute tick: after a run a domain queue
    // sits at its last epoch end, not at the last event, so "now"
    // differs from the legacy machine even though the simulation was
    // identical.
    const Tick phase2 = units::us(5.0);
    for (std::uint32_t i = 0; i < 24; ++i) {
        const Addr fline = mem::AddressMap::fpgaDramBase +
                           static_cast<Addr>(i) * cache::lineSize;
        m.fpgaEventq().schedule(phase2, [&m, &tr, fline]() {
            m.fpgaHome().localRead(fline, nullptr, [&tr](Tick t) {
                tr.fpga.push_back(t);
            });
        });
    }
    tr.events += m.run();
    return tr;
}

TEST(ParallelMachine, MatchesLegacyMachine)
{
    // The domain-mode machine (threads=1) must reproduce the classic
    // single-queue machine's simulation exactly: same completion
    // ticks, same event count.
    const auto legacy = machineWorkload(0);
    const auto domain1 = machineWorkload(1);
    EXPECT_EQ(legacy.cpu, domain1.cpu);
    EXPECT_EQ(legacy.fpga, domain1.fpga);
    EXPECT_EQ(legacy.events, domain1.events);
    ASSERT_EQ(legacy.cpu.size(), 24u);
    ASSERT_EQ(legacy.fpga.size(), 48u);
}

TEST(ParallelMachine, ThreadCountInvariant)
{
    const auto domain1 = machineWorkload(1);
    const auto domain4 = machineWorkload(4);
    EXPECT_EQ(domain1, domain4);
}

TEST(ParallelMachine, SharedEventqAndThreadsAreExclusive)
{
    EventQueue eq;
    platform::EnzianMachine::Config mc;
    mc.shared_eventq = &eq;
    mc.threads = 2;
    mc.name = "tbad";
    EXPECT_DEATH(platform::EnzianMachine m(mc), "mutually exclusive");
}

fault::FaultPlan
lossyPlan()
{
    fault::FaultPlan plan;
    plan.seed = 1234;
    fault::FaultSpec drop;
    drop.kind = fault::FaultKind::EciMsgDrop;
    drop.prob = 0.02;
    plan.faults.push_back(drop);
    fault::FaultSpec corrupt;
    corrupt.kind = fault::FaultKind::EciMsgCorrupt;
    corrupt.prob = 0.01;
    plan.faults.push_back(corrupt);
    return plan;
}

TEST(ParallelChaos, RegistryBitIdenticalAcrossThreadCounts)
{
    fault::ChaosConfig cfg;
    cfg.seed = 7;
    cfg.ops = 200;
    cfg.lines = 16;
    const auto plan = lossyPlan();
    ASSERT_TRUE(fault::planParallelSafe(plan));

    const auto r1 = fault::runChaosParallel(plan, cfg, 1);
    const auto r4 = fault::runChaosParallel(plan, cfg, 4);
    EXPECT_TRUE(r1.ok) << (r1.violations.empty()
                               ? std::string()
                               : r1.violations.front());
    EXPECT_TRUE(r4.ok);
    EXPECT_EQ(r1.opsIssued, r4.opsIssued);
    EXPECT_EQ(r1.opsCompleted, r4.opsCompleted);
    EXPECT_EQ(r1.faultsInjected, r4.faultsInjected);
    EXPECT_GT(r1.faultsInjected, 0u);
    // The whole observable state of the simulation, byte for byte.
    EXPECT_EQ(r1.registryJson, r4.registryJson);
    EXPECT_EQ(r1.report, r4.report);
}

TEST(ParallelChaos, RejectsNonDomainSafePlans)
{
    fault::FaultPlan plan;
    plan.seed = 9;
    fault::FaultSpec ecc;
    ecc.kind = fault::FaultKind::DramEccCorrectable;
    ecc.prob = 0.01;
    plan.faults.push_back(ecc);
    EXPECT_FALSE(fault::planParallelSafe(plan));
}

} // namespace
} // namespace enzian
