/**
 * @file
 * Cross-module integration tests: whole-machine scenarios that
 * exercise the shell, protocol, accelerators, tracing, and BMC
 * together.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "accel/frame.hh"
#include "accel/rgb2y_pipeline.hh"
#include "accel/vision_pipeline.hh"
#include "platform/enzian_machine.hh"
#include "platform/platform_factory.hh"
#include "trace/checker.hh"
#include "trace/decoder.hh"

namespace enzian {
namespace {

using mem::AddressMap;
using platform::EnzianMachine;

EnzianMachine::Config
smallConfig()
{
    auto cfg = platform::enzianDefaultConfig();
    cfg.cpu_dram_bytes = 64ull << 20;
    cfg.fpga_dram_bytes = 64ull << 20;
    return cfg;
}

TEST(Integration, CoyoteStyleAppLifecycle)
{
    EnzianMachine m(smallConfig());
    m.loadBitstream("coyote-shell");
    m.shell().loadApp(0, "gbdt");

    // The shell maps a vFPGA window onto FPGA DRAM; the app address
    // space is virtual.
    auto &v = m.shell().vfpga(0);
    v.map(0x0, 0x100000, 1 << 20, true);
    const Addr paddr = v.translate(0x4000, true);
    EXPECT_EQ(paddr, 0x104000u);

    // CPU writes into the app's buffer through ECI coherently.
    std::vector<std::uint8_t> data(cache::lineSize, 0x3c);
    bool done = false;
    m.cpuRemote().writeLineUncached(AddressMap::fpgaDramBase + paddr,
                                    data.data(),
                                    [&](Tick) { done = true; });
    m.eventq().run();
    ASSERT_TRUE(done);
    std::uint8_t back[cache::lineSize];
    m.fpgaMem().store().read(paddr, back, cache::lineSize);
    EXPECT_EQ(std::memcmp(back, data.data(), cache::lineSize), 0);
}

TEST(Integration, TracedVisionPipelineIsProtocolClean)
{
    EnzianMachine m(smallConfig());
    trace::EciTrace tr;
    tr.attach(m.fabric());

    accel::Frame frame = accel::makeFrame(5, 0, 512, 4);
    accel::preloadFrame(m.fpgaMem().store(), 0, frame);
    accel::Rgb2yLineSource::Config pcfg;
    pcfg.reduction = accel::Reduction::Y8;
    pcfg.input_base = AddressMap::fpgaDramBase;
    pcfg.view_base = AddressMap::fpgaDramBase + (16ull << 20);
    pcfg.view_size = frame.pixels();
    accel::Rgb2yLineSource src(m.fpgaMem(), m.map(), m.fpga().clock(),
                               pcfg);
    m.fpgaHome().setLineSource(&src);

    std::vector<std::uint8_t> y(frame.pixels());
    std::uint32_t done = 0;
    for (std::uint64_t l = 0; l < y.size() / cache::lineSize; ++l) {
        m.cpuRemote().readLine(pcfg.view_base + l * cache::lineSize,
                               y.data() + l * cache::lineSize,
                               [&](Tick) { ++done; });
    }
    m.eventq().run();
    ASSERT_EQ(done, y.size() / cache::lineSize);

    // The blur stage consumes the hardware-produced luminance.
    std::vector<std::uint8_t> blurred(y.size());
    accel::gaussianBlur3x3(y.data(), frame.width, frame.height,
                           blurred.data());
    // Same as the pure-software pipeline output.
    EXPECT_EQ(blurred, accel::softwarePipeline(frame));

    // And the ECI conversation was protocol-clean.
    trace::ProtocolChecker checker;
    checker.check(tr);
    checker.finalize();
    EXPECT_TRUE(checker.clean())
        << (checker.violations().empty() ? ""
                                         : checker.violations()[0]);
}

TEST(Integration, TraceSerializationSurvivesRealWorkload)
{
    EnzianMachine m(smallConfig());
    trace::EciTrace tr;
    tr.attach(m.fabric());
    std::uint32_t done = 0;
    for (int i = 0; i < 16; ++i) {
        m.fpgaRemote().readLineUncached(static_cast<Addr>(i) * 128,
                                        nullptr,
                                        [&](Tick) { ++done; });
    }
    m.eventq().run();
    ASSERT_EQ(done, 16u);

    auto bytes = tr.toBytes();
    trace::EciTrace back;
    ASSERT_TRUE(back.fromBytes(bytes));
    EXPECT_EQ(back.size(), tr.size());
    const auto sum = trace::summarize(back);
    EXPECT_EQ(sum.byOpcode.at("RLDI"), 16u);
    EXPECT_EQ(sum.byOpcode.at("PEMD"), 16u);
}

TEST(Integration, LaneDialDownStillCoherentJustSlower)
{
    // The BDK can bring ECI up with 4 lanes instead of 12 per link
    // (paper section 4.4); everything still works, only slower.
    auto run = [](std::uint32_t lanes) {
        auto cfg = smallConfig();
        cfg.link.lanes = lanes;
        EnzianMachine m(cfg);
        Tick last = 0;
        std::uint32_t done = 0;
        const int n = 64;
        for (int i = 0; i < n; ++i) {
            m.fpgaRemote().readLineUncached(
                static_cast<Addr>(i) * 128, nullptr, [&](Tick t) {
                    ++done;
                    last = std::max(last, t);
                });
        }
        m.eventq().run();
        EXPECT_EQ(done, static_cast<std::uint32_t>(n));
        return last;
    };
    EXPECT_GT(run(4), run(12));
}

TEST(Integration, BalancePolicySweepAllComplete)
{
    for (auto policy :
         {eci::BalancePolicy::SingleLink, eci::BalancePolicy::RoundRobin,
          eci::BalancePolicy::AddressHash,
          eci::BalancePolicy::LeastLoaded}) {
        auto cfg = smallConfig();
        cfg.policy = policy;
        EnzianMachine m(cfg);
        std::uint32_t done = 0;
        for (int i = 0; i < 100; ++i) {
            std::vector<std::uint8_t> d(cache::lineSize,
                                        static_cast<std::uint8_t>(i));
            m.fpgaRemote().writeLineUncached(
                static_cast<Addr>(i) * 128, d.data(),
                [&](Tick) { ++done; });
        }
        m.eventq().run();
        EXPECT_EQ(done, 100u) << toString(policy);
        // Functional spot check.
        std::uint8_t back[cache::lineSize];
        m.cpuMem().store().read(99 * 128, back, cache::lineSize);
        EXPECT_EQ(back[0], 99);
    }
}

TEST(Integration, IoDoorbellDrivenDmaPattern)
{
    // The classic shell pattern: CPU writes a doorbell in the FPGA
    // I/O window; the "FPGA app" reacts by reading a descriptor from
    // host memory over ECI.
    EnzianMachine m(smallConfig());

    // Descriptor in host memory.
    struct Desc
    {
        std::uint64_t addr;
        std::uint64_t len;
    } desc{0x8000, 128};
    m.cpuMem().store().write(0x4000, &desc, sizeof(desc));
    std::vector<std::uint8_t> payload(cache::lineSize, 0x77);
    m.cpuMem().store().write(0x8000, payload.data(), payload.size());

    bool transferred = false;
    eci::IoDevice doorbell;
    doorbell.write = [&](Addr, std::uint64_t desc_addr, std::uint32_t) {
        // FPGA fetches the descriptor, then the payload, both over ECI.
        auto buf = std::make_shared<std::vector<std::uint8_t>>(
            cache::lineSize);
        m.fpgaRemote().readLineUncached(
            cache::lineAlign(desc_addr), buf->data(), [&, buf](Tick) {
                Desc d;
                std::memcpy(&d, buf->data(), sizeof(d));
                auto pay = std::make_shared<
                    std::vector<std::uint8_t>>(cache::lineSize);
                m.fpgaRemote().readLineUncached(
                    d.addr, pay->data(), [&, pay](Tick) {
                        m.fpgaMem().store().write(0x0, pay->data(),
                                                  cache::lineSize);
                        transferred = true;
                    });
            });
    };
    doorbell.read = [](Addr, std::uint32_t) { return 0ull; };
    m.fpgaIo().map("doorbell", 0x0, 0x8, doorbell);

    bool rung = false;
    m.cpuRemote().ioWrite(0x0, 0x4000, 8, [&](Tick) { rung = true; });
    m.eventq().run();
    EXPECT_TRUE(rung);
    EXPECT_TRUE(transferred);
    std::uint8_t back[cache::lineSize];
    m.fpgaMem().store().read(0, back, cache::lineSize);
    EXPECT_EQ(back[0], 0x77);
}

TEST(Integration, StressManyLinesRandomMix)
{
    EnzianMachine m(smallConfig());
    Rng rng(2024);
    trace::EciTrace tr;
    tr.attach(m.fabric());
    std::uint32_t done = 0, expected = 0;
    for (int i = 0; i < 500; ++i) {
        const Addr cpu_line = rng.below(1 << 18) * cache::lineSize %
                              (32ull << 20);
        const Addr fpga_line =
            AddressMap::fpgaDramBase +
            rng.below(1 << 18) * cache::lineSize % (32ull << 20);
        std::vector<std::uint8_t> d(cache::lineSize,
                                    static_cast<std::uint8_t>(i));
        switch (rng.below(4)) {
          case 0:
            m.cpuRemote().readLine(fpga_line, nullptr,
                                   [&](Tick) { ++done; });
            break;
          case 1:
            m.cpuRemote().writeLine(fpga_line, d.data(),
                                    [&](Tick) { ++done; });
            break;
          case 2:
            m.fpgaRemote().readLineUncached(cpu_line, nullptr,
                                            [&](Tick) { ++done; });
            break;
          case 3:
            m.fpgaRemote().writeLineUncached(cpu_line, d.data(),
                                             [&](Tick) { ++done; });
            break;
        }
        ++expected;
    }
    m.eventq().run();
    EXPECT_EQ(done, expected);
    trace::ProtocolChecker checker;
    checker.check(tr);
    checker.finalize();
    EXPECT_TRUE(checker.clean())
        << (checker.violations().empty() ? ""
                                         : checker.violations()[0]);
}

} // namespace
} // namespace enzian
