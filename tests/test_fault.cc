/**
 * @file
 * Unit tests for the fault-injection subsystem: plans, the per-layer
 * fault hooks (ECI link lanes/flaps, message loss, DRAM ECC, TCP
 * loss, RDMA drops, BMC rail glitches) and the recovery machinery
 * each one forces into existence.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "base/rng.hh"
#include "bmc/bmc.hh"
#include "eci/eci_link.hh"
#include "fault/chaos_scenario.hh"
#include "fault/fault_injector.hh"
#include "fault/fault_plan.hh"
#include "mem/dram_channel.hh"
#include "net/rdma_engine.hh"
#include "net/tcp_stack.hh"
#include "platform/enzian_machine.hh"
#include "platform/platform_factory.hh"

namespace enzian::fault {
namespace {

// --------------------------------------------------------------- plans

TEST(FaultPlan, ParsesTextSpec)
{
    std::istringstream in(
        "# a comment\n"
        "seed 42\n"
        "fault kind=eci-msg-drop prob=0.05 at_us=10 until_us=300\n"
        "fault kind=eci-lane-fail param=3 target=1 at_us=50\n"
        "\n"
        "fault kind=dram-ecc-correctable prob=0.2 target=0\n");
    std::string err;
    const auto plan = FaultPlan::parse(in, err);
    ASSERT_TRUE(plan.has_value()) << err;
    EXPECT_EQ(plan->seed, 42u);
    ASSERT_EQ(plan->faults.size(), 3u);
    EXPECT_EQ(plan->faults[0].kind, FaultKind::EciMsgDrop);
    EXPECT_DOUBLE_EQ(plan->faults[0].prob, 0.05);
    EXPECT_EQ(plan->faults[0].at, units::us(10.0));
    EXPECT_EQ(plan->faults[0].until, units::us(300.0));
    EXPECT_EQ(plan->faults[1].kind, FaultKind::EciLaneFail);
    EXPECT_DOUBLE_EQ(plan->faults[1].param, 3.0);
    EXPECT_EQ(plan->faults[1].target, 1u);
    EXPECT_TRUE(plan->hasKind(FaultKind::DramEccCorrectable));
    EXPECT_FALSE(plan->hasKind(FaultKind::BmcRailGlitch));
}

TEST(FaultPlan, ToStringRoundTrips)
{
    const FaultPlan plan = FaultPlan::random(7);
    std::istringstream in(plan.toString());
    std::string err;
    const auto back = FaultPlan::parse(in, err);
    ASSERT_TRUE(back.has_value()) << err;
    EXPECT_EQ(back->seed, plan.seed);
    ASSERT_EQ(back->faults.size(), plan.faults.size());
    for (std::size_t i = 0; i < plan.faults.size(); ++i) {
        EXPECT_EQ(back->faults[i].kind, plan.faults[i].kind);
        EXPECT_EQ(back->faults[i].at, plan.faults[i].at);
        EXPECT_EQ(back->faults[i].until, plan.faults[i].until);
        EXPECT_EQ(back->faults[i].target, plan.faults[i].target);
    }
}

TEST(FaultPlan, RejectsMalformedSpecs)
{
    const char *bad[] = {
        "fault kind=warp-core-breach prob=0.1\n", // unknown kind
        "fault prob=0.1\n",                       // no kind
        "fault kind=eci-msg-drop prob=banana\n",  // bad number
        "seed not-a-number\n",
        "flault kind=eci-msg-drop\n", // unknown directive
    };
    for (const char *text : bad) {
        std::istringstream in(text);
        std::string err;
        EXPECT_FALSE(FaultPlan::parse(in, err).has_value()) << text;
        EXPECT_FALSE(err.empty()) << text;
        EXPECT_NE(err.find("line 1"), std::string::npos) << err;
    }
}

TEST(FaultPlan, RandomPlansAreSeedDeterministic)
{
    const FaultPlan a = FaultPlan::random(1234);
    const FaultPlan b = FaultPlan::random(1234);
    EXPECT_EQ(a.toString(), b.toString());
    EXPECT_GE(a.faults.size(), 2u);
    EXPECT_LE(a.faults.size(), 5u);
    // Different seeds diverge (over a few seeds at least one must).
    bool diverged = false;
    for (std::uint64_t s = 1; s < 6 && !diverged; ++s)
        diverged = FaultPlan::random(s).toString() != a.toString();
    EXPECT_TRUE(diverged);
}

TEST(FaultPlan, KindNamesRoundTrip)
{
    for (std::size_t k = 0; k < faultKindCount; ++k) {
        const auto kind = static_cast<FaultKind>(k);
        const auto back = faultKindFromString(toString(kind));
        ASSERT_TRUE(back.has_value()) << toString(kind);
        EXPECT_EQ(*back, kind);
    }
    EXPECT_FALSE(faultKindFromString("no-such-fault").has_value());
}

// ----------------------------------------------------------- ECI link

eci::EciMsg
lineMsg(Addr addr, mem::NodeId src = mem::NodeId::Fpga)
{
    eci::EciMsg m;
    m.op = eci::Opcode::PEMD;
    m.src = src;
    m.dst = src == mem::NodeId::Fpga ? mem::NodeId::Cpu
                                     : mem::NodeId::Fpga;
    m.addr = addr;
    return m;
}

TEST(FaultEciLink, LaneFailureDeratesBandwidthProportionally)
{
    EventQueue eq;
    eci::EciLink::Config cfg = platform::params::eciLinkConfig();
    eci::EciLink link("l", eq, cfg);
    const double full = link.effectiveBandwidth();
    const std::uint32_t lanes = link.lanes();

    link.failLanes(4);
    EXPECT_EQ(link.lanes(), lanes - 4);
    EXPECT_NEAR(link.effectiveBandwidth(),
                full * (lanes - 4) / lanes, 1.0);
    EXPECT_TRUE(link.retraining());
    EXPECT_EQ(link.laneFailures(), 1u);
    EXPECT_EQ(link.retrains(), 1u);

    // Failing more lanes than remain still leaves one lane up.
    link.failLanes(100);
    EXPECT_EQ(link.lanes(), 1u);
    EXPECT_NEAR(link.effectiveBandwidth(), full / lanes, 1.0);

    link.restoreLanes(lanes);
    EXPECT_EQ(link.lanes(), lanes);
    EXPECT_NEAR(link.effectiveBandwidth(), full, 1.0);
    EXPECT_EQ(link.retrains(), 3u);
}

TEST(FaultEciLink, RetrainStallsTraffic)
{
    EventQueue eq;
    eci::EciLink::Config cfg = platform::params::eciLinkConfig();
    eci::EciLink link("l", eq, cfg);
    link.setReceiver(mem::NodeId::Cpu, [](const eci::EciMsg &) {});
    const Tick clean = link.send(lineMsg(0));
    eq.run();

    link.failLanes(2);
    const Tick retrain_ends = eq.now() + units::ns(cfg.retrain_ns);
    const Tick delayed = link.send(lineMsg(128));
    // The serializer cannot start before the retrain completes, so
    // delivery lands strictly after it (and after a clean delivery).
    EXPECT_GT(delayed, retrain_ends);
    EXPECT_GT(delayed - eq.now(), clean);
    eq.run();
    EXPECT_FALSE(link.retraining());
}

TEST(FaultEciLink, FlapLosesInFlightAndReconcilesCredits)
{
    EventQueue eq;
    eci::EciLink link("l", eq, platform::params::eciLinkConfig());
    std::uint32_t delivered = 0;
    link.setReceiver(mem::NodeId::Cpu,
                     [&](const eci::EciMsg &) { ++delivered; });
    link.setReceiver(mem::NodeId::Fpga,
                     [&](const eci::EciMsg &) { ++delivered; });
    link.send(lineMsg(0));
    link.send(lineMsg(128));
    link.send(lineMsg(0, mem::NodeId::Cpu));

    link.flap(units::us(5.0));
    EXPECT_EQ(link.linkFlaps(), 1u);
    EXPECT_EQ(link.creditsReconciled(), 3u);
    eq.run();
    EXPECT_EQ(delivered, 0u); // everything in flight was lost

    // After the flap + retrain the link carries traffic again.
    link.send(lineMsg(256));
    eq.run();
    EXPECT_EQ(delivered, 1u);
}

TEST(FaultEciLink, FilterDropsAndCorruptsAreCountedNotDelivered)
{
    EventQueue eq;
    eci::EciLink link("l", eq, platform::params::eciLinkConfig());
    std::uint32_t delivered = 0;
    std::uint32_t tapped = 0;
    link.setReceiver(mem::NodeId::Cpu,
                     [&](const eci::EciMsg &) { ++delivered; });
    link.setTap([&](Tick, const eci::EciMsg &) { ++tapped; });
    std::uint32_t n = 0;
    link.setFaultFilter([&](Tick, const eci::EciMsg &) {
        ++n;
        if (n == 1)
            return eci::EciLink::FaultAction::Drop;
        if (n == 2)
            return eci::EciLink::FaultAction::Corrupt;
        return eci::EciLink::FaultAction::Deliver;
    });
    link.send(lineMsg(0));
    link.send(lineMsg(128));
    link.send(lineMsg(256));
    eq.run();
    EXPECT_EQ(delivered, 1u);
    EXPECT_EQ(tapped, 1u); // a real capture never sees lost messages
    EXPECT_EQ(link.messagesDropped(), 1u);
    EXPECT_EQ(link.messagesCorrupted(), 1u);
}

// ------------------------------------------------- ECI agent recovery

TEST(FaultEciRecovery, RemoteAgentRetriesDroppedRequest)
{
    platform::EnzianMachine::Config mc;
    mc.cpu_dram_bytes = 16ull << 20;
    mc.fpga_dram_bytes = 16ull << 20;
    mc.name = "retry";
    platform::EnzianMachine m(mc);
    m.cpuRemote().enableRecovery(30.0, 8);

    // Drop the first request message crossing the fabric.
    bool dropped = false;
    for (std::uint32_t i = 0; i < m.fabric().linkCount(); ++i) {
        m.fabric().link(i).setFaultFilter(
            [&dropped](Tick, const eci::EciMsg &msg) {
                if (!dropped && msg.op == eci::Opcode::RLDX) {
                    dropped = true;
                    return eci::EciLink::FaultAction::Drop;
                }
                return eci::EciLink::FaultAction::Deliver;
            });
    }

    std::uint8_t buf[cache::lineSize] = {0x5a};
    bool done = false;
    m.cpuRemote().writeLine(mem::AddressMap::fpgaDramBase, buf,
                            [&done](Tick) { done = true; });
    m.eventq().run();
    EXPECT_TRUE(done);
    EXPECT_TRUE(dropped);
    EXPECT_GE(m.cpuRemote().retriesSent(), 1u);
}

TEST(FaultEciRecovery, HomeReplaysResponseOnDuplicateRequest)
{
    platform::EnzianMachine::Config mc;
    mc.cpu_dram_bytes = 16ull << 20;
    mc.fpga_dram_bytes = 16ull << 20;
    mc.name = "replay";
    platform::EnzianMachine m(mc);
    m.cpuRemote().enableRecovery(30.0, 8);
    m.fpgaHome().enableRecovery(30.0, 8);

    // Drop the first *response*: the home serviced the request, so the
    // retry must be deduplicated and answered from the replay cache.
    bool dropped = false;
    for (std::uint32_t i = 0; i < m.fabric().linkCount(); ++i) {
        m.fabric().link(i).setFaultFilter(
            [&dropped](Tick, const eci::EciMsg &msg) {
                if (!dropped && msg.op == eci::Opcode::PEMD) {
                    dropped = true;
                    return eci::EciLink::FaultAction::Drop;
                }
                return eci::EciLink::FaultAction::Deliver;
            });
    }

    std::uint8_t buf[cache::lineSize] = {};
    bool done = false;
    m.cpuRemote().readLine(mem::AddressMap::fpgaDramBase, buf,
                           [&done](Tick) { done = true; });
    m.eventq().run();
    EXPECT_TRUE(done);
    EXPECT_TRUE(dropped);
    EXPECT_GE(m.cpuRemote().retriesSent(), 1u);
    EXPECT_GE(m.fpgaHome().responsesReplayed(), 1u);
}

// ----------------------------------------------------------- DRAM ECC

TEST(FaultDram, CorrectableEccScrubsAndDelays)
{
    EventQueue eq;
    mem::DramChannel::Config cfg = platform::params::cpuDramConfig();
    mem::DramChannel clean("ch0", eq, cfg);
    mem::DramChannel faulty("ch1", eq, cfg);
    Rng rng(9);
    mem::DramChannel::EccConfig ecc;
    ecc.correctable_prob = 1.0; // every access takes a hit
    faulty.armEcc(&rng, ecc);

    const Tick base = clean.access(0, 128);
    const Tick hit = faulty.access(0, 128);
    EXPECT_EQ(hit, base + ecc.scrub_penalty);
    EXPECT_EQ(faulty.eccCorrectable(), 1u);
    EXPECT_EQ(faulty.eccScrubs(), 1u);
    EXPECT_EQ(faulty.eccUncorrectable(), 0u);
}

TEST(FaultDram, UncorrectableEccRetriesTheBurst)
{
    EventQueue eq;
    mem::DramChannel::Config cfg = platform::params::cpuDramConfig();
    mem::DramChannel clean("ch0", eq, cfg);
    mem::DramChannel faulty("ch1", eq, cfg);
    Rng rng(9);
    mem::DramChannel::EccConfig ecc;
    ecc.uncorrectable_prob = 1.0;
    faulty.armEcc(&rng, ecc);

    const Tick base = clean.access(0, 128);
    const Tick hit = faulty.access(0, 128);
    // The burst is replayed: penalty + a second full stream + access.
    EXPECT_GT(hit, base + ecc.retry_penalty);
    EXPECT_EQ(faulty.eccUncorrectable(), 1u);
    EXPECT_EQ(faulty.eccRetries(), 1u);
    EXPECT_EQ(faulty.eccCorrectable(), 0u);
}

TEST(FaultDram, DisarmedEccIsFree)
{
    EventQueue eq;
    mem::DramChannel::Config cfg = platform::params::cpuDramConfig();
    mem::DramChannel clean("ch0", eq, cfg);
    mem::DramChannel armed("ch1", eq, cfg);
    Rng rng(9);
    armed.armEcc(&rng, mem::DramChannel::EccConfig{});
    armed.armEcc(nullptr, mem::DramChannel::EccConfig{});
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(armed.access(0, 128), clean.access(0, 128));
    EXPECT_EQ(armed.eccCorrectable(), 0u);
    EXPECT_EQ(armed.eccUncorrectable(), 0u);
}

// ----------------------------------------------------------- TCP loss

TEST(FaultTcp, LossAndReorderRecoverEveryByte)
{
    EventQueue eq;
    net::Switch sw("sw", eq, 2, net::Switch::Config{});
    net::TcpStack a("tcp0", eq, sw, net::hostTcpConfig(0));
    net::TcpStack b("tcp1", eq, sw, net::hostTcpConfig(1));
    a.enableReliable(150.0);
    b.enableReliable(150.0);
    Rng rng(11);
    a.setLossFaults(&rng, 0.15, 0.1, 20.0);
    b.setLossFaults(&rng, 0.15, 0.1, 20.0);

    const std::uint32_t flow = a.connect(b);
    const std::uint64_t bytes = 256 * 1024;
    bool done = false;
    a.send(flow, bytes, [&done](Tick) { done = true; });
    eq.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(b.bytesReceived(flow), bytes);
    // With 15% segment loss over a 256 KiB transfer, at least one
    // retransmission must have happened (deterministic under the seed).
    EXPECT_GE(a.retransmits(), 1u);
}

// --------------------------------------------------------- RDMA drops

TEST(FaultRdma, TimeoutRetryRecoversDroppedRequestsAndResponses)
{
    EventQueue eq;
    net::Switch::Config scfg;
    scfg.port = platform::params::eth100Config();
    scfg.port.mtu = 4096;
    net::Switch sw("sw", eq, 2, scfg);
    mem::MemoryController mc("mem", eq, 16 << 20, 2,
                             platform::params::fpgaDramConfig());
    net::DirectDramPath path(mc);
    net::RdmaTarget target("tgt", eq, sw, path,
                           net::RdmaTarget::Config{});
    net::RdmaInitiator init("ini", eq, sw, 1, 0);
    init.enableRecovery(50.0, 12);
    Rng reqRng(3);
    Rng rspRng(4);
    init.setFaults(&reqRng, 0.3);
    target.setFaults(&rspRng, 0.3);

    std::vector<std::uint8_t> src(4096), back(4096);
    for (std::size_t i = 0; i < src.size(); ++i)
        src[i] = static_cast<std::uint8_t>(i * 7 + 1);
    std::uint32_t jobs_done = 0;
    for (int j = 0; j < 8; ++j) {
        init.write(0x1000 + j * 8192, src.data(), src.size(),
                   [&jobs_done](Tick) { ++jobs_done; });
    }
    eq.run();
    ASSERT_EQ(jobs_done, 8u);

    bool read_done = false;
    init.read(0x1000, back.data(), back.size(),
              [&read_done](Tick) { read_done = true; });
    eq.run();
    ASSERT_TRUE(read_done);
    EXPECT_EQ(back, src);
    // 30% drop each way over 9 ops: recovery must have fired.
    EXPECT_GE(init.retriesSent() + init.requestsDropped() +
                  target.responsesDropped(),
              1u);
}

// ---------------------------------------------------- BMC rail glitch

TEST(FaultBmc, RailGlitchPowerCyclesAndRecoversTheDomain)
{
    EventQueue eq;
    bmc::Bmc b("bmc", eq);
    b.commonPowerUp();
    eq.run();
    b.cpuPowerUp();
    b.fpgaPowerUp();
    eq.run();
    ASSERT_TRUE(b.domainUp(bmc::Domain::Cpu));
    ASSERT_TRUE(b.domainUp(bmc::Domain::Fpga));

    b.injectRailGlitch("VDD_09");
    eq.run();
    EXPECT_TRUE(b.domainUp(bmc::Domain::Cpu));
    EXPECT_TRUE(b.domainUp(bmc::Domain::Fpga)); // other domain untouched
    EXPECT_EQ(b.railGlitches(), 1u);
    EXPECT_EQ(b.railRecoveries(), 1u);

    b.injectRailGlitch("VCCINT");
    eq.run();
    EXPECT_TRUE(b.domainUp(bmc::Domain::Fpga));
    EXPECT_EQ(b.railGlitches(), 2u);
    EXPECT_EQ(b.railRecoveries(), 2u);
}

// ------------------------------------------------------ the injector

TEST(FaultInjector, CountsInjectionsPerKindAndReports)
{
    std::istringstream in(
        "seed 5\n"
        "fault kind=eci-lane-fail param=2 target=0 at_us=5 "
        "until_us=40\n"
        "fault kind=dram-ecc-correctable prob=1.0 target=1 at_us=1 "
        "until_us=200\n");
    std::string err;
    const auto plan = FaultPlan::parse(in, err);
    ASSERT_TRUE(plan.has_value()) << err;

    ChaosConfig cfg;
    cfg.seed = 5;
    cfg.ops = 60;
    cfg.lines = 8;
    cfg.with_net = false;
    cfg.with_rdma = false;
    const ChaosResult r = runChaos(*plan, cfg);
    EXPECT_TRUE(r.ok) << (r.violations.empty()
                              ? ""
                              : r.violations.front());
    EXPECT_GT(r.faultsInjected, 0u);
    EXPECT_NE(r.report.find("eci-lane-fail"), std::string::npos);
    EXPECT_NE(r.report.find("dram-ecc-correctable"),
              std::string::npos);
}

} // namespace
} // namespace enzian::fault
