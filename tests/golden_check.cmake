# Runs one bench binary with ENZIAN_BENCH_DIR pointed at a scratch
# directory and compares the metric JSON it emits against the
# checked-in golden copy, byte for byte. Used by the golden_* ctest
# entries to enforce that the fault-injection hooks are zero-overhead
# (and zero-perturbation) when no plan is armed.
#
# Expected -D variables: BENCH (binary), METRICS (file name the bench
# writes), GOLDEN (checked-in reference), WORK_DIR (scratch).

file(MAKE_DIRECTORY "${WORK_DIR}")
execute_process(COMMAND ${CMAKE_COMMAND} -E env
                        "ENZIAN_BENCH_DIR=${WORK_DIR}" "${BENCH}"
                RESULT_VARIABLE bench_rc
                OUTPUT_QUIET)
if(NOT bench_rc EQUAL 0)
    message(FATAL_ERROR "${BENCH} exited with ${bench_rc}")
endif()
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                        "${WORK_DIR}/${METRICS}" "${GOLDEN}"
                RESULT_VARIABLE cmp_rc)
if(NOT cmp_rc EQUAL 0)
    message(FATAL_ERROR
            "${METRICS} diverges from golden ${GOLDEN}: the run is no "
            "longer bit-identical with faults disabled")
endif()
