# Runs one bench binary with ENZIAN_BENCH_DIR pointed at a scratch
# directory and compares the metric JSON it emits against the
# checked-in golden copy, byte for byte. Used by the golden_* ctest
# entries to enforce that the fault-injection hooks are zero-overhead
# (and zero-perturbation) when no plan is armed — and, with THREADS
# set, that the parallel timing-domain machine reproduces the same
# simulation bit-for-bit at any thread count.
#
# Expected -D variables: BENCH (binary), METRICS (file name the bench
# writes), GOLDEN (checked-in reference), WORK_DIR (scratch), and
# optionally THREADS (run the bench with ENZIAN_THREADS=<n>; the
# self-describing "threads" line it adds to the JSON is stripped
# before comparing, every other byte must match).

file(MAKE_DIRECTORY "${WORK_DIR}")
set(bench_env "ENZIAN_BENCH_DIR=${WORK_DIR}")
if(DEFINED THREADS)
    list(APPEND bench_env "ENZIAN_THREADS=${THREADS}")
endif()
execute_process(COMMAND ${CMAKE_COMMAND} -E env ${bench_env}
                        "${BENCH}"
                RESULT_VARIABLE bench_rc
                OUTPUT_QUIET)
if(NOT bench_rc EQUAL 0)
    message(FATAL_ERROR "${BENCH} exited with ${bench_rc}")
endif()
set(produced "${WORK_DIR}/${METRICS}")
if(DEFINED THREADS)
    file(STRINGS "${produced}" metric_lines)
    list(FILTER metric_lines EXCLUDE REGEX "^  \"threads\": ")
    list(JOIN metric_lines "\n" stripped)
    set(produced "${WORK_DIR}/stripped_${METRICS}")
    file(WRITE "${produced}" "${stripped}\n")
endif()
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                        "${produced}" "${GOLDEN}"
                RESULT_VARIABLE cmp_rc)
if(NOT cmp_rc EQUAL 0)
    message(FATAL_ERROR
            "${METRICS} diverges from golden ${GOLDEN}: the run is no "
            "longer bit-identical (faults disabled, "
            "threads=${THREADS})")
endif()
