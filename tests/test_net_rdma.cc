/**
 * @file
 * Tests for the RDMA engine and its memory paths (FPGA DRAM, ECI
 * host path, PCIe host path, RNIC).
 */

#include <gtest/gtest.h>

#include "net/rdma_engine.hh"
#include "net/rnic_model.hh"
#include "platform/enzian_machine.hh"
#include "platform/platform_factory.hh"

namespace enzian::net {
namespace {

Switch::Config
switchConfig()
{
    Switch::Config cfg;
    cfg.port = platform::params::eth100Config();
    cfg.port.mtu = 4096;
    return cfg;
}

std::vector<std::uint8_t>
pattern(std::size_t n, std::uint8_t seed)
{
    std::vector<std::uint8_t> d(n);
    for (std::size_t i = 0; i < n; ++i)
        d[i] = static_cast<std::uint8_t>(seed + i * 3);
    return d;
}

TEST(RdmaDram, ReadWriteRoundTrip)
{
    EventQueue eq;
    Switch sw("sw", eq, 2, switchConfig());
    mem::MemoryController mc("fpga.mem", eq, 64 << 20, 4,
                             platform::params::fpgaDramConfig());
    DirectDramPath path(mc);
    RdmaTarget target("target", eq, sw, path, RdmaTarget::Config{});
    RdmaInitiator init("init", eq, sw, 1, 0);

    const auto data = pattern(8192, 0x10);
    bool wrote = false;
    init.write(0x1000, data.data(), data.size(), [&](Tick) {
        wrote = true;
    });
    eq.run();
    ASSERT_TRUE(wrote);

    std::vector<std::uint8_t> back(data.size());
    bool read_done = false;
    init.read(0x1000, back.data(), back.size(), [&](Tick) {
        read_done = true;
    });
    eq.run();
    ASSERT_TRUE(read_done);
    EXPECT_EQ(back, data);
    EXPECT_EQ(target.requestsServed(), 2u);
}

TEST(RdmaEciHost, CoherentWithCpuL2)
{
    // Target = Enzian FPGA serving host (CPU) memory over ECI.
    platform::EnzianMachine::Config mcfg =
        platform::enzianDefaultConfig();
    mcfg.cpu_dram_bytes = 64ull << 20;
    mcfg.fpga_dram_bytes = 64ull << 20;
    platform::EnzianMachine m(mcfg);
    Switch sw("sw", m.eventq(), 2, switchConfig());
    EciHostPath path(m.fpgaRemote(), 0x10000);
    RdmaTarget target("target", m.eventq(), sw, path,
                      RdmaTarget::Config{});
    RdmaInitiator init("init", m.eventq(), sw, 1, 0);

    // CPU L2 holds a dirty copy of the region's first line; an RDMA
    // read must observe the dirty data (coherence through ECI).
    const auto dirty = pattern(cache::lineSize, 0x20);
    m.l2().fill(0x10000, cache::MoesiState::Modified, dirty.data());

    std::vector<std::uint8_t> back(cache::lineSize);
    bool done = false;
    init.read(0, back.data(), back.size(), [&](Tick) { done = true; });
    m.eventq().run();
    ASSERT_TRUE(done);
    EXPECT_EQ(std::memcmp(back.data(), dirty.data(), cache::lineSize),
              0);

    // An RDMA write must invalidate the CPU's cached copy.
    const auto fresh = pattern(cache::lineSize, 0x30);
    bool wrote = false;
    init.write(0, fresh.data(), fresh.size(), [&](Tick) {
        wrote = true;
    });
    m.eventq().run();
    ASSERT_TRUE(wrote);
    EXPECT_EQ(m.l2().probe(0x10000), cache::MoesiState::Invalid);
    std::uint8_t now_mem[cache::lineSize];
    m.cpuMem().store().read(0x10000, now_mem, cache::lineSize);
    EXPECT_EQ(std::memcmp(now_mem, fresh.data(), cache::lineSize), 0);
}

TEST(RdmaPcieHost, FunctionalThroughDma)
{
    auto sys = platform::makePcieAccelerator("alveo-u250");
    Switch sw("sw", *sys.eq, 2, switchConfig());
    PcieHostPath path(*sys.dma, 0x100000, 0x200000);
    RdmaTarget target("target", *sys.eq, sw, path,
                      RdmaTarget::Config{});
    RdmaInitiator init("init", *sys.eq, sw, 1, 0);

    const auto data = pattern(4096, 0x40);
    bool wrote = false;
    init.write(0x80, data.data(), data.size(), [&](Tick) {
        wrote = true;
    });
    sys.eq->run();
    ASSERT_TRUE(wrote);
    std::vector<std::uint8_t> host_now(data.size());
    sys.host->store().read(0x100080, host_now.data(), host_now.size());
    EXPECT_EQ(host_now, data);

    std::vector<std::uint8_t> back(data.size());
    bool read_done = false;
    init.read(0x80, back.data(), back.size(), [&](Tick) {
        read_done = true;
    });
    sys.eq->run();
    ASSERT_TRUE(read_done);
    EXPECT_EQ(back, data);
}

TEST(RdmaRnic, FunctionalAndFast)
{
    EventQueue eq;
    Switch sw("sw", eq, 2, switchConfig());
    mem::MemoryController host("host.mem", eq, 64 << 20, 6,
                               platform::params::cpuDramConfig());
    NicDmaPath path(host, NicDmaPath::Config{});
    RdmaTarget target("target", eq, sw, path, RdmaTarget::Config{});
    RdmaInitiator init("init", eq, sw, 1, 0);

    const auto data = pattern(2048, 0x50);
    bool wrote = false;
    Tick w_at = 0;
    init.write(0x40, data.data(), data.size(), [&](Tick t) {
        wrote = true;
        w_at = t;
    });
    eq.run();
    ASSERT_TRUE(wrote);
    std::vector<std::uint8_t> back(data.size());
    host.store().read(0x40, back.data(), back.size());
    EXPECT_EQ(back, data);
    EXPECT_LT(units::toMicros(w_at), 10.0); // small-op latency
}

TEST(RdmaLatencyShape, DramFasterThanEciHostForSmallOps)
{
    // The Fig 8 shape: FPGA-attached DRAM beats host memory over ECI
    // for small reads (no protocol round trips).
    auto measure = [&](bool dram) {
        platform::EnzianMachine::Config mcfg =
            platform::enzianDefaultConfig();
        mcfg.cpu_dram_bytes = 64ull << 20;
        mcfg.fpga_dram_bytes = 64ull << 20;
        platform::EnzianMachine m(mcfg);
        Switch sw("sw", m.eventq(), 2, switchConfig());
        DirectDramPath dpath(m.fpgaMem());
        EciHostPath hpath(m.fpgaRemote(), 0x0);
        MemoryPath &path =
            dram ? static_cast<MemoryPath &>(dpath) : hpath;
        RdmaTarget target("t", m.eventq(), sw, path,
                          RdmaTarget::Config{});
        RdmaInitiator init("i", m.eventq(), sw, 1, 0);
        std::vector<std::uint8_t> buf(128);
        Tick done_at = 0;
        bool done = false;
        init.read(0, buf.data(), buf.size(), [&](Tick t) {
            done = true;
            done_at = t;
        });
        m.eventq().run();
        EXPECT_TRUE(done);
        return done_at;
    };
    EXPECT_LT(measure(true), measure(false));
}

} // namespace
} // namespace enzian::net
