/**
 * @file
 * Tests for the verification subsystem: protocol kernels, the
 * exhaustive model checker (clean protocol + every seeded mutation
 * detected), and the runtime invariant monitor (live and replay).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "eci/protocol_kernel.hh"
#include "platform/enzian_machine.hh"
#include "platform/platform_factory.hh"
#include "trace/eci_pcap.hh"
#include "verif/explorer.hh"
#include "verif/invariant_monitor.hh"
#include "verif/invariants.hh"

namespace enzian {
namespace {

using cache::MoesiState;
using eci::Grant;
using eci::Opcode;
using mem::AddressMap;
using platform::EnzianMachine;
namespace proto = eci::proto;

// ---------------------------------------------------------------------
// Pure kernel unit checks: the same functions drive both the timed
// engines and the model checker.
// ---------------------------------------------------------------------

TEST(ProtocolKernel, FirstReadGrantsExclusive)
{
    const auto s = proto::homeRead(MoesiState::Invalid,
                                   MoesiState::Invalid, false, true);
    EXPECT_EQ(s.grant, Grant::Exclusive);
    EXPECT_EQ(s.dirAfter, MoesiState::Exclusive);
}

TEST(ProtocolKernel, ReadBesideHomeCopyGrantsShared)
{
    const auto s = proto::homeRead(MoesiState::Shared,
                                   MoesiState::Invalid, false, true);
    EXPECT_EQ(s.grant, Grant::Shared);
    EXPECT_EQ(s.dirAfter, MoesiState::Shared);
    EXPECT_EQ(s.localAction, proto::LocalAction::Keep);
}

TEST(ProtocolKernel, ExclusiveReadFlushesDirtyHomeCopy)
{
    const auto s = proto::homeRead(MoesiState::Modified,
                                   MoesiState::Invalid, true, true);
    EXPECT_EQ(s.grant, Grant::Exclusive);
    EXPECT_EQ(s.localAction, proto::LocalAction::Invalidate);
    EXPECT_TRUE(s.flushLocalDirty);
}

TEST(ProtocolKernel, UpgradeLegalFromSharedAndRacedInvalid)
{
    EXPECT_TRUE(
        proto::homeUpgrade(MoesiState::Invalid, MoesiState::Shared)
            .legal);
    // A racing SINV may have cleared the directory before the RUPG
    // is processed; the full-line payload still allows the grant.
    EXPECT_TRUE(
        proto::homeUpgrade(MoesiState::Invalid, MoesiState::Invalid)
            .legal);
    EXPECT_FALSE(
        proto::homeUpgrade(MoesiState::Invalid, MoesiState::Modified)
            .legal);
}

TEST(ProtocolKernel, StaleWritebackIsLegalButNotCommitted)
{
    const auto live = proto::homeWriteback(MoesiState::Modified);
    EXPECT_TRUE(live.legal);
    EXPECT_TRUE(live.commitData);
    const auto stale = proto::homeWriteback(MoesiState::Invalid);
    EXPECT_TRUE(stale.legal);
    EXPECT_FALSE(stale.commitData);
}

TEST(ProtocolKernel, DirtyEvictionWritesBack)
{
    EXPECT_EQ(proto::remoteEvict(MoesiState::Modified), Opcode::RWBD);
    EXPECT_EQ(proto::remoteEvict(MoesiState::Owned), Opcode::RWBD);
    // Clean copies (E included) leave silently with a dataless REVC.
    EXPECT_EQ(proto::remoteEvict(MoesiState::Exclusive), Opcode::REVC);
    EXPECT_EQ(proto::remoteEvict(MoesiState::Shared), Opcode::REVC);
}

TEST(ProtocolKernel, SnoopOfDirtyLineCarriesData)
{
    const auto s =
        proto::remoteSnoop(MoesiState::Modified, Opcode::SINV);
    EXPECT_EQ(s.response, Opcode::SACKI);
    EXPECT_EQ(s.stateAfter, MoesiState::Invalid);
    EXPECT_TRUE(s.hasData);
    // SFWD that misses (eviction in flight) answers SACKI, clean.
    const auto miss =
        proto::remoteSnoop(MoesiState::Invalid, Opcode::SFWD);
    EXPECT_EQ(miss.response, Opcode::SACKI);
    EXPECT_FALSE(miss.hasData);
}

// ---------------------------------------------------------------------
// Invariant predicates.
// ---------------------------------------------------------------------

TEST(Invariants, SwmrRejectsTwoWriters)
{
    EXPECT_FALSE(
        verif::checkSwmr(MoesiState::Shared, MoesiState::Shared));
    EXPECT_FALSE(
        verif::checkSwmr(MoesiState::Owned, MoesiState::Shared));
    EXPECT_TRUE(
        verif::checkSwmr(MoesiState::Modified, MoesiState::Shared));
    EXPECT_TRUE(
        verif::checkSwmr(MoesiState::Exclusive, MoesiState::Exclusive));
}

TEST(Invariants, DirCoverageAllowsSilentUpgrade)
{
    EXPECT_FALSE(verif::checkDirCoverage(MoesiState::Modified,
                                         MoesiState::Exclusive));
    EXPECT_TRUE(verif::checkDirCoverage(MoesiState::Modified,
                                        MoesiState::Shared));
    EXPECT_TRUE(verif::checkDirCoverage(MoesiState::Modified,
                                        MoesiState::Invalid));
}

// ---------------------------------------------------------------------
// Exhaustive exploration of the shipped protocol.
// ---------------------------------------------------------------------

bool
anyMentions(const std::vector<verif::Violation> &vs, const char *what)
{
    for (const verif::Violation &v : vs) {
        if (v.what.find(what) != std::string::npos)
            return true;
    }
    return false;
}

TEST(ModelChecker, CachedOrderedProtocolIsClean)
{
    verif::Options opt;
    const verif::Report rep = verif::explore(opt);
    EXPECT_TRUE(rep.clean()) << rep.toString();
    // The single-line 2-agent space is small but non-trivial.
    EXPECT_GT(rep.states, 50u);
    EXPECT_LT(rep.states, 100000u);
    EXPECT_GT(rep.transitions, rep.states);
    // All intended stable sharing patterns are reachable.
    for (const char *triple :
         {"I/S/S", "I/E/E", "I/E/M", "I/M/M", "S/S/S", "O/S/S",
          "M/I/I", "I/I/I"}) {
        EXPECT_NE(std::find(rep.stableReached.begin(),
                            rep.stableReached.end(), triple),
                  rep.stableReached.end())
            << "stable state " << triple << " unreachable";
    }
}

TEST(ModelChecker, UncachedProtocolIsClean)
{
    verif::Options opt;
    opt.uncachedRemote = true;
    const verif::Report rep = verif::explore(opt);
    EXPECT_TRUE(rep.clean()) << rep.toString();
    // Uncached remotes never hold the line.
    for (const std::string &t : rep.stableReached)
        EXPECT_EQ(t.substr(t.size() - 3), "I/I") << t;
}

TEST(ModelChecker, UnorderedDeliveryExposesUpgradeSnoopRace)
{
    // The protocol relies on the AddressHash link policy's per-line
    // FIFO delivery. Under a reordering policy a snoop can overtake
    // an upgrade grant and the directory loses the writer. The model
    // documents this dependency; see DESIGN.md (Verification).
    verif::Options opt;
    opt.orderedDelivery = false;
    const verif::Report rep = verif::explore(opt);
    EXPECT_FALSE(rep.clean());
    EXPECT_TRUE(anyMentions(rep.violations,
                            "directory lost track"));
}

TEST(ModelChecker, EverySeededMutationIsDetected)
{
    for (const char *protocol : {"moesi", "mesi", "dragon"}) {
        for (verif::Mutation m : verif::allMutations) {
            if (!verif::mutationApplies(m, protocol))
                continue;
            verif::Options opt;
            opt.protocol = protocol;
            opt.mutation = m;
            const verif::Report rep = verif::explore(opt);
            EXPECT_FALSE(rep.clean())
                << "mutation " << verif::toString(m)
                << " went undetected on " << protocol;
        }
    }
}

TEST(ModelChecker, EveryMutationAppliesSomewhere)
{
    for (verif::Mutation m : verif::allMutations) {
        bool applies = false;
        for (const char *p : {"moesi", "mesi", "dragon"})
            applies = applies || verif::mutationApplies(m, p);
        EXPECT_TRUE(applies) << verif::toString(m);
    }
}

TEST(ModelChecker, MutationsAreCaughtByTheRightInvariant)
{
    auto run = [](verif::Mutation m) {
        verif::Options opt;
        opt.mutation = m;
        return verif::explore(opt);
    };
    // Granting E while the home keeps its copy breaks SWMR.
    EXPECT_TRUE(anyMentions(
        run(verif::Mutation::GrantExclusiveToSharer).violations,
        "SWMR"));
    // A dirty eviction without data is a silent drop.
    EXPECT_TRUE(anyMentions(
        run(verif::Mutation::SkipWritebackOnEvict).violations,
        "dropped without a writeback"));
    // Keeping the home copy across an upgrade breaks SWMR.
    EXPECT_TRUE(anyMentions(
        run(verif::Mutation::UpgradeKeepsHomeCopy).violations,
        "SWMR"));
    // Ignoring a SINV leaves a writer the directory cannot see.
    EXPECT_TRUE(anyMentions(
        run(verif::Mutation::DropSnoopInvalidation).violations,
        "directory lost track"));
    // Swallowing RWBD wedges the writeback: quiescence unreachable.
    // (Dirty copies can still drain via the snoop path, so this is a
    // pure liveness bug, not a dirty trap.)
    const verif::Report wb = run(verif::Mutation::DropWritebackAck);
    EXPECT_FALSE(wb.livenessViolations.empty());
}

// ---------------------------------------------------------------------
// Reductions, multi-line product states, and parallel search.
// ---------------------------------------------------------------------

/** All violation messages of a report, order-normalized. */
std::vector<std::string>
sortedWhats(const verif::Report &rep)
{
    std::vector<std::string> whats;
    for (const auto *vs :
         {&rep.violations, &rep.deadlocks, &rep.livenessViolations,
          &rep.dirtyTraps}) {
        for (const verif::Violation &v : *vs)
            whats.push_back(v.what);
    }
    std::sort(whats.begin(), whats.end());
    return whats;
}

TEST(ModelChecker, AllProtocolsCleanAtTwoLines)
{
    for (const char *protocol : {"moesi", "mesi", "dragon"}) {
        verif::Options opt;
        opt.protocol = protocol;
        opt.lines = 2;
        opt.symmetry = true;
        opt.por = true;
        const verif::Report rep = verif::explore(opt);
        EXPECT_TRUE(rep.clean())
            << protocol << ":\n" << rep.toString();
        EXPECT_GT(rep.states, 1000u) << protocol;
    }
}

TEST(ModelChecker, ReductionsPreserveViolationSets)
{
    // Soundness: symmetry + POR must report exactly the same set of
    // violation messages as the unreduced search — on the clean
    // protocol AND under every applicable seeded bug.
    for (const char *protocol : {"moesi", "mesi", "dragon"}) {
        std::vector<verif::Mutation> muts{verif::Mutation::None};
        for (verif::Mutation m : verif::allMutations) {
            if (verif::mutationApplies(m, protocol))
                muts.push_back(m);
        }
        for (verif::Mutation m : muts) {
            verif::Options opt;
            opt.protocol = protocol;
            opt.mutation = m;
            opt.por = true; // single line: symmetry is the identity
            const verif::Report red = verif::explore(opt);
            opt.por = false;
            const verif::Report full = verif::explore(opt);
            EXPECT_EQ(sortedWhats(red), sortedWhats(full))
                << protocol << " +" << verif::toString(m);
            EXPECT_LE(red.states, full.states)
                << protocol << " +" << verif::toString(m);
        }
    }
}

TEST(ModelChecker, ReductionsShrinkTheTwoLineSpace)
{
    for (verif::Mutation m :
         {verif::Mutation::None, verif::Mutation::DropWritebackAck}) {
        verif::Options opt;
        opt.lines = 2;
        opt.mutation = m;
        opt.symmetry = true;
        opt.por = true;
        const verif::Report red = verif::explore(opt);
        opt.symmetry = false;
        opt.por = false;
        const verif::Report full = verif::explore(opt);
        // The drop must be measurable (we see ~50%), and sound.
        EXPECT_LT(red.states, (full.states * 3) / 4)
            << verif::toString(m);
        EXPECT_EQ(sortedWhats(red), sortedWhats(full))
            << verif::toString(m);
    }
}

TEST(ModelChecker, BfsWitnessIsShortest)
{
    // Level-order search ⇒ the first counterexample reported is of
    // minimal length. This mutation's bug is reachable in 3 steps
    // (read-miss, deliver RLDD, deliver the bogus E grant).
    verif::Options opt;
    opt.mutation = verif::Mutation::GrantExclusiveToSharer;
    const verif::Report rep = verif::explore(opt);
    ASSERT_FALSE(rep.violations.empty());
    EXPECT_EQ(rep.violations.front().trace.size(), 3u);
    for (const verif::Violation &v : rep.violations)
        EXPECT_GE(v.trace.size(), rep.violations.front().trace.size());
}

TEST(ModelChecker, ParallelSearchIsDeterministic)
{
    for (verif::Mutation m :
         {verif::Mutation::None, verif::Mutation::DropWritebackAck}) {
        verif::Options opt;
        opt.lines = 2;
        opt.mutation = m;
        opt.symmetry = true;
        opt.por = true;
        opt.threads = 1;
        const verif::Report one = verif::explore(opt);
        opt.threads = 4;
        const verif::Report four = verif::explore(opt);
        // Byte-identical reports, not just equal counts.
        EXPECT_EQ(one.toString(), four.toString())
            << verif::toString(m);
        EXPECT_EQ(one.states, four.states);
        EXPECT_EQ(one.transitions, four.transitions);
    }
}

// ---------------------------------------------------------------------
// Runtime monitor over the full machine.
// ---------------------------------------------------------------------

class MonitorTest : public ::testing::Test
{
  protected:
    MonitorTest() { rebuild("moesi"); }

    /** Build a fresh machine running @p protocol. */
    void
    rebuild(const std::string &protocol)
    {
        EnzianMachine::Config cfg = platform::enzianDefaultConfig();
        cfg.cpu_dram_bytes = 64ull << 20;
        cfg.fpga_dram_bytes = 64ull << 20;
        cfg.protocol = protocol;
        m = std::make_unique<EnzianMachine>(cfg);
    }

    void
    runUntilDone(const bool &flag)
    {
        for (int i = 0; i < 100000 && !flag; ++i) {
            if (!m->eventq().runOne())
                break;
        }
        ASSERT_TRUE(flag) << "operation never completed";
    }

    verif::InvariantMonitor::Hooks
    hooks()
    {
        verif::InvariantMonitor::Hooks h;
        h.cpuCache = &m->l2();
        h.cpuHome = &m->cpuHome();
        h.fpgaHome = &m->fpgaHome();
        h.map = &m->map();
        return h;
    }

    /** Exercise fills, upgrades, snoops, and writebacks on one line. */
    void
    workload()
    {
        const Addr line = AddressMap::fpgaDramBase + 0x4000;
        std::uint8_t buf[cache::lineSize] = {};
        bool done = false;
        m->cpuRemote().readLine(line, buf, [&](Tick) { done = true; });
        runUntilDone(done);

        std::memset(buf, 0x5a, sizeof(buf));
        done = false;
        m->cpuRemote().writeLine(line, buf, [&](Tick) { done = true; });
        runUntilDone(done);

        done = false; // SFWD: home reads back the dirty remote copy
        m->fpgaHome().localRead(line, buf, [&](Tick) { done = true; });
        runUntilDone(done);

        done = false; // RUPG from Shared
        m->cpuRemote().writeLine(line, buf, [&](Tick) { done = true; });
        runUntilDone(done);

        done = false; // SINV: home overwrites the line
        std::memset(buf, 0xa5, sizeof(buf));
        m->fpgaHome().localWrite(line, buf, [&](Tick) { done = true; });
        runUntilDone(done);

        const Addr line2 = AddressMap::fpgaDramBase + 0x4080;
        done = false; // second line stays clean: flush emits REVC
        m->cpuRemote().readLine(line2, buf, [&](Tick) { done = true; });
        runUntilDone(done);

        done = false; // drain everything left in the L2
        m->cpuRemote().flushAll([&](Tick) { done = true; });
        runUntilDone(done);

        // flushAll completes when the dirty data is durable; clean
        // eviction notices may still be in flight. Drain them.
        while (m->eventq().runOne()) {
        }
    }

    std::unique_ptr<EnzianMachine> m;
};

TEST_F(MonitorTest, LiveMonitorCleanOnProtocolWorkload)
{
    verif::InvariantMonitor mon(hooks());
    mon.attach(m->fabric());
    workload();
    mon.checkAllLines();
    mon.finalize();
    EXPECT_GT(mon.observed(), 10u);
    EXPECT_TRUE(mon.clean())
        << "first violation: " << mon.violations().front();
}

TEST_F(MonitorTest, EveryProtocolRunsCleanOnTheLiveMachine)
{
    // The same timed engines execute whichever table the machine is
    // configured with; the monitor's invariants are table-agnostic.
    for (const char *protocol : {"moesi", "mesi", "dragon"}) {
        rebuild(protocol);
        verif::InvariantMonitor mon(hooks());
        mon.attach(m->fabric());
        workload();
        mon.checkAllLines();
        mon.finalize();
        EXPECT_GT(mon.observed(), 10u) << protocol;
        EXPECT_TRUE(mon.clean())
            << protocol
            << " first violation: " << mon.violations().front();
    }
}

TEST_F(MonitorTest, MonitorAndTraceChainOnOneFabric)
{
    // Regression: the fabric used to have a single tap slot, so
    // attaching a capture disconnected the invariant monitor. Both
    // must observe the complete message stream.
    verif::InvariantMonitor mon(hooks());
    trace::EciTrace tr;
    mon.attach(m->fabric());
    tr.attach(m->fabric());
    workload();
    mon.checkAllLines();
    mon.finalize();
    EXPECT_TRUE(mon.clean())
        << "first violation: " << mon.violations().front();
    EXPECT_GT(tr.size(), 10u);
    EXPECT_EQ(mon.observed(), tr.size());
}

TEST_F(MonitorTest, CapturedTraceReplaysClean)
{
    trace::EciTrace tr;
    tr.attach(m->fabric());
    workload();
    ASSERT_GT(tr.size(), 10u);

    verif::InvariantMonitor replayer; // no hooks: pure trace judge
    replayer.replay(tr);
    replayer.finalize();
    EXPECT_TRUE(replayer.clean())
        << "first violation: " << replayer.violations().front();
    EXPECT_EQ(replayer.observed(), tr.size());
}

TEST_F(MonitorTest, ReplayFlagsCorruptedTrace)
{
    trace::EciTrace tr;
    // A response out of thin air: no request ever carried this tid.
    eci::EciMsg orphan;
    orphan.op = Opcode::PACK;
    orphan.src = mem::NodeId::Fpga;
    orphan.dst = mem::NodeId::Cpu;
    orphan.tid = 12345;
    orphan.addr = AddressMap::fpgaDramBase;
    tr.record(units::ns(1), orphan);

    verif::InvariantMonitor mon;
    mon.replay(tr);
    EXPECT_FALSE(mon.clean());
}

} // namespace
} // namespace enzian
