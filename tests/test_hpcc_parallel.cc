/**
 * @file
 * Thread-count determinism of the HPCC accelerator suite: the same
 * kernels on the parallel domain-sharded machine must produce
 * byte-identical outputs, completion ticks, and registry exports at
 * every thread count, with the remote-ingest path crossing the
 * CPU/FPGA domain boundary.
 */

#include <gtest/gtest.h>

#include <complex>
#include <sstream>
#include <vector>

#include "accel/hpcc/fft.hh"
#include "accel/hpcc/lu.hh"
#include "accel/hpcc/transpose.hh"
#include "base/rng.hh"
#include "obs/registry.hh"
#include "platform/enzian_machine.hh"
#include "platform/platform_factory.hh"

namespace enzian::accel::hpcc {
namespace {

struct HpccRun
{
    std::vector<Tick> ticks;
    std::vector<std::uint8_t> fftOut, luOut, trOut;
    std::string registryJson;

    bool operator==(const HpccRun &o) const
    {
        return ticks == o.ticks && fftOut == o.fftOut &&
               luOut == o.luOut && trOut == o.trOut &&
               registryJson == o.registryJson;
    }
};

HpccRun
hpccWorkload(std::uint32_t threads)
{
    auto cfg = platform::enzianDefaultConfig();
    cfg.cpu_dram_bytes = 64ull << 20;
    cfg.fpga_dram_bytes = 64ull << 20;
    cfg.threads = threads;
    cfg.name = "hpar";
    platform::EnzianMachine m(cfg);

    Pipeline::Config pcfg;
    pcfg.mc = &m.fpgaMem();
    pcfg.map = &m.map();
    pcfg.clock = &m.fpga().clock();
    pcfg.remote = &m.fpgaRemote();

    // FPGA-side engines live on the FPGA domain's queue.
    FftPipeline::Params fp;
    fp.n = 128;
    FftPipeline fft("hpar.fft", m.fpgaEventq(), pcfg, fp);
    LuPipeline::Params lp;
    lp.n = 64;
    lp.block = 32;
    LuPipeline lu("hpar.lu", m.fpgaEventq(), pcfg, lp);
    TransposePipeline::Params tp;
    tp.rows = 64;
    tp.cols = 64;
    tp.tile = 32;
    TransposePipeline tr("hpar.ptrans", m.fpgaEventq(), pcfg, tp);

    // Deterministic inputs: the FFT signal in host DRAM (pulled over
    // ECI, crossing the domain boundary), the matrices in FPGA DRAM.
    Rng rng(424242);
    std::vector<std::complex<float>> sig(fp.n);
    for (auto &s : sig)
        s = {static_cast<float>(rng.uniform(-1.0, 1.0)),
             static_cast<float>(rng.uniform(-1.0, 1.0))};
    std::vector<float> mat(static_cast<std::size_t>(lp.n) * lp.n);
    for (auto &v : mat)
        v = static_cast<float>(rng.uniform(-1.0, 1.0));
    std::vector<float> tmat(static_cast<std::size_t>(tp.rows) *
                            tp.cols);
    for (auto &v : tmat)
        v = static_cast<float>(rng.uniform(-1.0, 1.0));

    const Addr host = 1ull << 20;
    const Addr base = mem::AddressMap::fpgaDramBase;
    const Addr fftOut = base + (4ull << 20);
    const Addr luIn = base + (8ull << 20);
    const Addr luOut = base + (12ull << 20);
    const Addr trIn = base + (16ull << 20);
    const Addr trOut = base + (20ull << 20);
    m.cpuMem().store().write(m.map().offsetInRegion(host), sig.data(),
                             sig.size() * 8);
    m.fpgaMem().store().write(m.map().offsetInRegion(luIn),
                              mat.data(), mat.size() * 4);
    m.fpgaMem().store().write(m.map().offsetInRegion(trIn),
                              tmat.data(), tmat.size() * 4);

    HpccRun out;
    auto fftJob = fft.makeJob(host, fftOut);
    fftJob.input_remote = true;
    fft.process(0, fftJob,
                [&out](Tick t) { out.ticks.push_back(t); });
    lu.process(0, lu.makeJob(luIn, luOut),
               [&out](Tick t) { out.ticks.push_back(t); });
    tr.process(0, tr.makeJob(trIn, trOut),
               [&out](Tick t) { out.ticks.push_back(t); });
    m.run();

    out.fftOut.resize(8ull * fp.n);
    out.luOut.resize(lu.outputBytes());
    out.trOut.resize(4ull * tp.rows * tp.cols);
    m.fpgaMem().store().read(m.map().offsetInRegion(fftOut),
                             out.fftOut.data(), out.fftOut.size());
    m.fpgaMem().store().read(m.map().offsetInRegion(luOut),
                             out.luOut.data(), out.luOut.size());
    m.fpgaMem().store().read(m.map().offsetInRegion(trOut),
                             out.trOut.data(), out.trOut.size());

    std::ostringstream os;
    obs::Registry::global().exportJson(os);
    out.registryJson = os.str();
    return out;
}

TEST(HpccParallel, RegistryByteIdenticalAcrossThreadCounts)
{
    const auto r1 = hpccWorkload(1);
    const auto r4 = hpccWorkload(4);
    ASSERT_EQ(r1.ticks.size(), 3u);
    EXPECT_EQ(r1.ticks, r4.ticks);
    EXPECT_FALSE(r1.registryJson.empty());
    EXPECT_EQ(r1.fftOut, r4.fftOut);
    EXPECT_EQ(r1.luOut, r4.luOut);
    EXPECT_EQ(r1.trOut, r4.trOut);
    EXPECT_EQ(r1.registryJson, r4.registryJson);
    EXPECT_TRUE(r1 == r4);
}

TEST(HpccParallel, DomainModeMatchesLegacyMachine)
{
    const auto legacy = hpccWorkload(0);
    const auto domain = hpccWorkload(1);
    EXPECT_EQ(legacy.ticks, domain.ticks);
    EXPECT_EQ(legacy.fftOut, domain.fftOut);
    EXPECT_EQ(legacy.luOut, domain.luOut);
    EXPECT_EQ(legacy.trOut, domain.trOut);
}

} // namespace
} // namespace enzian::accel::hpcc
