/**
 * @file
 * Tests for platform composition, presets, and reference data.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>

#include "platform/boot_sequencer.hh"
#include "platform/link_models.hh"
#include "platform/platform_factory.hh"

namespace enzian::platform {
namespace {

TEST(Params, PaperConstants)
{
    EXPECT_EQ(params::cpuCores, 48u);
    EXPECT_DOUBLE_EQ(params::cpuClockHz, 2.0e9);
    EXPECT_EQ(params::eciLinks, 2u);
    EXPECT_EQ(params::eciLanesPerLink, 12u);
    EXPECT_EQ(params::eciLinks * params::eciLanesPerLink, 24u);
    EXPECT_EQ(params::tcpMtu, 2048u);
}

TEST(Params, EciLinkBandwidthNearTheoretical)
{
    // 12 lanes x 10 Gb/s = 15 GB/s raw per link x efficiency.
    const auto cfg = params::eciLinkConfig();
    const double raw = cfg.lanes * cfg.lane_gbps * 1e9 / 8.0;
    EXPECT_NEAR(raw, 15e9, 1e6);
    // Two links: 30 GB/s theoretical, as the paper states 30 GiB/s
    // "theoretical bandwidth in each direction" for the full fabric.
    EXPECT_NEAR(2 * raw / 1e9, 30.0, 0.1);
}

TEST(Machine, ConstructsAndWiresEverything)
{
    EnzianMachine::Config cfg = enzianDefaultConfig();
    cfg.cpu_dram_bytes = 16ull << 20;
    cfg.fpga_dram_bytes = 16ull << 20;
    EnzianMachine m(cfg);
    EXPECT_EQ(m.cluster().coreCount(), 48u);
    EXPECT_EQ(m.fabric().linkCount(), 2u);
    EXPECT_EQ(m.bmc().regulatorCount(), 25u);
    EXPECT_TRUE(m.fpga().eciReady());
    EXPECT_NEAR(m.fpga().clock().frequencyHz(), 300e6, 1.0);
}

TEST(Machine, BitstreamReload)
{
    EnzianMachine::Config cfg = enzianDefaultConfig();
    cfg.cpu_dram_bytes = 16ull << 20;
    cfg.fpga_dram_bytes = 16ull << 20;
    EnzianMachine m(cfg);
    m.loadBitstream("coyote-shell");
    EXPECT_NEAR(m.fpga().clock().frequencyHz(), 250e6, 1.0);
}

TEST(Factory, PcieAcceleratorPresets)
{
    for (const char *name : {"alveo-u250", "f1", "vcu118"}) {
        auto sys = makePcieAccelerator(name);
        EXPECT_NE(sys.dma, nullptr) << name;
        EXPECT_NEAR(sys.link->wireBandwidth(), 15.75e9, 0.1e9);
    }
}

TEST(FactoryDeathTest, UnknownAcceleratorFatal)
{
    EXPECT_EXIT(makePcieAccelerator("gpu"),
                ::testing::ExitedWithCode(1), "unknown");
}

TEST(Factory, TwoSocketConfigIsSymmetricAndFaster)
{
    const auto enz = enzianDefaultConfig();
    const auto two = twoSocketThunderXConfig();
    EXPECT_EQ(two.link.cpu_proc_ns, two.link.fpga_proc_ns);
    EXPECT_LT(two.link.fpga_proc_ns, enz.link.fpga_proc_ns);
    EXPECT_EQ(two.policy, eci::BalancePolicy::LeastLoaded);
}

TEST(Factory, GbdtPlatformTable)
{
    EXPECT_EQ(gbdtPlatformNames().size(), 4u);
    const auto enzian = gbdtPlatformConfig("Enzian", 1);
    const auto f1 = gbdtPlatformConfig("Amazon-F1", 1);
    EXPECT_GT(enzian.clock_hz, f1.clock_hz); // speed-grade advantage
}

TEST(LinkModels, ReferencePointsCited)
{
    const auto pts = fig3ReferencePoints();
    EXPECT_GE(pts.size(), 6u);
    for (const auto &p : pts) {
        EXPECT_TRUE(p.reference);
        EXPECT_GT(p.bandwidth_gib, 0.0);
        EXPECT_GT(p.latency_us, 0.0);
    }
}

TEST(Machine, TwoSocketLatencyBeatsEnzian)
{
    auto measure = [](const EnzianMachine::Config &base) {
        EnzianMachine::Config cfg = base;
        cfg.cpu_dram_bytes = 16ull << 20;
        cfg.fpga_dram_bytes = 16ull << 20;
        cfg.cpu_caches_remote = false;
        EnzianMachine m(cfg);
        Tick done_at = 0;
        bool done = false;
        m.cpuRemote().readLineUncached(
            mem::AddressMap::fpgaDramBase, nullptr, [&](Tick t) {
                done = true;
                done_at = t;
            });
        m.eventq().run();
        EXPECT_TRUE(done);
        return done_at;
    };
    const Tick enzian = measure(enzianDefaultConfig());
    const Tick two_socket = measure(twoSocketThunderXConfig());
    EXPECT_LT(two_socket, enzian);
    // Paper: ~150 ns for the 2-socket reference (plus DRAM); ours
    // should land within a small factor.
    EXPECT_LT(units::toNanos(two_socket), 400.0);
    EXPECT_GT(units::toNanos(enzian), 400.0);
}

} // namespace
} // namespace enzian::platform

namespace enzian::platform {
namespace {

TEST(Machine, HomeReadAllocateKeepsResidentCopy)
{
    // With home_read_allocate on, a CPU local read whose line lives
    // dirty on the FPGA pulls the data home AND installs it in the
    // L2, so the home keeps a resident Shared copy afterwards. Off
    // (the default), the L2 stays cold — reference runs unchanged.
    for (const bool knob : {false, true}) {
        EnzianMachine::Config cfg = enzianDefaultConfig();
        cfg.cpu_dram_bytes = 16ull << 20;
        cfg.fpga_dram_bytes = 16ull << 20;
        cfg.home_read_allocate = knob;
        EnzianMachine m(cfg);
        cache::Cache fpgaCache("fpga.cache", m.fpgaEventq(),
                               cache::Cache::Config{});
        m.fpgaRemote().attachCache(&fpgaCache);

        const Addr line = 0x20000; // CPU-homed
        std::uint8_t buf[cache::lineSize];
        std::memset(buf, 0x5a, sizeof(buf));
        bool done = false;
        m.fpgaRemote().writeLine(line, buf, [&](Tick) { done = true; });
        m.eventq().run();
        ASSERT_TRUE(done);
        // The exclusive grant invalidated any home copy.
        EXPECT_EQ(m.l2().probe(line), cache::MoesiState::Invalid);

        std::uint8_t out[cache::lineSize] = {};
        done = false;
        m.cpuHome().localRead(line, out, [&](Tick) { done = true; });
        m.eventq().run();
        ASSERT_TRUE(done);
        EXPECT_EQ(out[0], 0x5a);
        EXPECT_EQ(m.l2().probe(line), knob
                                          ? cache::MoesiState::Shared
                                          : cache::MoesiState::Invalid);
        if (knob) {
            std::uint8_t cached[cache::lineSize] = {};
            m.l2().readData(line, cached, cache::lineSize);
            EXPECT_EQ(cached[17], 0x5a);
        }
    }
}

TEST(Machine, StatsDumpCoversComponents)
{
    EnzianMachine::Config cfg = enzianDefaultConfig();
    cfg.cpu_dram_bytes = 16ull << 20;
    cfg.fpga_dram_bytes = 16ull << 20;
    EnzianMachine m(cfg);
    bool done = false;
    m.fpgaRemote().readLineUncached(0, nullptr,
                                    [&](Tick) { done = true; });
    m.eventq().run();
    ASSERT_TRUE(done);

    std::ostringstream os;
    m.dumpStats(os);
    const std::string s = os.str();
    for (const char *key :
         {"cpu.l2.hits", "eci.link0.messages", "cpu.home.requests",
          "fpga.remote.requests", "cpu.mem.dram.ch0.bytes",
          "bmc.i2c.transactions"}) {
        EXPECT_NE(s.find(key), std::string::npos) << key;
    }
    // The read really shows up in the counters.
    EXPECT_NE(s.find("cpu.home.requests_served 1"), std::string::npos);
}

} // namespace
} // namespace enzian::platform
