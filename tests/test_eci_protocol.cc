/**
 * @file
 * Integration tests for the ECI coherence protocol over the full
 * machine: cached/uncached transfers, snoops, upgrades, writebacks,
 * evictions, I/O, and IPIs.
 */

#include <gtest/gtest.h>

#include "platform/enzian_machine.hh"
#include "platform/platform_factory.hh"
#include "trace/checker.hh"

namespace enzian {
namespace {

using eci::RemoteAgent;
using mem::AddressMap;
using platform::EnzianMachine;

class EciProtocolTest : public ::testing::Test
{
  protected:
    EciProtocolTest()
    {
        EnzianMachine::Config cfg = platform::enzianDefaultConfig();
        cfg.cpu_dram_bytes = 64ull << 20;
        cfg.fpga_dram_bytes = 64ull << 20;
        m = std::make_unique<EnzianMachine>(cfg);
    }

    /** Run the queue until @p flag is set (or fail). */
    void
    runUntilDone(const bool &flag)
    {
        for (int i = 0; i < 100000 && !flag; ++i) {
            if (!m->eventq().runOne())
                break;
        }
        ASSERT_TRUE(flag) << "operation never completed";
    }

    std::vector<std::uint8_t>
    pattern(std::uint8_t seed)
    {
        std::vector<std::uint8_t> d(cache::lineSize);
        for (std::size_t i = 0; i < d.size(); ++i)
            d[i] = static_cast<std::uint8_t>(seed ^ (i * 13));
        return d;
    }

    std::unique_ptr<EnzianMachine> m;
};

TEST_F(EciProtocolTest, CpuCachedReadOfFpgaMemory)
{
    const Addr line = AddressMap::fpgaDramBase + 0x1000;
    const auto data = pattern(0x42);
    m->fpgaMem().store().write(0x1000, data.data(), data.size());

    std::uint8_t out[cache::lineSize] = {};
    bool done = false;
    Tick done_at = 0;
    m->cpuRemote().readLine(line, out, [&](Tick t) {
        done = true;
        done_at = t;
    });
    runUntilDone(done);

    EXPECT_EQ(std::memcmp(out, data.data(), cache::lineSize), 0);
    // First touch, no other copies: granted Exclusive.
    EXPECT_EQ(m->l2().probe(line), cache::MoesiState::Exclusive);
    EXPECT_EQ(m->fpgaHome().remoteState(line),
              cache::MoesiState::Exclusive);
    // Remote refill latency should be in the sub-microsecond range.
    EXPECT_GT(done_at, units::ns(300));
    EXPECT_LT(done_at, units::us(3));
}

TEST_F(EciProtocolTest, SecondReadHitsInL2)
{
    const Addr line = AddressMap::fpgaDramBase + 0x2000;
    bool done = false;
    m->cpuRemote().readLine(line, nullptr, [&](Tick) { done = true; });
    runUntilDone(done);
    const auto reqs = m->cpuRemote().requestsSent();

    bool done2 = false;
    Tick t2 = 0;
    m->cpuRemote().readLine(line, nullptr, [&](Tick t) {
        done2 = true;
        t2 = t;
    });
    runUntilDone(done2);
    EXPECT_EQ(m->cpuRemote().requestsSent(), reqs); // no new request
    EXPECT_EQ(m->cpuRemote().hitsLocal(), 1u);
}

TEST_F(EciProtocolTest, CachedWriteMissObtainsExclusiveAndDirties)
{
    const Addr line = AddressMap::fpgaDramBase + 0x3000;
    const auto data = pattern(0x77);
    bool done = false;
    m->cpuRemote().writeLine(line, data.data(), [&](Tick) {
        done = true;
    });
    runUntilDone(done);
    EXPECT_EQ(m->l2().probe(line), cache::MoesiState::Modified);
    // Data is only in the L2 so far, not in FPGA DRAM.
    std::uint8_t mem_now[cache::lineSize];
    m->fpgaMem().store().read(0x3000, mem_now, cache::lineSize);
    EXPECT_NE(std::memcmp(mem_now, data.data(), cache::lineSize), 0);

    // Flushing pushes it home.
    bool flushed = false;
    m->cpuRemote().flushAll([&](Tick) { flushed = true; });
    runUntilDone(flushed);
    m->fpgaMem().store().read(0x3000, mem_now, cache::lineSize);
    EXPECT_EQ(std::memcmp(mem_now, data.data(), cache::lineSize), 0);
    EXPECT_EQ(m->l2().probe(line), cache::MoesiState::Invalid);
    EXPECT_EQ(m->fpgaHome().remoteState(line),
              cache::MoesiState::Invalid);
}

TEST_F(EciProtocolTest, FpgaUncachedReadSeesCpuDirtyData)
{
    // CPU dirties a line of its own memory in L2 (simulating a store
    // that hit): install directly in the local cache.
    const Addr line = 0x8000; // CPU-homed
    const auto dirty = pattern(0x99);
    m->l2().fill(line, cache::MoesiState::Modified, dirty.data());

    // FPGA reads the line uncached over ECI: the home agent must
    // source it from the dirty L2 copy, not stale DRAM.
    std::uint8_t out[cache::lineSize] = {};
    bool done = false;
    m->fpgaRemote().readLineUncached(line, out, [&](Tick) {
        done = true;
    });
    runUntilDone(done);
    EXPECT_EQ(std::memcmp(out, dirty.data(), cache::lineSize), 0);
}

TEST_F(EciProtocolTest, FpgaUncachedWriteInvalidatesCpuCopy)
{
    const Addr line = 0x9000;
    m->l2().fill(line, cache::MoesiState::Exclusive,
                 pattern(0x11).data());

    const auto fresh = pattern(0x22);
    bool done = false;
    m->fpgaRemote().writeLineUncached(line, fresh.data(), [&](Tick) {
        done = true;
    });
    runUntilDone(done);
    EXPECT_EQ(m->l2().probe(line), cache::MoesiState::Invalid);
    std::uint8_t mem_now[cache::lineSize];
    m->cpuMem().store().read(line, mem_now, cache::lineSize);
    EXPECT_EQ(std::memcmp(mem_now, fresh.data(), cache::lineSize), 0);
}

TEST_F(EciProtocolTest, SharedThenUpgrade)
{
    const Addr line = AddressMap::fpgaDramBase + 0x4000;
    // Give the FPGA node a local cache holding the line Shared, so
    // the CPU's RLDD is granted Shared rather than Exclusive.
    cache::Cache::Config fc;
    fc.size_bytes = 64 * 1024;
    fc.ways = 4;
    cache::Cache fpga_cache("fpga.l1", m->eventq(), fc);
    fpga_cache.fill(line, cache::MoesiState::Shared,
                    pattern(0x44).data());
    m->fpgaHome().attachLocalCache(&fpga_cache);

    bool done = false;
    m->cpuRemote().readLine(line, nullptr, [&](Tick) { done = true; });
    runUntilDone(done);
    ASSERT_EQ(m->l2().probe(line), cache::MoesiState::Shared);

    const auto data = pattern(0x55);
    bool wrote = false;
    const auto reqs_before = m->cpuRemote().requestsSent();
    m->cpuRemote().writeLine(line, data.data(), [&](Tick) {
        wrote = true;
    });
    runUntilDone(wrote);
    EXPECT_EQ(m->l2().probe(line), cache::MoesiState::Modified);
    EXPECT_EQ(m->fpgaHome().remoteState(line),
              cache::MoesiState::Modified);
    EXPECT_EQ(m->cpuRemote().requestsSent(), reqs_before + 1); // RUPG
}

TEST_F(EciProtocolTest, HomeLocalReadSnoopsRemoteModified)
{
    // CPU writes (cached) a FPGA-homed line -> L2 holds it Modified.
    const Addr line = AddressMap::fpgaDramBase + 0x5000;
    const auto data = pattern(0x66);
    bool wrote = false;
    m->cpuRemote().writeLine(line, data.data(), [&](Tick) {
        wrote = true;
    });
    runUntilDone(wrote);

    // The FPGA node itself now reads its own homed line: the home
    // agent must SFWD-snoop the CPU's L2 and get the dirty data.
    std::uint8_t out[cache::lineSize] = {};
    bool read_done = false;
    m->fpgaHome().localRead(line, out, [&](Tick) { read_done = true; });
    runUntilDone(read_done);
    EXPECT_EQ(std::memcmp(out, data.data(), cache::lineSize), 0);
    // After the forward, the CPU keeps a Shared copy.
    EXPECT_EQ(m->l2().probe(line), cache::MoesiState::Shared);
    EXPECT_EQ(m->fpgaHome().remoteState(line),
              cache::MoesiState::Shared);
    EXPECT_EQ(m->fpgaHome().snoopsSent(), 1u);
}

TEST_F(EciProtocolTest, HomeLocalWriteInvalidatesRemote)
{
    const Addr line = AddressMap::fpgaDramBase + 0x6000;
    bool read_done = false;
    m->cpuRemote().readLine(line, nullptr, [&](Tick) {
        read_done = true;
    });
    runUntilDone(read_done);
    ASSERT_NE(m->l2().probe(line), cache::MoesiState::Invalid);

    const auto data = pattern(0xAB);
    bool wrote = false;
    m->fpgaHome().localWrite(line, data.data(), [&](Tick) {
        wrote = true;
    });
    runUntilDone(wrote);
    EXPECT_EQ(m->l2().probe(line), cache::MoesiState::Invalid);
    std::uint8_t mem_now[cache::lineSize];
    m->fpgaMem().store().read(0x6000, mem_now, cache::lineSize);
    EXPECT_EQ(std::memcmp(mem_now, data.data(), cache::lineSize), 0);
}

TEST_F(EciProtocolTest, EvictionWritesBackDirtyVictim)
{
    // Fill one L2 set past associativity with dirty lines; victims
    // must land in FPGA memory.
    const Addr stride =
        static_cast<Addr>(m->l2().sets()) * cache::lineSize;
    const std::uint32_t n = m->l2().ways() + 2;
    std::uint32_t completed = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
        const Addr line = AddressMap::fpgaDramBase + 0x7000 +
                          static_cast<Addr>(i) * stride;
        auto data = pattern(static_cast<std::uint8_t>(i));
        bool done = false;
        m->cpuRemote().writeLine(line, data.data(), [&](Tick) {
            done = true;
            ++completed;
        });
        runUntilDone(done);
    }
    m->eventq().run();
    EXPECT_EQ(completed, n);
    // At least two victims were written back; verify the first one.
    std::uint8_t mem_now[cache::lineSize];
    m->fpgaMem().store().read(0x7000, mem_now, cache::lineSize);
    EXPECT_EQ(std::memcmp(mem_now, pattern(0).data(), cache::lineSize),
              0);
    EXPECT_EQ(m->l2().probe(AddressMap::fpgaDramBase + 0x7000),
              cache::MoesiState::Invalid);
}

TEST_F(EciProtocolTest, IoReadWriteRoundTrip)
{
    // Map a toy device in the FPGA I/O window.
    std::uint64_t reg = 0x1111;
    eci::IoDevice dev;
    dev.read = [&](Addr, std::uint32_t) { return reg; };
    dev.write = [&](Addr, std::uint64_t v, std::uint32_t) { reg = v; };
    m->fpgaIo().map("toy", 0x100, 0x10, dev);

    bool wrote = false;
    m->cpuRemote().ioWrite(0x100, 0xabcd, 8, [&](Tick) {
        wrote = true;
    });
    runUntilDone(wrote);
    EXPECT_EQ(reg, 0xabcdu);

    bool read_done = false;
    std::uint64_t got = 0;
    m->cpuRemote().ioRead(0x100, 8, [&](Tick, std::uint64_t v) {
        read_done = true;
        got = v;
    });
    runUntilDone(read_done);
    EXPECT_EQ(got, 0xabcdu);
}

TEST_F(EciProtocolTest, IpiDelivery)
{
    std::uint32_t vec = 0;
    bool fired = false;
    m->fpgaHome().setIpiHandler([&](std::uint32_t v) {
        vec = v;
        fired = true;
    });
    m->cpuRemote().sendIpi(42);
    runUntilDone(fired);
    EXPECT_EQ(vec, 42u);
}

TEST_F(EciProtocolTest, MshrLimitQueuesExcessRequests)
{
    const std::uint32_t limit =
        m->config().remote_agent.max_outstanding;
    std::uint32_t completed = 0;
    const std::uint32_t n = limit * 3;
    for (std::uint32_t i = 0; i < n; ++i) {
        m->fpgaRemote().readLineUncached(
            0x10000 + static_cast<Addr>(i) * cache::lineSize, nullptr,
            [&](Tick) { ++completed; });
        EXPECT_LE(m->fpgaRemote().outstanding(), limit);
    }
    m->eventq().run();
    EXPECT_EQ(completed, n);
}

TEST_F(EciProtocolTest, ConcurrentMixedTrafficCompletes)
{
    std::uint32_t completed = 0;
    const std::uint32_t n = 200;
    for (std::uint32_t i = 0; i < n; ++i) {
        const Addr cpu_line =
            0x20000 + static_cast<Addr>(i) * cache::lineSize;
        const Addr fpga_line = AddressMap::fpgaDramBase + 0x20000 +
                               static_cast<Addr>(i) * cache::lineSize;
        auto data = pattern(static_cast<std::uint8_t>(i));
        m->fpgaRemote().writeLineUncached(cpu_line, data.data(),
                                          [&](Tick) { ++completed; });
        m->cpuRemote().readLine(fpga_line, nullptr,
                                [&](Tick) { ++completed; });
    }
    m->eventq().run();
    EXPECT_EQ(completed, 2 * n);
    // Functional check on one of the writes.
    std::uint8_t mem_now[cache::lineSize];
    m->cpuMem().store().read(0x20000, mem_now, cache::lineSize);
    EXPECT_EQ(std::memcmp(mem_now, pattern(0).data(), cache::lineSize),
              0);
}

TEST_F(EciProtocolTest, UncachedReadDoesNotAllocateDirectory)
{
    const Addr line = 0x30000;
    bool done = false;
    m->fpgaRemote().readLineUncached(line, nullptr, [&](Tick) {
        done = true;
    });
    runUntilDone(done);
    EXPECT_EQ(m->cpuHome().remoteState(line),
              cache::MoesiState::Invalid);
}

} // namespace
} // namespace enzian

namespace enzian {
namespace {

TEST(EvictionOrdering, RefillNeverOvertakesEvictionOnReorderingLinks)
{
    // Regression for a fuzz-found race: with a tiny L2 and a
    // round-robin (reordering) link policy, a line is evicted and
    // immediately re-fetched in a tight loop. Tracked evictions must
    // keep the refill ordered behind the eviction so data is never
    // lost or stale.
    platform::EnzianMachine::Config cfg =
        platform::enzianDefaultConfig();
    cfg.cpu_dram_bytes = 64ull << 20;
    cfg.fpga_dram_bytes = 64ull << 20;
    cfg.policy = eci::BalancePolicy::RoundRobin;
    platform::EnzianMachine m(cfg);

    trace::EciTrace tr;
    tr.attach(m.fabric());

    // Thrash one L2 set: stride by sets*lineSize, more lines than
    // ways, alternating writes (dirty evictions) and reads (clean).
    const Addr stride =
        static_cast<Addr>(m.l2().sets()) * cache::lineSize;
    const std::uint32_t lines = m.l2().ways() * 3;
    std::uint32_t completed = 0;
    Rng rng(5);
    for (int round = 0; round < 6; ++round) {
        for (std::uint32_t i = 0; i < lines; ++i) {
            const Addr line = mem::AddressMap::fpgaDramBase +
                              static_cast<Addr>(i) * stride;
            if (rng.chance(0.5)) {
                std::vector<std::uint8_t> d(
                    cache::lineSize,
                    static_cast<std::uint8_t>(i + round));
                m.cpuRemote().writeLine(line, d.data(),
                                        [&](Tick) { ++completed; });
            } else {
                m.cpuRemote().readLine(line, nullptr,
                                       [&](Tick) { ++completed; });
            }
        }
        m.eventq().run();
    }
    EXPECT_EQ(completed, 6u * lines);

    bool flushed = false;
    m.cpuRemote().flushAll([&](Tick) { flushed = true; });
    m.eventq().run();
    ASSERT_TRUE(flushed);

    trace::ProtocolChecker checker;
    checker.check(tr);
    checker.finalize();
    EXPECT_TRUE(checker.clean())
        << (checker.violations().empty() ? ""
                                         : checker.violations()[0]);
}

} // namespace
} // namespace enzian
