/**
 * @file
 * Tests for the Ethernet/switch substrate and the two TCP stack
 * models (FPGA single-pipeline stack vs Linux host stack).
 */

#include <gtest/gtest.h>

#include "net/switch.hh"
#include "net/tcp_stack.hh"
#include "platform/params.hh"

namespace enzian::net {
namespace {

Switch::Config
switchConfig()
{
    Switch::Config cfg;
    cfg.port = platform::params::eth100Config();
    return cfg;
}

TEST(EthernetLink, EffectiveBandwidthBelowLineRate)
{
    EventQueue eq;
    EthernetLink link("e", eq, platform::params::eth100Config());
    EXPECT_NEAR(link.lineRate(), 12.5e9, 1e6);
    EXPECT_LT(link.effectiveBandwidth(), link.lineRate());
}

TEST(EthernetLink, DeliversPayloadAndTag)
{
    EventQueue eq;
    EthernetLink link("e", eq, platform::params::eth100Config());
    std::uint64_t got_payload = 0, got_tag = 0;
    link.setReceiver(1, [&](Tick, std::uint64_t p, std::uint64_t t) {
        got_payload = p;
        got_tag = t;
    });
    link.send(0, 5000, 0x1234);
    eq.run();
    EXPECT_EQ(got_payload, 5000u);
    EXPECT_EQ(got_tag, 0x1234u);
}

TEST(EthernetLink, FrameOverheadShowsInTiming)
{
    EventQueue eq;
    auto cfg = platform::params::eth100Config();
    EthernetLink link("e", eq, cfg);
    link.setReceiver(1, [](Tick, std::uint64_t, std::uint64_t) {});
    const Tick one = link.send(0, cfg.mtu, 0);
    // Same payload as many minimum fragments costs more wire time.
    EventQueue eq2;
    EthernetLink link2("e2", eq2, cfg);
    link2.setReceiver(1, [](Tick, std::uint64_t, std::uint64_t) {});
    Tick many = 0;
    for (std::uint32_t i = 0; i < cfg.mtu / 64; ++i)
        many = link2.send(0, 64, 0);
    EXPECT_GT(many, one);
}

TEST(Switch, RoutesByTag)
{
    EventQueue eq;
    Switch sw("sw", eq, 3, switchConfig());
    std::uint64_t got_at_2 = 0;
    sw.setEndpoint(1, [](Tick, std::uint64_t, std::uint64_t) {});
    sw.setEndpoint(2, [&](Tick, std::uint64_t p, std::uint64_t) {
        got_at_2 = p;
    });
    sw.sendFrom(0, 999, Switch::makeTag(2, 7));
    eq.run();
    EXPECT_EQ(got_at_2, 999u);
}

TEST(Switch, TagCodec)
{
    const auto tag = Switch::makeTag(5, 0x00dead00beefull);
    EXPECT_EQ(Switch::dstOf(tag), 5u);
    EXPECT_EQ(Switch::userOf(tag), 0x00dead00beefull);
}

class TcpFixture : public ::testing::Test
{
  protected:
    TcpFixture() : sw("sw", eq, 2, switchConfig()) {}

    /** Make a connected pair with the given configs. */
    std::uint32_t
    makePair(const TcpStack::Config &a, const TcpStack::Config &b)
    {
        alice = std::make_unique<TcpStack>("alice", eq, sw, a);
        bob = std::make_unique<TcpStack>("bob", eq, sw, b);
        return alice->connect(*bob);
    }

    /** Stream @p bytes on @p flows parallel flows; return Gb/s. */
    double
    measureGbps(std::uint64_t bytes, std::uint32_t flows)
    {
        std::vector<std::uint32_t> ids;
        for (std::uint32_t i = 0; i < flows; ++i)
            ids.push_back(alice->connect(*bob));
        const Tick start = eq.now();
        Tick last = 0;
        std::uint32_t done = 0;
        for (auto id : ids) {
            alice->send(id, bytes / flows, [&](Tick t) {
                ++done;
                last = std::max(last, t);
            });
        }
        eq.run();
        EXPECT_EQ(done, flows);
        return units::toGbps(static_cast<double>(bytes) /
                             units::toSeconds(last - start));
    }

    EventQueue eq;
    Switch sw;
    std::unique_ptr<TcpStack> alice, bob;
};

TEST_F(TcpFixture, DeliversAllBytesInOrder)
{
    const auto id = makePair(fpgaTcpConfig(0, 250e6),
                             fpgaTcpConfig(1, 250e6));
    bool done = false;
    alice->send(id, 1 << 20, [&](Tick) { done = true; });
    eq.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(bob->bytesReceived(id), 1u << 20);
}

TEST_F(TcpFixture, EmptySendCompletes)
{
    const auto id = makePair(fpgaTcpConfig(0, 250e6),
                             fpgaTcpConfig(1, 250e6));
    bool done = false;
    alice->send(id, 0, [&](Tick) { done = true; });
    eq.run();
    EXPECT_TRUE(done);
}

TEST_F(TcpFixture, FpgaStackSaturates100GWithOneFlow)
{
    makePair(fpgaTcpConfig(0, 250e6), fpgaTcpConfig(1, 250e6));
    const double gbps = measureGbps(64ull << 20, 1);
    EXPECT_GT(gbps, 90.0); // paper: saturates with MTU 2 KiB, 1 flow
}

TEST_F(TcpFixture, HostStackSingleFlowCapsWellBelowLineRate)
{
    makePair(hostTcpConfig(0), hostTcpConfig(1));
    const double gbps = measureGbps(64ull << 20, 1);
    EXPECT_LT(gbps, 45.0);
    EXPECT_GT(gbps, 15.0);
}

TEST_F(TcpFixture, HostStackFourFlowsSaturate)
{
    makePair(hostTcpConfig(0), hostTcpConfig(1));
    const double gbps = measureGbps(64ull << 20, 4);
    EXPECT_GT(gbps, 85.0); // paper: 4 flows needed to saturate
}

TEST_F(TcpFixture, FpgaStackThroughputIndependentOfFlows)
{
    makePair(fpgaTcpConfig(0, 250e6), fpgaTcpConfig(1, 250e6));
    const double one = measureGbps(32ull << 20, 1);
    const double four = measureGbps(32ull << 20, 4);
    EXPECT_NEAR(one, four, one * 0.1);
}

TEST_F(TcpFixture, PingPongLatencyOrdering)
{
    // Half-round-trip latency of a small transfer: FPGA stack should
    // be several times lower than the Linux stack.
    auto ping = [&](const TcpStack::Config &ca,
                    const TcpStack::Config &cb) {
        EventQueue q;
        Switch s("s", q, 2, switchConfig());
        TcpStack a("a", q, s, ca), b("b", q, s, cb);
        const auto id = a.connect(b);
        const std::uint64_t size = 2048;
        Tick end = 0;
        b.setReceiveCallback([&](std::uint32_t f, std::uint64_t) {
            if (b.bytesReceived(f) >= size)
                b.send(f, size, [](Tick) {});
        });
        a.setReceiveCallback([&](std::uint32_t f, std::uint64_t) {
            if (a.bytesReceived(f) >= size && end == 0)
                end = q.now();
        });
        a.send(id, size, [](Tick) {});
        q.run();
        EXPECT_GT(end, 0u);
        return units::toMicros(end) / 2.0;
    };
    const double fpga_us =
        ping(fpgaTcpConfig(0, 250e6), fpgaTcpConfig(1, 250e6));
    const double host_us = ping(hostTcpConfig(0), hostTcpConfig(1));
    EXPECT_LT(fpga_us, 10.0);
    EXPECT_GT(host_us, 2.0 * fpga_us);
}

TEST_F(TcpFixture, WindowLimitsInflight)
{
    TcpStack::Config cfg = fpgaTcpConfig(0, 250e6);
    cfg.window_bytes = 4096;
    const auto id = makePair(cfg, fpgaTcpConfig(1, 250e6));
    bool done = false;
    alice->send(id, 1 << 20, [&](Tick) { done = true; });
    eq.run();
    EXPECT_TRUE(done); // still completes, just ack-clocked
    EXPECT_EQ(bob->bytesReceived(id), 1u << 20);
}

} // namespace
} // namespace enzian::net
