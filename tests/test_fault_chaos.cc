/**
 * @file
 * Chaos soak: randomized seeded fault schedules against a small
 * EnzianMachine with the coherence invariant monitor attached. Every
 * seed must finish with zero invariant violations, every acked write
 * readable, and all side traffic delivered — i.e. every recoverable
 * fault actually recovered.
 *
 * A companion determinism regression runs the same plan + seed twice
 * and requires bit-identical observability output; heavier schedules
 * live in test_fault_soak.cc under the `soak` ctest label.
 */

#include <gtest/gtest.h>

#include "fault/chaos_scenario.hh"
#include "fault/fault_plan.hh"

namespace enzian::fault {
namespace {

/** One small-footprint chaos run; returns the result for asserts. */
ChaosResult
runSeed(std::uint64_t seed)
{
    const FaultPlan plan = FaultPlan::random(seed);
    ChaosConfig cfg;
    cfg.seed = seed;
    cfg.ops = 60;
    cfg.lines = 8;
    cfg.with_net = true;
    cfg.with_rdma = true;
    cfg.with_bmc = false;
    return runChaos(plan, cfg);
}

TEST(FaultChaos, HundredRandomSchedulesSurvive)
{
    std::uint64_t total_injected = 0;
    for (std::uint64_t seed = 1; seed <= 100; ++seed) {
        const ChaosResult r = runSeed(seed);
        ASSERT_TRUE(r.ok)
            << "seed " << seed << ": " << r.violations.front()
            << "\nplan:\n"
            << FaultPlan::random(seed).toString() << "\n"
            << r.report;
        EXPECT_EQ(r.opsCompleted, r.opsIssued) << "seed " << seed;
        total_injected += r.faultsInjected;
    }
    // The taxonomy must actually fire across the sweep.
    EXPECT_GT(total_injected, 100u);
}

TEST(FaultChaos, EveryProtocolSurvivesFaultSchedules)
{
    // The recovery paths must hold for whichever coherence table the
    // machine runs, not just the default MOESI.
    for (const char *protocol : {"moesi", "mesi", "dragon"}) {
        for (std::uint64_t seed : {3ull, 11ull, 29ull}) {
            const FaultPlan plan = FaultPlan::random(seed);
            ChaosConfig cfg;
            cfg.seed = seed;
            cfg.ops = 60;
            cfg.lines = 8;
            cfg.protocol = protocol;
            const ChaosResult r = runChaos(plan, cfg);
            ASSERT_TRUE(r.ok)
                << protocol << " seed " << seed << ": "
                << r.violations.front() << "\nplan:\n"
                << plan.toString() << "\n"
                << r.report;
            EXPECT_EQ(r.opsCompleted, r.opsIssued)
                << protocol << " seed " << seed;
        }
    }
}

TEST(FaultChaos, SamePlanAndSeedIsBitIdentical)
{
    const FaultPlan plan = FaultPlan::random(17);
    ChaosConfig cfg;
    cfg.seed = 17;
    cfg.ops = 80;
    cfg.lines = 8;
    const ChaosResult a = runChaos(plan, cfg);
    const ChaosResult b = runChaos(plan, cfg);
    ASSERT_TRUE(a.ok) << a.violations.front();
    ASSERT_TRUE(b.ok) << b.violations.front();
    EXPECT_EQ(a.faultsInjected, b.faultsInjected);
    EXPECT_EQ(a.opsIssued, b.opsIssued);
    EXPECT_EQ(a.report, b.report);
    // The full stats registry — every counter, accumulator and
    // histogram in the machine — must match byte-for-byte.
    ASSERT_FALSE(a.registryJson.empty());
    EXPECT_EQ(a.registryJson, b.registryJson);
}

TEST(FaultChaos, FaultFreePlanIsQuietAndClean)
{
    FaultPlan plan;
    plan.seed = 23;
    ChaosConfig cfg;
    cfg.seed = 23;
    cfg.ops = 80;
    cfg.lines = 8;
    const ChaosResult r = runChaos(plan, cfg);
    ASSERT_TRUE(r.ok) << r.violations.front();
    EXPECT_EQ(r.faultsInjected, 0u);
    // And fault-free runs are deterministic too.
    const ChaosResult r2 = runChaos(plan, cfg);
    EXPECT_EQ(r.registryJson, r2.registryJson);
}

TEST(FaultChaos, EciLossPlanForcesRetries)
{
    FaultPlan plan;
    plan.seed = 3;
    FaultSpec s;
    s.kind = FaultKind::EciMsgDrop;
    s.prob = 0.05;
    s.at = units::us(2.0);
    s.until = 0; // whole run
    plan.faults.push_back(s);
    ChaosConfig cfg;
    cfg.seed = 3;
    cfg.ops = 120;
    cfg.lines = 8;
    cfg.with_net = false;
    cfg.with_rdma = false;
    const ChaosResult r = runChaos(plan, cfg);
    ASSERT_TRUE(r.ok) << r.violations.front();
    EXPECT_GT(r.faultsInjected, 0u);
    EXPECT_EQ(r.opsCompleted, r.opsIssued);
}

} // namespace
} // namespace enzian::fault
