/**
 * @file
 * Tests for the vision pipeline: functional correctness of the
 * RGB2Y/quantize/blur stages, bit-exactness of the FPGA
 * data-reduction pipeline against the software reference, and the
 * Figure 11 kernel calibration.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "accel/frame.hh"
#include "accel/rgb2y_pipeline.hh"
#include "accel/vision_pipeline.hh"
#include "platform/enzian_machine.hh"
#include "platform/platform_factory.hh"

namespace enzian::accel {
namespace {

TEST(Frame, DeterministicGeneration)
{
    Frame a = makeFrame(1, 0, 64, 32);
    Frame b = makeFrame(1, 0, 64, 32);
    EXPECT_EQ(a.rgba, b.rgba);
    Frame c = makeFrame(2, 0, 64, 32);
    EXPECT_NE(a.rgba, c.rgba);
}

TEST(Frame, GeometryAndPreload)
{
    Frame f = makeFrame(1, 3, 128, 16);
    EXPECT_EQ(f.pixels(), 128u * 16u);
    EXPECT_EQ(f.bytes(), 128u * 16u * 4u);
    mem::BackingStore store(1 << 20);
    preloadFrame(store, 0x100, f);
    std::vector<std::uint8_t> back(f.bytes());
    store.read(0x100, back.data(), back.size());
    EXPECT_EQ(back, f.rgba);
}

TEST(Rgb2y, KnownValues)
{
    // Pure white -> 255; pure black -> 0; BT.601 weights.
    const std::uint8_t rgba[12] = {255, 255, 255, 0, 0, 0,
                                   0,   0,   255, 0, 0, 0};
    std::uint8_t y[3];
    rgb2yReference(rgba, 3, y);
    EXPECT_EQ(y[0], 255);
    EXPECT_EQ(y[1], 0);
    EXPECT_EQ(y[2], 76); // pure red: (77*255) >> 8
}

TEST(Rgb2y, GreenWeighsMost)
{
    const std::uint8_t r[4] = {200, 0, 0, 0};
    const std::uint8_t g[4] = {0, 200, 0, 0};
    const std::uint8_t b[4] = {0, 0, 200, 0};
    std::uint8_t yr, yg, yb;
    rgb2yReference(r, 1, &yr);
    rgb2yReference(g, 1, &yg);
    rgb2yReference(b, 1, &yb);
    EXPECT_GT(yg, yr);
    EXPECT_GT(yr, yb);
}

TEST(Quantize4, PackUnpackRoundTrip)
{
    std::uint8_t y[8] = {0x00, 0x10, 0x20, 0x30, 0xff, 0xef, 0x7f, 0x80};
    std::uint8_t packed[4];
    quantize4Reference(y, 8, packed);
    std::uint8_t back[8];
    unpack4(packed, 8, back);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(back[i], y[i] & 0xf0); // top nibble preserved
}

TEST(Quantize4, OddPixelCount)
{
    std::uint8_t y[3] = {0xab, 0xcd, 0xef};
    std::uint8_t packed[2] = {0, 0};
    quantize4Reference(y, 3, packed);
    EXPECT_EQ(packed[0], 0xac);
    EXPECT_EQ(packed[1], 0xe0);
}

TEST(Blur, UniformImageIsFixedPoint)
{
    std::vector<std::uint8_t> y(64 * 64, 160);
    std::vector<std::uint8_t> out(y.size());
    gaussianBlur3x3(y.data(), 64, 64, out.data());
    for (auto v : out)
        EXPECT_EQ(v, 160);
}

TEST(Blur, SmoothsAnImpulse)
{
    std::vector<std::uint8_t> y(9 * 9, 0);
    y[4 * 9 + 4] = 160;
    std::vector<std::uint8_t> out(y.size());
    gaussianBlur3x3(y.data(), 9, 9, out.data());
    EXPECT_EQ(out[4 * 9 + 4], 40);     // 160*4/16
    EXPECT_EQ(out[4 * 9 + 5], 20);     // 160*2/16
    EXPECT_EQ(out[3 * 9 + 3], 10);     // 160*1/16
    EXPECT_EQ(out[0], 0);
}

TEST(Sobel, FlatFieldHasNoEdges)
{
    std::vector<std::uint8_t> y(32 * 32, 100);
    std::vector<std::uint8_t> out(y.size());
    sobelEdge(y.data(), 32, 32, out.data());
    for (auto v : out)
        EXPECT_EQ(v, 0);
}

TEST(Sobel, VerticalEdgeDetected)
{
    std::vector<std::uint8_t> y(8 * 8, 0);
    for (int r = 0; r < 8; ++r)
        for (int c = 4; c < 8; ++c)
            y[r * 8 + c] = 200;
    std::vector<std::uint8_t> out(y.size());
    sobelEdge(y.data(), 8, 8, out.data());
    EXPECT_GT(out[2 * 8 + 4], 100);
    EXPECT_EQ(out[2 * 8 + 1], 0);
}

TEST(Fig11Kernels, ReproduceTable1AndThroughputGains)
{
    EventQueue eq;
    cpu::Core core("c", eq);
    const auto none = core.run(fig11Kernel(Reduction::None), 1 << 20);
    const auto y8 = core.run(fig11Kernel(Reduction::Y8), 1 << 20);
    const auto y4 = core.run(fig11Kernel(Reduction::Y4), 1 << 20);

    // Baseline: ~33 Mpx/s/core (paper section 5.4).
    EXPECT_NEAR(none.itemRate / 1e6, 33.0, 1.5);
    // Gains: +39% (8bpp), +33% (4bpp).
    EXPECT_NEAR(y8.itemRate / none.itemRate, 1.39, 0.05);
    EXPECT_NEAR(y4.itemRate / none.itemRate, 1.33, 0.05);
    // Table 1 row 1: memory stalls per cycle.
    EXPECT_NEAR(none.pmu.memStallsPerCycle(), 0.025, 0.004);
    EXPECT_NEAR(y8.pmu.memStallsPerCycle(), 0.005, 0.002);
    EXPECT_NEAR(y4.pmu.memStallsPerCycle(), 0.005, 0.002);
    // Table 1 row 2: cycles per L1 refill (paper 1.84k/5.16k/10.5k;
    // shape: each variant several times the previous).
    EXPECT_NEAR(none.pmu.cyclesPerL1Refill(), 1840, 250);
    EXPECT_NEAR(y8.pmu.cyclesPerL1Refill(), 5160, 700);
    EXPECT_NEAR(y4.pmu.cyclesPerL1Refill(), 10500, 1700);
}

TEST(Rgb2yLineSource, BitExactAgainstSoftwareReference)
{
    platform::EnzianMachine::Config cfg =
        platform::enzianDefaultConfig();
    cfg.cpu_dram_bytes = 64ull << 20;
    cfg.fpga_dram_bytes = 64ull << 20;
    platform::EnzianMachine m(cfg);

    // Small frame preloaded in FPGA DRAM.
    Frame frame = makeFrame(9, 0, 256, 8);
    const Addr in_base = mem::AddressMap::fpgaDramBase;
    preloadFrame(m.fpgaMem().store(), 0, frame);

    Rgb2yLineSource::Config pcfg;
    pcfg.reduction = Reduction::Y8;
    pcfg.input_base = in_base;
    pcfg.view_base = in_base + (16ull << 20);
    pcfg.view_size = frame.pixels();
    Rgb2yLineSource src(m.fpgaMem(), m.map(), m.fpga().clock(), pcfg);
    m.fpgaHome().setLineSource(&src);

    // CPU reads the whole luminance view coherently over ECI.
    std::vector<std::uint8_t> view(frame.pixels());
    std::uint32_t done = 0;
    const std::uint64_t lines = frame.pixels() / cache::lineSize;
    for (std::uint64_t l = 0; l < lines; ++l) {
        m.cpuRemote().readLine(pcfg.view_base + l * cache::lineSize,
                               view.data() + l * cache::lineSize,
                               [&](Tick) { ++done; });
    }
    m.eventq().run();
    ASSERT_EQ(done, lines);

    std::vector<std::uint8_t> expect(frame.pixels());
    rgb2yReference(frame.rgba.data(), frame.pixels(), expect.data());
    EXPECT_EQ(view, expect);
    EXPECT_EQ(src.linesTransformed(), lines);
}

TEST(Rgb2yLineSource, Y4PacksTwoPixelsPerByte)
{
    platform::EnzianMachine::Config cfg =
        platform::enzianDefaultConfig();
    cfg.cpu_dram_bytes = 64ull << 20;
    cfg.fpga_dram_bytes = 64ull << 20;
    platform::EnzianMachine m(cfg);

    Frame frame = makeFrame(10, 0, 256, 4);
    preloadFrame(m.fpgaMem().store(), 0, frame);

    Rgb2yLineSource::Config pcfg;
    pcfg.reduction = Reduction::Y4;
    pcfg.input_base = mem::AddressMap::fpgaDramBase;
    pcfg.view_base = mem::AddressMap::fpgaDramBase + (16ull << 20);
    pcfg.view_size = frame.pixels() / 2;
    Rgb2yLineSource src(m.fpgaMem(), m.map(), m.fpga().clock(), pcfg);
    m.fpgaHome().setLineSource(&src);

    std::vector<std::uint8_t> packed(frame.pixels() / 2);
    std::uint32_t done = 0;
    const std::uint64_t lines = packed.size() / cache::lineSize;
    for (std::uint64_t l = 0; l < lines; ++l) {
        m.cpuRemote().readLine(pcfg.view_base + l * cache::lineSize,
                               packed.data() + l * cache::lineSize,
                               [&](Tick) { ++done; });
    }
    m.eventq().run();
    ASSERT_EQ(done, lines);

    std::vector<std::uint8_t> y(frame.pixels());
    rgb2yReference(frame.rgba.data(), frame.pixels(), y.data());
    std::vector<std::uint8_t> expect(frame.pixels() / 2);
    quantize4Reference(y.data(), frame.pixels(), expect.data());
    EXPECT_EQ(packed, expect);
}

TEST(Rgb2yLineSource, PassthroughOutsideView)
{
    platform::EnzianMachine::Config cfg =
        platform::enzianDefaultConfig();
    cfg.cpu_dram_bytes = 64ull << 20;
    cfg.fpga_dram_bytes = 64ull << 20;
    platform::EnzianMachine m(cfg);

    Rgb2yLineSource::Config pcfg;
    pcfg.reduction = Reduction::Y8;
    pcfg.input_base = mem::AddressMap::fpgaDramBase;
    pcfg.view_base = mem::AddressMap::fpgaDramBase + (16ull << 20);
    pcfg.view_size = 4096;
    Rgb2yLineSource src(m.fpgaMem(), m.map(), m.fpga().clock(), pcfg);
    m.fpgaHome().setLineSource(&src);

    // Ordinary lines still read/write normally through the source.
    std::vector<std::uint8_t> data(cache::lineSize, 0x5a);
    bool wrote = false;
    m.cpuRemote().writeLineUncached(mem::AddressMap::fpgaDramBase,
                                    data.data(),
                                    [&](Tick) { wrote = true; });
    m.eventq().run();
    ASSERT_TRUE(wrote);
    std::uint8_t back[cache::lineSize];
    m.fpgaMem().store().read(0, back, cache::lineSize);
    EXPECT_EQ(std::memcmp(back, data.data(), cache::lineSize), 0);
    EXPECT_EQ(src.linesTransformed(), 0u);
}

TEST(SoftwarePipeline, EndToEndRuns)
{
    Frame f = makeFrame(3, 1, 64, 48);
    auto blurred = softwarePipeline(f);
    EXPECT_EQ(blurred.size(), f.pixels());
    // Output should have real variation (not all-zero / constant).
    const auto [mn, mx] =
        std::minmax_element(blurred.begin(), blurred.end());
    EXPECT_NE(*mn, *mx);
}

TEST(InterconnectBytes, MatchVariants)
{
    EXPECT_DOUBLE_EQ(interconnectBytesPerPixel(Reduction::None), 4.0);
    EXPECT_DOUBLE_EQ(interconnectBytesPerPixel(Reduction::Y8), 1.0);
    EXPECT_DOUBLE_EQ(interconnectBytesPerPixel(Reduction::Y4), 0.5);
    EXPECT_EQ(pixelsPerLine(Reduction::None), 32u);
    EXPECT_EQ(pixelsPerLine(Reduction::Y8), 128u);
    EXPECT_EQ(pixelsPerLine(Reduction::Y4), 256u);
    EXPECT_EQ(burstBytesPerLine(Reduction::Y4), 1024u);
}

} // namespace
} // namespace enzian::accel
