/**
 * @file
 * Tests for the runtime-verification engine: monitor semantics,
 * end-of-stream obligations, throughput/drop modelling, and live
 * checking of real ECI traffic (the "test harness" partitioning of
 * paper section 3 / the section 6 use-case).
 */

#include <gtest/gtest.h>

#include "platform/enzian_machine.hh"
#include "platform/platform_factory.hh"
#include "trace/rtv.hh"

namespace enzian::trace {
namespace {

RtvEvent
ev(Tick when, std::uint32_t id, std::uint64_t arg = 0)
{
    return RtvEvent{when, id, arg};
}

RtvPred
idIs(std::uint32_t id)
{
    return [id](const RtvEvent &e) { return e.id == id; };
}

class EngineFixture : public ::testing::Test
{
  protected:
    EngineFixture() : engine("rtv", eq, RtvEngine::Config{}) {}

    EventQueue eq;
    RtvEngine engine;
};

TEST_F(EngineFixture, AlwaysHoldsAndFails)
{
    auto &m = engine.addMonitor(std::make_unique<AlwaysMonitor>(
        "arg-nonzero",
        [](const RtvEvent &e) { return e.arg != 0; }));
    engine.feed(ev(10, 1, 5));
    engine.feed(ev(20, 1, 7));
    EXPECT_TRUE(m.clean());
    engine.feed(ev(30, 1, 0));
    EXPECT_FALSE(m.clean());
    EXPECT_EQ(m.violations().size(), 1u);
}

TEST_F(EngineFixture, NeverFlagsForbiddenEvent)
{
    auto &m = engine.addMonitor(
        std::make_unique<NeverMonitor>("no-panic", idIs(99)));
    engine.feed(ev(10, 1));
    EXPECT_TRUE(m.clean());
    engine.feed(ev(20, 99));
    EXPECT_FALSE(m.clean());
}

TEST_F(EngineFixture, PrecedesOrderingBothWays)
{
    auto &good = engine.addMonitor(std::make_unique<PrecedesMonitor>(
        "init-before-use", idIs(1), idIs(2)));
    engine.feed(ev(10, 1)); // init
    engine.feed(ev(20, 2)); // use
    EXPECT_TRUE(good.clean());

    RtvEngine engine2("rtv2", eq, RtvEngine::Config{});
    auto &bad = engine2.addMonitor(std::make_unique<PrecedesMonitor>(
        "init-before-use", idIs(1), idIs(2)));
    engine2.feed(ev(10, 2)); // use before init
    EXPECT_FALSE(bad.clean());
}

TEST_F(EngineFixture, ResponseWithinDeadlineMet)
{
    auto &m = engine.addMonitor(
        std::make_unique<ResponseWithinMonitor>(
            "req-gets-rsp", idIs(1), idIs(2), units::us(1)));
    engine.feed(ev(units::ns(100), 1));
    engine.feed(ev(units::ns(600), 2));
    engine.finish();
    EXPECT_TRUE(m.clean());
}

TEST_F(EngineFixture, ResponseWithinDeadlineMissed)
{
    auto &m = engine.addMonitor(
        std::make_unique<ResponseWithinMonitor>(
            "req-gets-rsp", idIs(1), idIs(2), units::ns(500)));
    engine.feed(ev(units::ns(100), 1));
    engine.feed(ev(units::us(2), 2)); // too late
    EXPECT_FALSE(m.clean());
}

TEST_F(EngineFixture, ResponseOutstandingAtEndOfStream)
{
    auto &m = engine.addMonitor(
        std::make_unique<ResponseWithinMonitor>(
            "req-gets-rsp", idIs(1), idIs(2), units::us(1)));
    engine.feed(ev(units::ns(100), 1));
    engine.finish();
    EXPECT_FALSE(m.clean());
}

TEST_F(EngineFixture, MultipleOutstandingTriggersFifoMatch)
{
    auto &m = engine.addMonitor(
        std::make_unique<ResponseWithinMonitor>(
            "pairs", idIs(1), idIs(2), units::us(10)));
    engine.feed(ev(units::ns(100), 1));
    engine.feed(ev(units::ns(200), 1));
    engine.feed(ev(units::ns(300), 2));
    engine.feed(ev(units::ns(400), 2));
    engine.finish();
    EXPECT_TRUE(m.clean());
}

TEST_F(EngineFixture, ThroughputKeepsUpAtLineRate)
{
    // 250 MHz x 1 event/cycle = 250 M events/s; feed below that.
    engine.addMonitor(std::make_unique<NeverMonitor>(
        "nothing", [](const RtvEvent &) { return false; }));
    for (std::uint64_t i = 0; i < 10000; ++i)
        engine.feed(ev(i * units::ns(8), 1)); // 125 M/s
    EXPECT_EQ(engine.eventsDropped(), 0u);
    EXPECT_EQ(engine.eventsProcessed(), 10000u);
}

TEST_F(EngineFixture, OverdrivenEngineReportsDrops)
{
    RtvEngine::Config cfg;
    cfg.clock_hz = 1e6; // deliberately tiny: 1 M events/s
    cfg.fifo_depth = 16;
    RtvEngine slow("slow", eq, cfg);
    slow.addMonitor(std::make_unique<NeverMonitor>(
        "nothing", [](const RtvEvent &) { return false; }));
    for (std::uint64_t i = 0; i < 1000; ++i)
        slow.feed(ev(i, 1)); // effectively infinite rate
    EXPECT_GT(slow.eventsDropped(), 0u);
    EXPECT_LT(slow.eventsProcessed(), 1000u);
}

TEST(RtvEci, LiveProtocolPropertyOnRealTraffic)
{
    // Compile "every RLDI is answered by a PEMD within 5 us" into the
    // engine and tap the live fabric while a workload runs.
    auto cfg = platform::enzianDefaultConfig();
    cfg.cpu_dram_bytes = 64ull << 20;
    cfg.fpga_dram_bytes = 64ull << 20;
    platform::EnzianMachine m(cfg);
    RtvEngine engine("rtv", m.eventq(), RtvEngine::Config{});
    auto &resp = engine.addMonitor(
        std::make_unique<ResponseWithinMonitor>(
            "rldi-answered",
            idIs(static_cast<std::uint32_t>(eci::Opcode::RLDI)),
            idIs(static_cast<std::uint32_t>(eci::Opcode::PEMD)),
            units::us(5)));
    auto &never = engine.addMonitor(std::make_unique<NeverMonitor>(
        "no-nak",
        idIs(static_cast<std::uint32_t>(eci::Opcode::PNAK))));
    engine.attachEciTap(m.fabric());

    std::uint32_t done = 0;
    for (int i = 0; i < 64; ++i) {
        m.fpgaRemote().readLineUncached(
            static_cast<Addr>(i) * cache::lineSize, nullptr,
            [&](Tick) { ++done; });
    }
    m.eventq().run();
    engine.finish();
    ASSERT_EQ(done, 64u);
    EXPECT_TRUE(resp.clean())
        << (resp.violations().empty() ? "" : resp.violations()[0]);
    EXPECT_TRUE(never.clean());
    EXPECT_EQ(engine.eventsProcessed(), 128u); // 64 RLDI + 64 PEMD
}

} // namespace
} // namespace enzian::trace
