/**
 * @file
 * Tests for multi-board clustering: disaggregated memory with
 * operator pushdown, and the cross-machine coherence bridge.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "cluster/disagg_memory.hh"
#include "cluster/eci_bridge.hh"
#include "cluster/enzian_cluster.hh"

namespace enzian::cluster {
namespace {

TEST(Cluster, ComposesNodesOnSharedQueue)
{
    EnzianCluster::Config cfg;
    cfg.nodes = 3;
    EnzianCluster c(cfg);
    EXPECT_EQ(c.nodeCount(), 3u);
    EXPECT_EQ(c.network().portCount(), 12u);
    EXPECT_EQ(c.portOf(2, 1), 9u);
    // All machines tick on the same queue.
    EXPECT_EQ(&c.node(0).eventq(), &c.eventq());
    EXPECT_EQ(&c.node(2).eventq(), &c.eventq());
}

TEST(Cluster, NodesOperateIndependently)
{
    EnzianCluster::Config cfg;
    cfg.nodes = 2;
    EnzianCluster c(cfg);
    std::vector<std::uint8_t> d0(cache::lineSize, 0x11);
    std::vector<std::uint8_t> d1(cache::lineSize, 0x22);
    int done = 0;
    c.node(0).fpgaRemote().writeLineUncached(0x1000, d0.data(),
                                             [&](Tick) { ++done; });
    c.node(1).fpgaRemote().writeLineUncached(0x1000, d1.data(),
                                             [&](Tick) { ++done; });
    c.eventq().run();
    EXPECT_EQ(done, 2);
    std::uint8_t b0, b1;
    c.node(0).cpuMem().store().read(0x1000, &b0, 1);
    c.node(1).cpuMem().store().read(0x1000, &b1, 1);
    EXPECT_EQ(b0, 0x11);
    EXPECT_EQ(b1, 0x22);
}

class DisaggTest : public ::testing::Test
{
  protected:
    DisaggTest()
    {
        EnzianCluster::Config cfg;
        cfg.nodes = 2;
        cluster = std::make_unique<EnzianCluster>(cfg);
        DisaggMemoryServer::Config scfg;
        scfg.port = cluster->portOf(0);
        scfg.region_size = 64ull << 20;
        server = std::make_unique<DisaggMemoryServer>(
            "server", cluster->eventq(), cluster->network(),
            cluster->node(0).fpgaMem(), scfg);
        client = std::make_unique<DisaggMemoryClient>(
            "client", cluster->eventq(), cluster->network(),
            cluster->portOf(1), *server);
    }

    std::unique_ptr<EnzianCluster> cluster;
    std::unique_ptr<DisaggMemoryServer> server;
    std::unique_ptr<DisaggMemoryClient> client;
};

TEST_F(DisaggTest, RemoteReadWriteRoundTrip)
{
    std::vector<std::uint8_t> data(8192);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 7);
    bool wrote = false;
    client->write(0x4000, data.data(), data.size(),
                  [&](Tick) { wrote = true; });
    cluster->eventq().run();
    ASSERT_TRUE(wrote);

    std::vector<std::uint8_t> back(data.size());
    bool read_done = false;
    client->read(0x4000, back.data(), back.size(),
                 [&](Tick) { read_done = true; });
    cluster->eventq().run();
    ASSERT_TRUE(read_done);
    EXPECT_EQ(back, data);
}

TEST_F(DisaggTest, PushdownFilterReturnsOnlyMatches)
{
    // Rows: {u64 key, u64 value}; keys 0..999, select key >= 900.
    constexpr std::uint32_t row = 16;
    std::vector<std::uint8_t> table(1000 * row);
    for (std::uint64_t k = 0; k < 1000; ++k) {
        std::memcpy(&table[k * row], &k, 8);
        const std::uint64_t v = k * 3;
        std::memcpy(&table[k * row + 8], &v, 8);
    }
    bool loaded = false;
    client->write(0, table.data(), table.size(),
                  [&](Tick) { loaded = true; });
    cluster->eventq().run();
    ASSERT_TRUE(loaded);

    Predicate pred;
    pred.column_offset = 0;
    pred.op = FilterOp::Ge;
    pred.operand = 900;
    std::vector<std::uint8_t> matches;
    std::uint64_t wire_bytes = 0;
    client->scanFilter(0, row, 1000, pred,
                       [&](Tick, std::vector<std::uint8_t> m,
                           std::uint64_t wire) {
                           matches = std::move(m);
                           wire_bytes = wire;
                       });
    cluster->eventq().run();

    ASSERT_EQ(matches.size(), 100u * row);
    std::uint64_t first_key = 0;
    std::memcpy(&first_key, matches.data(), 8);
    EXPECT_EQ(first_key, 900u);
    // Selection moved ~10x less data than reading the table.
    EXPECT_LT(wire_bytes, table.size() / 5);
    EXPECT_EQ(server->rowsScanned(), 1000u);
}

TEST_F(DisaggTest, AllFilterOpsEvaluate)
{
    const std::uint64_t v = 42;
    std::uint8_t row[8];
    std::memcpy(row, &v, 8);
    auto check = [&](FilterOp op, std::uint64_t operand) {
        Predicate p;
        p.column_offset = 0;
        p.op = op;
        p.operand = operand;
        return p.matches(row);
    };
    EXPECT_TRUE(check(FilterOp::Eq, 42));
    EXPECT_FALSE(check(FilterOp::Eq, 41));
    EXPECT_TRUE(check(FilterOp::Ne, 41));
    EXPECT_TRUE(check(FilterOp::Lt, 43));
    EXPECT_TRUE(check(FilterOp::Le, 42));
    EXPECT_FALSE(check(FilterOp::Gt, 42));
    EXPECT_TRUE(check(FilterOp::Ge, 42));
}

class BridgeTest : public ::testing::Test
{
  protected:
    BridgeTest()
    {
        EnzianCluster::Config cfg;
        cfg.nodes = 2;
        cluster = std::make_unique<EnzianCluster>(cfg);
        auto &a = cluster->node(0);
        auto &b = cluster->node(1);

        // B exports the first 16 MiB of its CPU memory.
        EciBridgeTarget::Config tcfg;
        tcfg.port = cluster->portOf(1);
        tcfg.export_base = 0;
        target = std::make_unique<EciBridgeTarget>(
            "bridge.target", cluster->eventq(), cluster->network(),
            b.cpuHome(), tcfg);

        // A maps it at a window of its FPGA-homed space.
        fallback = std::make_unique<eci::DramLineSource>(a.fpgaMem(),
                                                         a.map());
        EciBridgeSource::Config scfg;
        scfg.port = cluster->portOf(0);
        scfg.window_base = windowBase();
        scfg.window_size = 16ull << 20;
        source = std::make_unique<EciBridgeSource>(
            "bridge.source", cluster->eventq(), cluster->network(),
            *fallback, *target, scfg);
        a.fpgaHome().setLineSource(source.get());
    }

    static Addr
    windowBase()
    {
        return mem::AddressMap::fpgaDramBase + (128ull << 20);
    }

    std::unique_ptr<EnzianCluster> cluster;
    std::unique_ptr<EciBridgeTarget> target;
    std::unique_ptr<eci::DramLineSource> fallback;
    std::unique_ptr<EciBridgeSource> source;
};

TEST_F(BridgeTest, CpuACachesMemoryOfMachineB)
{
    auto &a = cluster->node(0);
    auto &b = cluster->node(1);
    // Data lives in B's DRAM.
    std::vector<std::uint8_t> data(cache::lineSize, 0x5e);
    b.cpuMem().store().write(0x2000, data.data(), data.size());

    std::uint8_t out[cache::lineSize] = {};
    bool done = false;
    Tick latency = 0;
    const Tick start = cluster->eventq().now();
    a.cpuRemote().readLine(windowBase() + 0x2000, out, [&](Tick t) {
        done = true;
        latency = t - start;
    });
    cluster->eventq().run();
    ASSERT_TRUE(done);
    EXPECT_EQ(std::memcmp(out, data.data(), cache::lineSize), 0);
    // The line is genuinely cached on A.
    EXPECT_NE(a.l2().probe(windowBase() + 0x2000),
              cache::MoesiState::Invalid);
    EXPECT_EQ(source->linesBridged(), 1u);
    // Cross-machine refill costs network latency (microseconds).
    EXPECT_GT(units::toMicros(latency), 1.0);

    // Second access hits A's L2: no new bridge traffic.
    bool done2 = false;
    a.cpuRemote().readLine(windowBase() + 0x2000, out,
                           [&](Tick) { done2 = true; });
    cluster->eventq().run();
    ASSERT_TRUE(done2);
    EXPECT_EQ(source->linesBridged(), 1u);
}

TEST_F(BridgeTest, BridgedReadSnoopsDirtyLineInRemoteL2)
{
    auto &a = cluster->node(0);
    auto &b = cluster->node(1);
    // The line is dirty in B's L2, not in its DRAM.
    std::vector<std::uint8_t> dirty(cache::lineSize, 0xd1);
    b.l2().fill(0x3000, cache::MoesiState::Modified, dirty.data());

    std::uint8_t out[cache::lineSize] = {};
    bool done = false;
    a.cpuRemote().readLine(windowBase() + 0x3000, out,
                           [&](Tick) { done = true; });
    cluster->eventq().run();
    ASSERT_TRUE(done);
    // Coherence composes across the bridge: A sees B's dirty data.
    EXPECT_EQ(std::memcmp(out, dirty.data(), cache::lineSize), 0);
}

TEST_F(BridgeTest, WritebackLandsOnMachineB)
{
    auto &a = cluster->node(0);
    auto &b = cluster->node(1);
    std::vector<std::uint8_t> data(cache::lineSize, 0x77);
    bool wrote = false;
    a.cpuRemote().writeLine(windowBase() + 0x4000, data.data(),
                            [&](Tick) { wrote = true; });
    cluster->eventq().run();
    ASSERT_TRUE(wrote);
    bool flushed = false;
    a.cpuRemote().flushAll([&](Tick) { flushed = true; });
    cluster->eventq().run();
    ASSERT_TRUE(flushed);
    std::uint8_t back[cache::lineSize];
    b.cpuMem().store().read(0x4000, back, cache::lineSize);
    EXPECT_EQ(std::memcmp(back, data.data(), cache::lineSize), 0);
}

TEST_F(BridgeTest, OutsideWindowFallsThroughToLocalDram)
{
    auto &a = cluster->node(0);
    std::vector<std::uint8_t> data(cache::lineSize, 0x99);
    bool done = false;
    a.cpuRemote().writeLineUncached(mem::AddressMap::fpgaDramBase,
                                    data.data(),
                                    [&](Tick) { done = true; });
    cluster->eventq().run();
    ASSERT_TRUE(done);
    std::uint8_t back[cache::lineSize];
    a.fpgaMem().store().read(0, back, cache::lineSize);
    EXPECT_EQ(std::memcmp(back, data.data(), cache::lineSize), 0);
    EXPECT_EQ(source->linesBridged(), 0u);
}

TEST_F(BridgeTest, ReadAfterWriteAcrossBridgeIsSafe)
{
    // Non-posted bridged writes: a read issued after the write's ack
    // must observe the new data even though the memory is a network
    // away.
    auto &a = cluster->node(0);
    std::vector<std::uint8_t> data(cache::lineSize, 0xcd);
    std::uint8_t out[cache::lineSize] = {};
    bool read_done = false;
    a.cpuRemote().writeLineUncached(
        windowBase() + 0x5000, data.data(), [&](Tick) {
            a.cpuRemote().readLineUncached(
                windowBase() + 0x5000, out,
                [&](Tick) { read_done = true; });
        });
    cluster->eventq().run();
    ASSERT_TRUE(read_done);
    EXPECT_EQ(std::memcmp(out, data.data(), cache::lineSize), 0);
}

} // namespace
} // namespace enzian::cluster
