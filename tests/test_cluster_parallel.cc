/**
 * @file
 * Rack-scale tests: N-node clusters on the domain scheduler
 * (thread-count determinism down to the registry bytes), the
 * replicated KV store (read-your-writes, nearest-replica reads,
 * recovery under RDMA request drops), and regressions for the
 * cluster-layer bug purge (two servers in one process, switch tag
 * overflow, out-of-bounds pushdown predicates).
 */

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <functional>
#include <sstream>

#include "base/rng.hh"
#include "cluster/disagg_memory.hh"
#include "cluster/eci_bridge.hh"
#include "cluster/enzian_cluster.hh"
#include "cluster/replicated_kv.hh"
#include "obs/registry.hh"

namespace enzian::cluster {
namespace {

constexpr std::uint32_t kNodes = 4;
constexpr std::uint32_t kValueBytes = 128;

std::vector<std::uint8_t>
patternFor(std::uint64_t key)
{
    std::vector<std::uint8_t> v(kValueBytes);
    for (std::size_t i = 0; i < v.size(); ++i)
        v[i] = static_cast<std::uint8_t>(key * 41 + i);
    return v;
}

/** Completion-tick traces + registry bytes of a rack KV workload. */
struct RackRun
{
    std::vector<Tick> ticks;
    std::string registryJson;
    std::vector<std::vector<std::uint8_t>> values;
};

RackRun
rackKvWorkload(std::uint32_t threads)
{
    EnzianCluster::Config cfg;
    cfg.nodes = kNodes;
    cfg.threads = threads;
    EnzianCluster rack(cfg);

    ReplicatedKv::Config kcfg;
    kcfg.primary = 0;
    kcfg.replicas = {1, 2};
    kcfg.value_bytes = kValueBytes;
    ReplicatedKv kv("rackkv", rack, kcfg);

    // Phase 1: every node puts its own keys. Completion callbacks run
    // in the issuing node's domain, so traces are per-node and merged
    // after the run.
    std::array<std::vector<Tick>, kNodes> trace;
    for (std::uint32_t n = 0; n < kNodes; ++n) {
        for (std::uint64_t k = 0; k < 4; ++k) {
            const std::uint64_t key = n * 8 + k;
            const auto val = patternFor(key);
            kv.put(n, key, val.data(),
                   [&trace, n](Tick t) { trace[n].push_back(t); });
        }
    }
    rack.run();

    // Phase 2: every node reads a neighbour's key, issued at a fixed
    // absolute tick (after a run a domain queue sits at its epoch end,
    // so "now" is not comparable across modes).
    const Tick phase2 = units::us(1000.0);
    RackRun out;
    out.values.assign(kNodes, std::vector<std::uint8_t>(kValueBytes));
    for (std::uint32_t n = 0; n < kNodes; ++n) {
        rack.node(n).fpgaEventq().schedule(phase2, [&, n]() {
            const std::uint64_t key = ((n + 1) % kNodes) * 8;
            kv.get(n, key, out.values[n].data(),
                   [&trace, n](Tick t) { trace[n].push_back(t); });
        });
    }
    rack.run();

    for (const auto &t : trace)
        out.ticks.insert(out.ticks.end(), t.begin(), t.end());
    std::ostringstream os;
    obs::Registry::global().exportJson(os);
    out.registryJson = os.str();
    return out;
}

TEST(ClusterParallel, RegistryByteIdenticalAcrossThreadCounts)
{
    const auto r1 = rackKvWorkload(1);
    const auto r4 = rackKvWorkload(4);
    ASSERT_EQ(r1.ticks.size(), kNodes * 5u);
    EXPECT_EQ(r1.ticks, r4.ticks);
    // The whole observable state of the rack, byte for byte.
    EXPECT_FALSE(r1.registryJson.empty());
    EXPECT_EQ(r1.registryJson, r4.registryJson);
    EXPECT_EQ(r1.values, r4.values);
    for (std::uint32_t n = 0; n < kNodes; ++n)
        EXPECT_EQ(r1.values[n], patternFor(((n + 1) % kNodes) * 8));
}

TEST(ClusterParallel, DomainModeMatchesLegacyTicks)
{
    // threads=1 runs the same rack as timing domains; the simulation
    // (completion ticks, read values) must be identical to the legacy
    // shared-queue cluster.
    const auto legacy = rackKvWorkload(0);
    const auto domain = rackKvWorkload(1);
    EXPECT_EQ(legacy.ticks, domain.ticks);
    EXPECT_EQ(legacy.values, domain.values);
}

TEST(ClusterParallel, LookaheadIsDerivedFromTopology)
{
    EnzianCluster::Config cfg;
    cfg.nodes = 2;
    const Tick uniform = EnzianCluster::deriveLookahead(
        cfg, ClusterTopology::uniform(2, 4));

    // A topology with a long cable cannot lower the floor below the
    // intra-machine ECI path; a short one can.
    ClusterTopology fast = ClusterTopology::uniform(2, 4);
    fast.nodes[0].latency_ns = 1.0;
    const Tick floor_fast = EnzianCluster::deriveLookahead(cfg, fast);
    EXPECT_LE(floor_fast, uniform);
    EXPECT_EQ(floor_fast, units::ns(1.0));
}

TEST(ReplicatedKv, NearestReplicaReadsAndTopologyDistance)
{
    // Primary on a *far* node (5 us cable), replica on a near one:
    // reads from an unrelated node must pick the replica.
    ClusterTopology topo = ClusterTopology::uniform(3, 4);
    topo.nodes[0].latency_ns = 5000.0;
    EnzianCluster::Config cfg;
    cfg.topology = topo;
    EnzianCluster rack(cfg);

    ReplicatedKv::Config kcfg;
    kcfg.primary = 0;
    kcfg.replicas = {1};
    kcfg.value_bytes = kValueBytes;
    ReplicatedKv kv("nearkv", rack, kcfg);

    EXPECT_EQ(kv.storeCount(), 2u);
    EXPECT_EQ(kv.nearestStore(1), 1u); // co-located replica
    EXPECT_EQ(kv.nearestStore(2), 1u); // replica beats the far primary

    const auto val = patternFor(7);
    bool put_done = false;
    kv.put(2, 7, val.data(), [&](Tick) { put_done = true; });
    rack.run();
    ASSERT_TRUE(put_done);
    EXPECT_EQ(kv.replicaAcks(), 2u);

    // Node 1 reads its own replica: no network at all.
    std::vector<std::uint8_t> got(kValueBytes);
    bool get_done = false;
    kv.get(1, 7, got.data(), [&](Tick) { get_done = true; });
    rack.run();
    ASSERT_TRUE(get_done);
    EXPECT_EQ(got, val);
    EXPECT_EQ(kv.localReads(), 1u);

    // Node 2 has no replica: remote read from the near store.
    std::fill(got.begin(), got.end(), 0);
    get_done = false;
    kv.get(2, 7, got.data(), [&](Tick) { get_done = true; });
    rack.run();
    ASSERT_TRUE(get_done);
    EXPECT_EQ(got, val);
    EXPECT_EQ(kv.remoteReads(), 1u);
}

TEST(ReplicatedKv, ConfigFromTopologyServiceLine)
{
    const auto topo = ClusterTopology::parse(
        "node ports=4\nnode ports=4\nnode ports=4\n"
        "service kind=kv node=1 "
        "params=replicas=2,placement=eci-host,slots=64,"
        "value_bytes=256,timeout_us=40\n");
    const auto svcs = topo.servicesOf("kv");
    ASSERT_EQ(svcs.size(), 1u);
    const auto cfg = ReplicatedKv::configFromService(svcs[0], topo);
    EXPECT_EQ(cfg.primary, 1u);
    ASSERT_EQ(cfg.replicas.size(), 2u);
    EXPECT_EQ(cfg.replicas[0], 2u);
    EXPECT_EQ(cfg.replicas[1], 0u);
    EXPECT_EQ(cfg.placement, "eci-host");
    EXPECT_EQ(cfg.slots, 64u);
    EXPECT_EQ(cfg.value_bytes, 256u);
    EXPECT_DOUBLE_EQ(cfg.timeout_us, 40.0);
}

TEST(ReplicatedKv, ReadYourWritesUnderRdmaRequestDrops)
{
    // enzchaos-style loss on the client's initiator: every put/get
    // pair must still read its own write thanks to timeout recovery.
    EnzianCluster::Config cfg;
    cfg.nodes = 3;
    EnzianCluster rack(cfg);

    ReplicatedKv::Config kcfg;
    kcfg.primary = 0;
    kcfg.replicas = {1};
    kcfg.value_bytes = kValueBytes;
    kcfg.timeout_us = 50.0;
    ReplicatedKv kv("chaoskv", rack, kcfg);

    Rng rng(99);
    kv.initiator(2).setFaults(&rng, 0.2);

    constexpr std::uint64_t kOps = 16;
    std::uint64_t verified = 0;
    std::vector<std::uint8_t> got(kValueBytes);
    std::function<void(std::uint64_t)> step = [&](std::uint64_t k) {
        if (k == kOps)
            return;
        // The payload is copied at issue time, so a stack-local
        // pattern is fine.
        const auto val = patternFor(k);
        kv.put(2, k, val.data(), [&, k](Tick) {
            kv.get(2, k, got.data(), [&, k](Tick) {
                if (got == patternFor(k))
                    ++verified;
                step(k + 1);
            });
        });
    };
    step(0);
    rack.run();

    EXPECT_EQ(verified, kOps);
    EXPECT_EQ(kv.puts(), kOps);
    EXPECT_EQ(kv.gets(), kOps);
    // The fault stream actually bit, and recovery actually ran.
    EXPECT_GT(kv.initiator(2).requestsDropped(), 0u);
    EXPECT_GT(kv.initiator(2).retriesSent(), 0u);
}

TEST(ClusterRegression, TwoDisaggServersInOneProcess)
{
    // Before the wire ledgers became instance-owned, every server in
    // the process shared one file-scope request/response map.
    EnzianCluster::Config cfg;
    cfg.nodes = 4;
    EnzianCluster rack(cfg);

    DisaggMemoryServer::Config sa;
    sa.port = rack.portOf(0);
    sa.region_size = 1ull << 20;
    DisaggMemoryServer srvA("srvA", rack.eventq(), rack.network(),
                            rack.node(0).fpgaMem(), sa);
    DisaggMemoryServer::Config sb;
    sb.port = rack.portOf(1);
    sb.region_size = 1ull << 20;
    DisaggMemoryServer srvB("srvB", rack.eventq(), rack.network(),
                            rack.node(1).fpgaMem(), sb);
    DisaggMemoryClient cliA("cliA", rack.eventq(), rack.network(),
                            rack.portOf(2), srvA);
    DisaggMemoryClient cliB("cliB", rack.eventq(), rack.network(),
                            rack.portOf(3), srvB);

    // Interleaved writes to the SAME offsets with different payloads.
    std::vector<std::uint8_t> da(4096, 0xaa), db(4096, 0xbb);
    int writes = 0;
    cliA.write(0x1000, da.data(), da.size(), [&](Tick) { ++writes; });
    cliB.write(0x1000, db.data(), db.size(), [&](Tick) { ++writes; });
    rack.eventq().run();
    ASSERT_EQ(writes, 2);

    std::vector<std::uint8_t> ra(4096), rb(4096);
    int reads = 0;
    cliA.read(0x1000, ra.data(), ra.size(), [&](Tick) { ++reads; });
    cliB.read(0x1000, rb.data(), rb.size(), [&](Tick) { ++reads; });
    rack.eventq().run();
    ASSERT_EQ(reads, 2);
    EXPECT_EQ(ra, da);
    EXPECT_EQ(rb, db);
    EXPECT_EQ(srvA.requestsInFlight(), 0u);
    EXPECT_EQ(srvB.requestsInFlight(), 0u);
}

TEST(ClusterRegression, TwoCoherenceBridgesInOneProcess)
{
    // Symmetric bridging: each node exports its CPU memory to the
    // other. Two targets + two sources share the process; their op
    // ledgers must not cross.
    EnzianCluster::Config cfg;
    cfg.nodes = 2;
    EnzianCluster rack(cfg);
    auto &a = rack.node(0);
    auto &b = rack.node(1);
    const Addr window = mem::AddressMap::fpgaDramBase + (128ull << 20);

    EciBridgeTarget::Config ta;
    ta.port = rack.portOf(0, 0);
    EciBridgeTarget targetA("ta", rack.eventq(), rack.network(),
                            a.cpuHome(), ta);
    EciBridgeTarget::Config tb;
    tb.port = rack.portOf(1, 0);
    EciBridgeTarget targetB("tb", rack.eventq(), rack.network(),
                            b.cpuHome(), tb);

    eci::DramLineSource fbA(a.fpgaMem(), a.map());
    eci::DramLineSource fbB(b.fpgaMem(), b.map());
    EciBridgeSource::Config scfg;
    scfg.window_base = window;
    scfg.window_size = 16ull << 20;
    scfg.port = rack.portOf(0, 1);
    EciBridgeSource srcOnA("sa", rack.eventq(), rack.network(), fbA,
                           targetB, scfg);
    scfg.port = rack.portOf(1, 1);
    EciBridgeSource srcOnB("sb", rack.eventq(), rack.network(), fbB,
                           targetA, scfg);
    a.fpgaHome().setLineSource(&srcOnA);
    b.fpgaHome().setLineSource(&srcOnB);

    std::vector<std::uint8_t> da(cache::lineSize, 0x0a);
    std::vector<std::uint8_t> db(cache::lineSize, 0x0b);
    a.cpuMem().store().write(0x2000, da.data(), da.size());
    b.cpuMem().store().write(0x2000, db.data(), db.size());

    std::uint8_t fromB[cache::lineSize] = {};
    std::uint8_t fromA[cache::lineSize] = {};
    int done = 0;
    a.cpuRemote().readLine(window + 0x2000, fromB,
                           [&](Tick) { ++done; });
    b.cpuRemote().readLine(window + 0x2000, fromA,
                           [&](Tick) { ++done; });
    rack.eventq().run();
    ASSERT_EQ(done, 2);
    EXPECT_EQ(std::memcmp(fromB, db.data(), cache::lineSize), 0);
    EXPECT_EQ(std::memcmp(fromA, da.data(), cache::lineSize), 0);
    EXPECT_EQ(srcOnA.linesBridged(), 1u);
    EXPECT_EQ(srcOnB.linesBridged(), 1u);
    EXPECT_EQ(targetA.opsInFlight(), 0u);
    EXPECT_EQ(targetB.opsInFlight(), 0u);
}

TEST(ClusterRegressionDeath, SwitchTagOverflowIsFatal)
{
    // makeTag used to silently truncate both fields into each other.
    EXPECT_EQ(net::Switch::makeTag(255, (1ull << 56) - 1) >> 56, 255u);
    EXPECT_DEATH(net::Switch::makeTag(256, 0), "overflow");
    EXPECT_DEATH(net::Switch::makeTag(0, 1ull << 56), "overflow");
}

TEST(ClusterRegressionDeath, OutOfBoundsPredicateIsFatal)
{
    // The pushdown filter reads 8 bytes at column_offset; an offset
    // past row_bytes-8 used to memcpy beyond the row (ASan-visible),
    // now it dies at request registration.
    Predicate p;
    p.column_offset = 9;
    EXPECT_DEATH(p.validate(16), "predicate");
    p.column_offset = 0;
    EXPECT_DEATH(p.validate(4), "predicate"); // row below one word
    p.validate(8);                            // exact fit is legal

    EnzianCluster::Config cfg;
    cfg.nodes = 2;
    EnzianCluster rack(cfg);
    DisaggMemoryServer::Config scfg;
    scfg.port = rack.portOf(0);
    scfg.region_size = 1ull << 20;
    DisaggMemoryServer server("srv", rack.eventq(), rack.network(),
                              rack.node(0).fpgaMem(), scfg);
    DisaggMemoryClient client("cli", rack.eventq(), rack.network(),
                              rack.portOf(1), server);
    Predicate bad;
    bad.column_offset = 12; // rows are 16 B: would read [12, 20)
    EXPECT_DEATH(
        client.scanFilter(0, 16, 4, bad,
                          [](Tick, std::vector<std::uint8_t>,
                             std::uint64_t) {}),
        "predicate");
}

} // namespace
} // namespace enzian::cluster
